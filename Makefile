# Development entry points.  Every PR runs `make ci` (tier-1 tests plus the
# NLP perf smoke benchmark) so regressions in correctness or throughput are
# caught identically everywhere.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test perf ci

## tier-1: the full test suite (the driver's acceptance gate runs the bare
## command, which also collects the perf benchmark; `make ci` runs the perf
## file separately, so exclude it here to avoid timing it twice)
test:
	$(PYTHON) -m pytest -x -q --ignore=benchmarks/test_bench_perf_nlp.py

## perf smoke: times the NLP hot paths and writes BENCH_nlp.json
perf:
	$(PYTHON) -m pytest benchmarks/test_bench_perf_nlp.py -q -s

## what CI runs on every PR
ci: test perf
