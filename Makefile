# Development entry points.  Every PR runs `make ci` — lint, the tier-1
# test suite, the perf smoke benchmarks, and the perf regression gate —
# so regressions in style, correctness, or throughput are caught
# identically everywhere (.github/workflows/ci.yml runs exactly `make ci`
# on a 3.11/3.12 matrix and uploads the BENCH_*.json artifacts).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

## Perf smoke benchmarks are timed individually by `make perf`; the tier-1
## ignore list is derived from the directory listing so a newly added
## benchmark is excluded automatically instead of being silently timed a
## second time by the plain test run.
PERF_BENCHES := $(wildcard benchmarks/test_bench_perf_*.py)

.PHONY: test lint perf perf-nlp perf-crawl perf-sweep perf-check ci

## tier-1: the full test suite (the driver's acceptance gate runs the bare
## command, which also collects the perf benchmarks; `make ci` runs the perf
## files separately, so exclude them here to avoid timing them twice)
test:
	$(PYTHON) -m pytest -x -q $(foreach bench,$(PERF_BENCHES),--ignore=$(bench))

## style gate: ruff check (pyflakes/pycodestyle rules from ruff.toml) plus
## the black-compatible formatter in --check mode.  When ruff is not on
## PATH (this container ships no linters and installs are not allowed) the
## gate is skipped with a notice; the CI workflow installs ruff and
## enforces it for real.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check . && ruff format --check .; \
	else \
		echo "ruff not installed; skipping lint (the CI workflow installs and runs it)"; \
	fi

## perf smokes: time the NLP hot paths (BENCH_nlp.json), the concurrent
## crawl engine (BENCH_crawl.json), and the cached sweep engine
## (BENCH_sweep.json), then print the merged trajectory
perf-nlp:
	$(PYTHON) -m pytest benchmarks/test_bench_perf_nlp.py -q -s

perf-crawl:
	$(PYTHON) -m pytest benchmarks/test_bench_perf_crawl.py -q -s

perf-sweep:
	$(PYTHON) -m pytest benchmarks/test_bench_perf_sweep.py -q -s

perf: perf-nlp perf-crawl perf-sweep
	$(PYTHON) benchmarks/perf_report.py

## regression gate: every fresh BENCH_*.json timing must stay within 1.5x
## of the baseline committed at HEAD (new benchmarks are skipped until
## their first baseline lands)
perf-check:
	$(PYTHON) benchmarks/perf_report.py --check

## what CI runs on every push/PR.  Phases run via sub-makes so the order
## (lint -> tests -> perf smokes -> regression gate over the BENCH files
## the smokes just rewrote) holds even under `make -jN`.
ci:
	$(MAKE) lint
	$(MAKE) test
	$(MAKE) perf
	$(MAKE) perf-check
