# Development entry points.  Every PR runs `make ci` — lint, the tier-1
# test suite, the perf smoke benchmarks, and the perf regression gate —
# so regressions in style, correctness, or throughput are caught
# identically everywhere (.github/workflows/ci.yml runs exactly `make ci`
# on a 3.11/3.12 matrix and uploads the BENCH_*.json artifacts).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

## Perf smoke benchmarks are timed individually by `make perf`; the tier-1
## ignore list is derived from the directory listing so a newly added
## benchmark is excluded automatically instead of being silently timed a
## second time by the plain test run.
PERF_BENCHES := $(wildcard benchmarks/test_bench_perf_*.py)

.PHONY: test test-process lint perf perf-nlp perf-crawl perf-sweep perf-scale perf-incr perf-check coverage ci

## Minimum total line coverage (percent) enforced by `make coverage`.
## Recorded when the coverage gate landed (measured ~95% total line
## coverage; the floor leaves margin for counting differences across
## coverage.py versions).  Raise it as coverage grows, never lower it to
## paper over a regression.
COVERAGE_BASELINE ?= 90

## tier-1: the full test suite (the driver's acceptance gate runs the bare
## command, which also collects the perf benchmarks; `make ci` runs the perf
## files separately, so exclude them here to avoid timing them twice)
test:
	$(PYTHON) -m pytest -x -q $(foreach bench,$(PERF_BENCHES),--ignore=$(bench))

## process-backend smoke: re-run the tests marked `process_smoke` (backend
## contract, warm WorkerPool lifecycle/broadcast/crash-replacement, sharded
## crawl, sharded suite) with REPRO_TEST_BACKEND=process, so the
## ProcessPoolExecutor path — including the persistent warm-pool path — is
## exercised end to end by CI even where those tests' default configuration
## would pick threads.
test-process:
	REPRO_TEST_BACKEND=process $(PYTHON) -m pytest -x -q -m process_smoke \
		$(foreach bench,$(PERF_BENCHES),--ignore=$(bench))

## style gate: ruff check (pyflakes/pycodestyle rules from ruff.toml) plus
## the black-compatible formatter in --check mode.  When ruff is not on
## PATH (this container ships no linters and installs are not allowed) the
## gate is skipped with a notice; the CI workflow installs ruff and
## enforces it for real.  The stdlib-only checks always run: analysis code
## must stream from a CorpusSource instead of calling load_corpus
## (tools/check_no_materialize.py), and a BENCH_*.json refresh must not
## hide a >1.5x rss_import_floor_mb jump behind a flat rss_workload_mb
## (tools/check_bench_refresh.py).
lint:
	$(PYTHON) tools/check_no_materialize.py
	$(PYTHON) tools/check_bench_refresh.py
	@staged="$$(git ls-files | grep -E '(^|/)__pycache__/|\.py[co]$$' || true)"; \
	if [ -n "$$staged" ]; then \
		echo "ERROR: make lint: compiled bytecode is tracked by git in these files:"; \
		echo "$$staged" | sed 's/^/  - /'; \
		echo "fix: git rm -r --cached <each path above>  (and make sure .gitignore covers it)"; \
		exit 1; \
	fi
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check . && ruff format --check .; \
	else \
		echo "ruff not installed; skipping lint (the CI workflow installs and runs it)"; \
	fi

## perf smokes: time the NLP hot paths (BENCH_nlp.json), the concurrent
## crawl engine (BENCH_crawl.json), and the cached sweep engine
## (BENCH_sweep.json), then print the merged trajectory
perf-nlp:
	$(PYTHON) -m pytest benchmarks/test_bench_perf_nlp.py -q -s

perf-crawl:
	$(PYTHON) -m pytest benchmarks/test_bench_perf_crawl.py -q -s

perf-sweep:
	$(PYTHON) -m pytest benchmarks/test_bench_perf_sweep.py -q -s

## perf-scale also runs the dispatch smoke (`dispatch_*` rows: warm-pool
## vs cold-pool dispatch overhead + per-task pickle bytes under the
## broadcast-once contract), so `make ci` gates pool amortization too.
perf-scale:
	$(PYTHON) -m pytest benchmarks/test_bench_perf_scale.py -q -s

## perf-incr times the incremental epoch re-crawl against a cold crawl of
## the same evolved world (`incr_recrawl_*` rows in BENCH_crawl.json) and
## gates the carry-forward speedup.
perf-incr:
	$(PYTHON) -m pytest benchmarks/test_bench_perf_incr.py -q -s

perf: perf-nlp perf-crawl perf-sweep perf-scale perf-incr
	$(PYTHON) benchmarks/perf_report.py

## coverage gate: total line coverage of repro/ must stay at or above
## COVERAGE_BASELINE.  Skipped with a notice when coverage.py is missing
## (this container ships without it); the CI coverage job installs it and
## enforces the floor for real.
coverage:
	@if $(PYTHON) -c "import coverage" 2>/dev/null; then \
		$(PYTHON) -m coverage run --source=repro -m pytest -q \
			$(foreach bench,$(PERF_BENCHES),--ignore=$(bench)) && \
		$(PYTHON) -m coverage report --fail-under=$(COVERAGE_BASELINE); \
	else \
		echo "coverage not installed; skipping (the CI coverage job installs and runs it)"; \
	fi

## regression gate: every fresh BENCH_*.json timing must stay within 1.5x
## of the baseline committed at HEAD (new benchmarks are skipped until
## their first baseline lands)
perf-check:
	$(PYTHON) benchmarks/perf_report.py --check

## what CI runs on every push/PR.  Phases run via sub-makes so the order
## (lint -> tests -> perf smokes -> regression gate over the BENCH files
## the smokes just rewrote) holds even under `make -jN`.
ci:
	$(MAKE) lint
	$(MAKE) test
	$(MAKE) test-process
	$(MAKE) perf
	$(MAKE) perf-check
