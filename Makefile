# Development entry points.  Every PR runs `make ci` (tier-1 tests plus the
# NLP and crawl perf smoke benchmarks) so regressions in correctness or
# throughput are caught identically everywhere.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test perf perf-nlp perf-crawl ci

## tier-1: the full test suite (the driver's acceptance gate runs the bare
## command, which also collects the perf benchmarks; `make ci` runs the perf
## files separately, so exclude them here to avoid timing them twice)
test:
	$(PYTHON) -m pytest -x -q \
		--ignore=benchmarks/test_bench_perf_nlp.py \
		--ignore=benchmarks/test_bench_perf_crawl.py

## perf smokes: time the NLP hot paths (BENCH_nlp.json) and the concurrent
## crawl engine (BENCH_crawl.json), then print the merged trajectory
perf-nlp:
	$(PYTHON) -m pytest benchmarks/test_bench_perf_nlp.py -q -s

perf-crawl:
	$(PYTHON) -m pytest benchmarks/test_bench_perf_crawl.py -q -s

perf: perf-nlp perf-crawl
	$(PYTHON) benchmarks/perf_report.py

## what CI runs on every PR
ci: test perf
