"""Benchmark E-F9 — Figure 9: disclosure consistency heat map by data category."""

from repro.analysis.disclosure import analyze_disclosure
from repro.policy.labels import ConsistencyLabel


def test_bench_figure9(benchmark, suite):
    disclosure = benchmark(analyze_disclosure, suite.policy_report, suite.corpus)

    distributions = disclosure.category_distributions
    assert len(distributions) >= 12

    # Omission dominates in the vast majority of categories (every category in
    # the paper's heat map has omitted >= 65%).
    majority_omitted = [
        distribution[ConsistencyLabel.OMITTED] > 0.5 for distribution in distributions.values()
    ]
    assert sum(majority_omitted) / len(majority_omitted) > 0.6

    # Personal information is among the most clearly disclosed categories
    # (paper: 25.4% clear, the highest of any category).
    personal = distributions.get("Personal information")
    if personal is not None:
        overall_clear = disclosure.overall_distribution()[ConsistencyLabel.CLEAR]
        assert personal[ConsistencyLabel.CLEAR] >= overall_clear * 0.8

    # Every row is a probability distribution.
    for distribution in distributions.values():
        assert abs(sum(distribution.values()) - 1.0) < 1e-9
