"""Benchmark E-S42 — Section 4.2: headline data-collection statistics."""

from benchmarks.conftest import assert_close
from repro.analysis.prohibited import analyze_prohibited
from repro.experiments.paper_values import PAPER_VALUES
from repro.taxonomy.builtin import load_builtin_taxonomy


def test_bench_headline_stats(benchmark, suite):
    prohibited = benchmark(
        analyze_prohibited, suite.corpus, suite.classification, load_builtin_taxonomy()
    )
    paper = PAPER_VALUES["headline_stats"]
    collection = suite.collection

    # ~half of Actions collect 5+ items; ~one fifth collect 10+ items.
    assert_close(collection.share_with_at_least(5), paper["actions_5_plus_items"], rel=0.35)
    assert_close(collection.share_with_at_least(10), paper["actions_10_plus_items"], rel=0.6)
    # 9.1% of Action-embedding GPTs include Actions collecting prohibited
    # security credentials.
    assert_close(prohibited.offending_gpt_share, paper["prohibited_gpt_share"], rel=1.0, abs_tol=0.06)
    assert prohibited.offending_actions
    # Nearly half of Action-embedding GPTs collect the user's query.
    query_row = collection.row_for("Query", "Search query")
    assert query_row is not None
    assert_close(query_row.gpt_share, paper["gpt_query_collection_share"], rel=0.5)
