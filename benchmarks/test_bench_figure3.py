"""Benchmark E-F3 — Figure 3: taxonomy coverage of data-type descriptions."""

from repro.analysis.coverage import analyze_coverage


def test_bench_figure3(benchmark, suite):
    coverage = benchmark(analyze_coverage, suite.classification)

    # Every observed category covers at least a handful of distinct
    # descriptions, and categories cover more than individual data types.
    assert coverage.n_distinct_descriptions > 100
    assert min(coverage.category_coverage.values()) >= 1
    assert coverage.median_coverage("category") >= coverage.median_coverage("type")
    # A majority of data types cover several distinct descriptions (paper:
    # 53.1% of types cover 10+ on the full-size corpus; the synthetic corpus is
    # smaller so the threshold scales down).
    assert coverage.share_covering_at_least(3, level="type") > 0.3
    # The taxonomy covers the overwhelming majority of descriptions (paper:
    # 92.05% after refinement).
    assert coverage.classified_share() > 0.85
    # CDFs are well-formed.
    for level in ("type", "category"):
        cdf = coverage.coverage_cdf(level)
        assert cdf[-1][1] == 1.0
