"""Timed scale benchmarks for the sharded corpus store + streaming engine.

Measures the properties that make the sharded data layer safe to use at
100k-GPT scale and records them in ``BENCH_scale.json``:

* ``scale_2000_stream_vs_single`` — at the paper's 2000-GPT scale, fused
  one-pass streaming analysis over the shard store versus materializing the
  corpus and running the single-pass analyzers.  Sharding must cost nothing
  here (parity within noise); the asserted bound is "not slower than 2x".
* ``scale_50k_stream_vs_single`` — the same comparison at a 50k-GPT stress
  scale (run in a subprocess so its peak RSS is measured in isolation);
  here streaming must actually *win*, because the materialized corpus no
  longer fits comfortably.
* ``peak_rss_mb_50k_vs_2000`` — peak RSS of a 50k-GPT *sharded* ingest +
  analysis run versus a 2000-GPT *unsharded* generate + crawl + analysis
  run, both measured as child processes via their own ``VmHWM`` peak
  (``_peak_rss_raw`` — immune to the parent's inherited ``ru_maxrss``).  The
  acceptance bound: the 50k sharded run stays under **2x** the 2000
  unsharded run's peak.  (This record's "timings" are megabytes, which also
  turns the CI perf gate into a memory-regression gate for the ingest
  path.)
* ``stream_50k_process_vs_thread`` — the 50k shard map on the process
  backend versus the thread backend at the same worker count.  Pure-Python
  accumulation is GIL-bound on threads, so this is where the process pool
  must show real CPU scaling: the gate is ``MIN_PROCESS_SPEEDUP``× at
  ``WORKERS`` workers.  Skipped with a notice on machines with fewer than
  ``MIN_PROCESS_CORES`` cores, where there is no parallelism to measure —
  the skip is recorded via ``PerfReport.note_skipped`` so ``perf_report.py
  --check`` reports the gated-but-uncommitted row as MISSING instead of
  passing silently.
* ``dispatch_warm_vs_cold_pool`` — many small batches (``DISPATCH_STAGES``
  stages × ``DISPATCH_SHARDS`` tasks, the shape of a sharded crawl's
  resolve → policy phases) on a cold ``ProcessBackend`` per stage versus
  one warm ``WorkerPool`` reused across all stages.  The timing row is
  recorded on every runner (pool-spawn amortization is measurable at any
  core count); the ≥``MIN_DISPATCH_SPEEDUP``× assertion is skipped with a
  notice under ``MIN_PROCESS_CORES`` cores.  Results must be identical
  warm or cold — reuse is an execution knob.
* ``classify_50k_sharded`` — peak RSS (MB, like the RSS row) of a 50k-GPT
  **mixed** sharded workload — ingest + shard-partitioned description
  extraction + chunked classification, all streamed from the store —
  versus the crawl-only sharded ingest peak sampled in the same child
  process.  Sharing one process means both readings share one import
  floor, so the ratio isolates what classification *adds*: the gate is
  ≤``MAX_CLASSIFY_RSS_RATIO``× (classification must stay description-
  bounded, never corpus-bounded).  A companion in-test gate at the paper's
  2000-GPT scale pins streamed classification wall time to
  ≤``MAX_CLASSIFY_WALL_RATIO``× materialize-then-classify, with
  byte-identical labels.
* ``dispatch_pickle_kb_per_task`` — bytes pickled per sharded-crawl task:
  the cold path's ``(ShardCrawlSpec, stage, shard, keys)`` payload (the
  whole ecosystem, per task) versus the warm path's broadcast-once
  ``(stage, shard, keys)`` reference.  Units are KiB, not seconds (like
  the RSS row, this turns the perf gate into a payload-size gate); the
  broadcast contract must shrink per-task pickles ≥``MIN_PICKLE_SHRINK``×.

Both child probes share an import-time RSS floor (numpy/scipy/networkx,
~115 MB) that dominates their peak readings, so the 2x ratio alone cannot
see a regression — or an allocator/THP artifact — that inflates both sides
equally.  Two guards close that hole: each child also reports its RSS right
after imports (persisted under ``invariants`` so a baseline diff shows
whether the *floor* or the *workload* moved), and the 50k peak is pinned
under the absolute ceiling ``RSS_ABS_LIMIT_MB``, which a baseline refresh
cannot ratchet past.

Alongside the timings, the 50k run asserts the streaming results are
**byte-identical** (canonical JSON) to the single-pass results on the
materialized corpus — the invariant that makes the sharded path safe for
paper numbers — and the verdict is persisted under ``invariants`` in
``BENCH_scale.json``.
"""

from __future__ import annotations

import inspect
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

from perf_report import REPO_ROOT, PerfReport, prior_key_order

from repro.analysis import (
    analyze_cooccurrence,
    analyze_crawl_stats,
    analyze_multi_action,
    analyze_tool_usage,
    build_party_index,
)
from repro.analysis.streaming import analyze_shards
from repro.crawler.pipeline import CrawlPipeline
from repro.ecosystem.config import EcosystemConfig
from repro.ecosystem.generator import EcosystemGenerator
from repro.io.shards import ShardedCorpusStore

REPORT = PerfReport("scale")

#: The paper's corpus scale and the stress scale of the acceptance bound.
PAPER_GPTS = 2000
STRESS_GPTS = 50_000
SEED = 17
SHARDS_PAPER = 16
SHARDS_STRESS = 64
WORKERS = 4
#: Repeats for the in-child stress-scale timings (best-of-N), so one noisy
#: run cannot skew the recorded stream-vs-single speedup.
CHILD_REPEATS = 3

#: Required speedup of the process backend over the thread backend on the
#: 50k pure-Python shard map, and the core count below which the comparison
#: is meaningless (no parallelism to win back from the GIL).
MIN_PROCESS_SPEEDUP = 1.5
MIN_PROCESS_CORES = 4

#: Shape of the warm-vs-cold dispatch benchmark — a sharded crawl's worth
#: of small per-stage batches (resolve + policies across several runs, as a
#: sweep or suite issues them), the amortization factor one warm pool must
#: win over per-stage cold pools, and the per-task pickle shrink the
#: broadcast-once contract must deliver.
DISPATCH_STAGES = 12
DISPATCH_SHARDS = 8
DISPATCH_WORKERS = 4
MIN_DISPATCH_SPEEDUP = 2.0
MIN_PICKLE_SHRINK = 10.0

#: Gates of the ``classify_50k_sharded`` row: the mixed sharded workload's
#: peak RSS over the crawl-only sharded peak (same child process, shared
#: import floor — the ratio isolates classification's own footprint), and
#: the 2000-GPT streamed-classification wall over materialize-then-classify.
MAX_CLASSIFY_RSS_RATIO = 1.25
MAX_CLASSIFY_WALL_RATIO = 1.5

#: Absolute ceiling (MB) for the 50k sharded run's peak RSS.  The 2x ratio
#: assert below compares two readings that share the same import floor, so
#: it passes even when both balloon together — and committing such a run as
#: the new baseline would let the perf gate's 1.5x tolerance ratchet the
#: allowed peak upward indefinitely.  Healthy runs peak around 125 MB; the
#: ceiling leaves room for allocator/THP variance across platforms while
#: still catching an unbounded ratchet.
RSS_ABS_LIMIT_MB = 512

#: ``ru_maxrss`` units per megabyte: kibibytes on Linux, bytes on macOS.
_MAXRSS_PER_MB = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0

#: Invariant verdicts persisted next to the timing records.
INVARIANTS = {}

#: The analyses both paths run (the corpus-stream group; classification at
#: 50k would dominate the measurement with identical work on both sides).
_ANALYSES = ["crawl_stats", "tool_usage", "multi_action", "cooccurrence"]


#: Shared between the in-process parity benchmark and the child probes —
#: their code strings embed these functions' source via ``inspect.getsource``
#: so the timing pattern and the analysis set can never drift apart.
def _single_pass(corpus):
    party = build_party_index(corpus)
    return {
        "crawl_stats": analyze_crawl_stats(corpus),
        "tool_usage": analyze_tool_usage(corpus, party),
        "multi_action": analyze_multi_action(corpus),
        "cooccurrence": analyze_cooccurrence(corpus),
    }


def _peak_rss_raw():
    """This process's own peak RSS, in ``ru_maxrss`` units (KiB on Linux).

    Reads ``VmHWM`` from ``/proc/self/status`` where available.  Unlike
    ``getrusage().ru_maxrss`` — which Linux carries across ``fork``+``exec``
    in ``signal->maxrss``, so a child process *starts* at whatever RSS
    high-water mark its parent had ever reached — ``VmHWM`` belongs to the
    process's own fresh ``mm`` and resets on exec.  Measuring the child
    probes with ``ru_maxrss`` made their "import floor" track the
    coordinating pytest process's historical peak (the recurring
    141→321 MB baseline refresh artifacts previously attributed to
    allocator/THP state).  Falls back to ``ru_maxrss`` off Linux; both are
    KiB on Linux, and ``_MAXRSS_PER_MB`` handles macOS's bytes.
    """
    import resource

    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _dispatch_probe(stage, index):
    """Trivial dispatch-benchmark task body: returns its global sequence
    number, so result order proves submission-order merging under reuse.
    The work is nothing — pool spawn + pickle overhead is the measurement."""
    return stage * DISPATCH_SHARDS + index


def _best(fn, repeats):
    """Best-of-N timing: (min wall seconds, last result)."""
    timings = []
    result = None
    for _ in range(repeats):
        start = time.monotonic()
        result = fn()
        timings.append(time.monotonic() - start)
    return min(timings), result


@pytest.fixture(scope="module", autouse=True)
def _emit_report():
    """Print the timing table and write BENCH_scale.json after the module."""
    yield
    print()
    print(REPORT.format_table())
    # Capture the prior invariant key order before write() replaces the file,
    # so refreshes diff as value changes only (new keys append at the end).
    target = REPO_ROOT / f"BENCH_{REPORT.name}.json"
    prior_invariants = prior_key_order(target, "invariants")
    path = REPORT.write()
    # Persist the invariant verdicts (byte-identity, RSS ratio) alongside
    # the timing records; perf_report's loader ignores unknown keys.
    payload = json.loads(path.read_text(encoding="utf-8"))
    rank = {key: index for index, key in enumerate(prior_invariants)}
    payload["invariants"] = dict(
        sorted(INVARIANTS.items(), key=lambda item: rank.get(item[0], len(rank)))
    )
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")


# ---------------------------------------------------------------------------
# Child-process probes (isolated peak-RSS measurement)
# ---------------------------------------------------------------------------
_CHILD_UNSHARDED_2000 = f"""
import json, resource, time
t0 = time.monotonic()
from repro.ecosystem.config import EcosystemConfig
from repro.ecosystem.generator import EcosystemGenerator
from repro.crawler.pipeline import CrawlPipeline
from repro.analysis import (analyze_crawl_stats, analyze_tool_usage,
    analyze_multi_action, analyze_cooccurrence, build_party_index)

{inspect.getsource(_peak_rss_raw)}
rss_import_raw = _peak_rss_raw()

{inspect.getsource(_single_pass)}
ecosystem = EcosystemGenerator(
    EcosystemConfig.paper_calibrated(n_gpts={PAPER_GPTS}, seed={SEED})
).generate()
corpus = CrawlPipeline.from_ecosystem(ecosystem, seed={SEED}).run()
results = _single_pass(corpus)
print(json.dumps({{
    "rss_raw": _peak_rss_raw(),
    "rss_import_raw": rss_import_raw,
    "wall_s": time.monotonic() - t0,
    "n_gpts": results["crawl_stats"].total_unique_gpts,
}}))
"""

_CHILD_SHARDED_50K = f"""
import json, resource, tempfile, time
from repro.ecosystem.config import EcosystemConfig
from repro.ecosystem.generator import generate_sharded_corpus
from repro.analysis.streaming import analyze_shards
from repro.analysis import (analyze_crawl_stats, analyze_tool_usage,
    analyze_multi_action, analyze_cooccurrence, build_party_index)
from repro.io import canonical_json

{inspect.getsource(_peak_rss_raw)}
rss_import_raw = _peak_rss_raw()

{inspect.getsource(_single_pass)}
{inspect.getsource(_best)}
def fingerprint(results):
    stats = results["crawl_stats"]
    tools = results["tool_usage"]
    multi = results["multi_action"]
    graph = results["cooccurrence"]
    return canonical_json({{
        "gpts": stats.total_unique_gpts,
        "actions": stats.n_unique_actions,
        "availability": stats.policy_availability,
        "tool_shares": tools.tool_shares,
        "distribution": multi.action_count_distribution,
        "cross_domain": multi.cross_domain_share,
        "edges": graph.n_edges,
        "nodes": graph.n_nodes,
        "top": graph.top_by_weighted_degree(10),
    }})

with tempfile.TemporaryDirectory() as root:
    t0 = time.monotonic()
    store = generate_sharded_corpus(
        root,
        config=EcosystemConfig.paper_calibrated(n_gpts={STRESS_GPTS}, seed={SEED}),
        n_shards={SHARDS_STRESS},
        flush_every=500,
    )
    ingest_s = time.monotonic() - t0

    stream_s, streamed = _best(
        lambda: analyze_shards(store, names={_ANALYSES!r}, workers={WORKERS}),
        repeats={CHILD_REPEATS},
    )
    # Peak RSS of the *sharded* phase: sampled before the single-pass
    # baseline below materializes the whole 50k corpus (the high-water
    # mark covers the whole process lifetime).
    rss_sharded_raw = _peak_rss_raw()

    single_s, single = _best(
        lambda: _single_pass(store.load_corpus()), repeats={CHILD_REPEATS}
    )

print(json.dumps({{
    "rss_raw": rss_sharded_raw,
    "rss_import_raw": rss_import_raw,
    "rss_with_materialize_raw": _peak_rss_raw(),
    "ingest_s": ingest_s,
    "stream_s": stream_s,
    "single_s": single_s,
    "identical": fingerprint(streamed) == fingerprint(single),
    "n_gpts": single["crawl_stats"].total_unique_gpts,
}}))
"""


_CHILD_CLASSIFY_50K = f"""
import json, resource, tempfile, time
from repro.ecosystem.config import EcosystemConfig
from repro.ecosystem.generator import generate_sharded_corpus
from repro.analysis.streaming import classify_shards
from repro.classification.classifier import ClassifierConfig
from repro.llm.simulated import SimulatedLLM
from repro.taxonomy.builtin import load_builtin_taxonomy

{inspect.getsource(_peak_rss_raw)}
rss_import_raw = _peak_rss_raw()

with tempfile.TemporaryDirectory() as root:
    t0 = time.monotonic()
    store = generate_sharded_corpus(
        root,
        config=EcosystemConfig.paper_calibrated(n_gpts={STRESS_GPTS}, seed={SEED}),
        n_shards={SHARDS_STRESS},
        flush_every=500,
    )
    ingest_s = time.monotonic() - t0
    # Crawl-only peak, sampled before classification in the SAME process:
    # the import floor is shared, so mixed/crawl isolates what the
    # classification stage adds.
    rss_crawl_raw = _peak_rss_raw()

    taxonomy = load_builtin_taxonomy()
    llm = SimulatedLLM(knowledge_taxonomy=taxonomy, seed={SEED})
    t1 = time.monotonic()
    # Zero-shot, so no 50k-scale ground-truth labelling rides the probe;
    # the memory shape (streamed extraction rows + chunked label lists)
    # is the same with or without few-shot retrieval.
    result = classify_shards(
        store,
        taxonomy=taxonomy,
        llm=llm,
        fewshot_store=None,
        config=ClassifierConfig(use_fewshot=False),
        workers={WORKERS},
    )
    classify_s = time.monotonic() - t1

print(json.dumps({{
    "rss_crawl_raw": rss_crawl_raw,
    "rss_mixed_raw": _peak_rss_raw(),
    "rss_import_raw": rss_import_raw,
    "ingest_s": ingest_s,
    "classify_s": classify_s,
    "n_labels": len(result.labels),
}}))
"""


def _run_child(code: str) -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    completed = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, env=env, check=True
    )
    return json.loads(completed.stdout.strip().splitlines()[-1])


@pytest.fixture(scope="module")
def paper_ecosystem():
    """One paper-calibrated 2000-GPT ecosystem, shared across benchmarks."""
    return EcosystemGenerator(
        EcosystemConfig.paper_calibrated(n_gpts=PAPER_GPTS, seed=SEED)
    ).generate()


@pytest.fixture(scope="module")
def child_metrics():
    """Run both child probes once and share their measurements."""
    unsharded = _run_child(_CHILD_UNSHARDED_2000)
    sharded = _run_child(_CHILD_SHARDED_50K)
    assert unsharded["n_gpts"] == PAPER_GPTS
    assert sharded["n_gpts"] == STRESS_GPTS
    return {"unsharded_2000": unsharded, "sharded_50k": sharded}


# ---------------------------------------------------------------------------
# Benchmarks
# ---------------------------------------------------------------------------
def test_paper_scale_stream_parity(tmp_path, paper_ecosystem):
    """At 2000 GPTs, streaming from shards matches materialize-and-analyze."""
    corpus = CrawlPipeline.from_ecosystem(paper_ecosystem, seed=SEED).run()
    store = ShardedCorpusStore.write_corpus(corpus, tmp_path / "shards", n_shards=SHARDS_PAPER)

    single_s, _ = _best(lambda: _single_pass(store.load_corpus()), repeats=5)
    stream_s, _ = _best(
        lambda: analyze_shards(store, names=_ANALYSES, workers=WORKERS), repeats=5
    )

    entry = REPORT.record(
        "scale_2000_stream_vs_single",
        baseline_s=single_s,
        optimized_s=stream_s,
        items=PAPER_GPTS,
    )
    # Sharding must be free at paper scale: parity within noise, never a
    # slowdown past 2x.
    assert entry.speedup >= 0.5, (
        f"streaming {entry.speedup:.2f}x vs single-pass at paper scale "
        "(must stay within 2x)"
    )


def test_stress_scale_stream_beats_single(child_metrics):
    """At 50k GPTs, fused streaming beats materialize-and-analyze."""
    sharded = child_metrics["sharded_50k"]
    entry = REPORT.record(
        "scale_50k_stream_vs_single",
        baseline_s=sharded["single_s"],
        optimized_s=sharded["stream_s"],
        items=STRESS_GPTS,
    )
    INVARIANTS["byte_identical_50k"] = bool(sharded["identical"])
    assert sharded["identical"], "sharded vs single-pass results diverged at 50k"
    assert entry.speedup > 1.05, (
        f"streaming only {entry.speedup:.2f}x vs single-pass at stress scale"
    )


def test_stress_scale_process_backend_scales(tmp_path):
    """At 50k GPTs, the process backend beats the GIL-bound thread pool on
    the pure-Python shard map (the ROADMAP's CPU-scaling item)."""
    cores = os.cpu_count() or 1
    if cores < MIN_PROCESS_CORES:
        # Register the skip in the artifact before bailing: the module
        # teardown still writes BENCH_scale.json, and perf_report --check
        # turns a gated-away metric with no committed row into a MISSING
        # notice instead of silence.
        REPORT.note_skipped(
            "stream_50k_process_vs_thread",
            f"needs >= {MIN_PROCESS_CORES} cores (this runner has {cores})",
        )
        pytest.skip(
            f"process-vs-thread scaling needs >= {MIN_PROCESS_CORES} cores "
            f"(this runner has {cores}); skipping the CPU-scaling gate"
        )
    from repro.ecosystem.generator import generate_sharded_corpus

    store = generate_sharded_corpus(
        tmp_path / "shards50k",
        config=EcosystemConfig.paper_calibrated(n_gpts=STRESS_GPTS, seed=SEED),
        n_shards=SHARDS_STRESS,
        flush_every=500,
    )
    thread_s, threaded = _best(
        lambda: analyze_shards(store, names=_ANALYSES, workers=WORKERS, backend="thread"),
        repeats=CHILD_REPEATS,
    )
    process_s, processed = _best(
        lambda: analyze_shards(store, names=_ANALYSES, workers=WORKERS, backend="process"),
        repeats=CHILD_REPEATS,
    )
    # Identical results on both backends — the invariant that makes the
    # backend a pure execution knob.
    assert (
        threaded["crawl_stats"].total_unique_gpts
        == processed["crawl_stats"].total_unique_gpts
        == STRESS_GPTS
    )
    assert threaded["multi_action"].action_count_distribution == (
        processed["multi_action"].action_count_distribution
    )

    entry = REPORT.record(
        "stream_50k_process_vs_thread",
        baseline_s=thread_s,
        optimized_s=process_s,
        items=STRESS_GPTS,
    )
    INVARIANTS["process_backend_speedup_50k"] = round(entry.speedup, 3)
    assert entry.speedup >= MIN_PROCESS_SPEEDUP, (
        f"process backend only {entry.speedup:.2f}x vs threads on the 50k "
        f"shard map at {WORKERS} workers (needs {MIN_PROCESS_SPEEDUP}x)"
    )


def test_classify_50k_sharded_memory_bounded():
    """The mixed sharded workload (ingest + streamed extraction + chunked
    classification) must stay description-bounded: its peak RSS may exceed
    the crawl-only sharded peak by at most ``MAX_CLASSIFY_RSS_RATIO``x."""
    child = _run_child(_CHILD_CLASSIFY_50K)
    assert child["n_labels"] > 0
    rss_crawl_mb = child["rss_crawl_raw"] / _MAXRSS_PER_MB
    rss_mixed_mb = child["rss_mixed_raw"] / _MAXRSS_PER_MB
    entry = REPORT.record(
        "classify_50k_sharded",
        baseline_s=rss_crawl_mb,
        optimized_s=rss_mixed_mb,
        items=STRESS_GPTS,
    )
    ratio = rss_mixed_mb / rss_crawl_mb
    INVARIANTS["classify_rss_ratio_mixed_over_crawl"] = round(ratio, 3)
    INVARIANTS["classify_50k_s"] = round(child["classify_s"], 3)
    INVARIANTS["classify_50k_n_labels"] = child["n_labels"]
    assert entry is not None
    assert ratio <= MAX_CLASSIFY_RSS_RATIO, (
        f"mixed sharded 50k workload peaks at {rss_mixed_mb:.0f}MB, "
        f"{ratio:.2f}x the crawl-only sharded peak {rss_crawl_mb:.0f}MB "
        f"(classification must stay within {MAX_CLASSIFY_RSS_RATIO}x)"
    )
    assert rss_mixed_mb < RSS_ABS_LIMIT_MB, (
        f"mixed sharded 50k peak RSS {rss_mixed_mb:.0f}MB exceeds the "
        f"absolute {RSS_ABS_LIMIT_MB}MB ceiling"
    )


def test_paper_scale_classify_stream_vs_materialize(tmp_path, paper_ecosystem):
    """At 2000 GPTs, shard-partitioned classification must cost at most
    ``MAX_CLASSIFY_WALL_RATIO``x materialize-then-classify, with
    byte-identical labels."""
    from repro.analysis.streaming import classify_shards
    from repro.classification.classifier import ClassifierConfig, DataCollectionClassifier
    from repro.classification.descriptions import extract_descriptions
    from repro.io import canonical_json, classification_to_payload
    from repro.llm.simulated import SimulatedLLM
    from repro.taxonomy.builtin import load_builtin_taxonomy

    corpus = CrawlPipeline.from_ecosystem(paper_ecosystem, seed=SEED).run()
    store = ShardedCorpusStore.write_corpus(
        corpus, tmp_path / "shards", n_shards=SHARDS_PAPER
    )
    taxonomy = load_builtin_taxonomy()
    llm = SimulatedLLM(knowledge_taxonomy=taxonomy, seed=SEED)
    config = ClassifierConfig(use_fewshot=False)

    def materialize_then_classify():
        rebuilt = store.load_corpus()
        classifier = DataCollectionClassifier(taxonomy=taxonomy, llm=llm, config=config)
        return classifier.classify_many(extract_descriptions(rebuilt))

    def streamed():
        return classify_shards(
            store, taxonomy=taxonomy, llm=llm, fewshot_store=None,
            config=config, workers=WORKERS,
        )

    single_s, single = _best(materialize_then_classify, repeats=CHILD_REPEATS)
    stream_s, streamed_result = _best(streamed, repeats=CHILD_REPEATS)

    identical = canonical_json(classification_to_payload(streamed_result)) == (
        canonical_json(classification_to_payload(single))
    )
    INVARIANTS["classify_2000_byte_identical"] = identical
    INVARIANTS["classify_2000_wall_ratio"] = round(stream_s / single_s, 3)
    assert identical, "streamed classification diverged from classify_many at 2000"
    assert stream_s <= MAX_CLASSIFY_WALL_RATIO * single_s, (
        f"streamed classification {stream_s:.2f}s vs materialize-then-"
        f"classify {single_s:.2f}s at 2000 GPTs "
        f"(must stay within {MAX_CLASSIFY_WALL_RATIO}x)"
    )


def test_dispatch_warm_vs_cold_pool():
    """One warm :class:`WorkerPool` reused across many small batches beats a
    cold :class:`ProcessBackend` (fresh pool per batch) on dispatch overhead,
    with byte-identical results — reuse is an execution knob."""
    from repro.exec import ExecTask, ProcessBackend, WorkerPool

    def batch(stage):
        return [
            ExecTask(
                key=f"s{stage:02d}-t{index:02d}",
                fn=_dispatch_probe,
                args=(stage, index),
                seed=stage * DISPATCH_SHARDS + index,
            )
            for index in range(DISPATCH_SHARDS)
        ]

    def cold():
        results = []
        for stage in range(DISPATCH_STAGES):
            outcomes = ProcessBackend(workers=DISPATCH_WORKERS).run(batch(stage))
            results.extend(outcome.result for outcome in outcomes)
        return results

    def warm():
        results = []
        with WorkerPool(kind="process", workers=DISPATCH_WORKERS) as pool:
            for stage in range(DISPATCH_STAGES):
                outcomes = pool.run(batch(stage))
                results.extend(outcome.result for outcome in outcomes)
        return results

    cold_s, cold_results = _best(cold, repeats=2)
    warm_s, warm_results = _best(warm, repeats=2)

    expected = list(range(DISPATCH_STAGES * DISPATCH_SHARDS))
    assert cold_results == expected
    assert warm_results == expected
    INVARIANTS["dispatch_warm_equals_cold"] = warm_results == cold_results

    entry = REPORT.record(
        "dispatch_warm_vs_cold_pool",
        baseline_s=cold_s,
        optimized_s=warm_s,
        items=DISPATCH_STAGES * DISPATCH_SHARDS,
    )
    INVARIANTS["dispatch_warm_speedup"] = round(entry.speedup, 3)
    cores = os.cpu_count() or 1
    if cores < MIN_PROCESS_CORES:
        # The timing row is already recorded (module teardown writes it);
        # only the amortization *gate* waits for a multi-core runner, where
        # pool-spawn cost is not confounded by core contention.
        pytest.skip(
            f"warm-pool amortization gate needs >= {MIN_PROCESS_CORES} cores "
            f"(this runner has {cores}); row recorded, gate skipped"
        )
    assert entry.speedup >= MIN_DISPATCH_SPEEDUP, (
        f"warm pool only {entry.speedup:.2f}x vs per-stage cold pools over "
        f"{DISPATCH_STAGES} stages x {DISPATCH_SHARDS} tasks "
        f"(needs {MIN_DISPATCH_SPEEDUP}x)"
    )


def test_dispatch_pickle_bytes_per_task(paper_ecosystem):
    """The broadcast-once contract shrinks per-task pickles from
    ecosystem-sized (the whole :class:`ShardCrawlSpec` rides every task) to
    identifier-sized (stage name, shard index, key list)."""
    import pickle

    pipeline = CrawlPipeline.from_ecosystem(
        paper_ecosystem, seed=SEED, shards=DISPATCH_SHARDS, backend="process"
    )
    spec = pipeline._shard_crawl_spec()
    keys = sorted(paper_ecosystem.gpts)[: PAPER_GPTS // DISPATCH_SHARDS]

    # The exact args tuples _run_shard_phase puts on the wire: the cold
    # ProcessBackend path ships (spec, stage, shard, keys) per task; the
    # warm-pool path broadcasts the spec once and ships (stage, shard, keys).
    fat_bytes = len(pickle.dumps((spec, "resolve", 0, keys)))
    lean_bytes = len(pickle.dumps(("resolve", 0, keys)))

    # Units are KiB, not seconds: like the RSS row, recording sizes as
    # "timings" turns the CI perf gate into a payload-size gate.
    entry = REPORT.record(
        "dispatch_pickle_kb_per_task",
        baseline_s=fat_bytes / 1024.0,
        optimized_s=lean_bytes / 1024.0,
        items=len(keys),
    )
    INVARIANTS["pickle_bytes_full_spec_task"] = fat_bytes
    INVARIANTS["pickle_bytes_shared_ref_task"] = lean_bytes
    assert entry.speedup >= MIN_PICKLE_SHRINK, (
        f"broadcast-once task payload only {entry.speedup:.1f}x smaller than "
        f"the full-spec payload ({fat_bytes} -> {lean_bytes} bytes; needs "
        f"{MIN_PICKLE_SHRINK}x)"
    )


def test_peak_rss_bounded(child_metrics):
    """The 50k sharded run stays under 2x the 2000 run's peak RSS *and*
    under the absolute ceiling ``RSS_ABS_LIMIT_MB``."""
    unsharded = child_metrics["unsharded_2000"]
    sharded = child_metrics["sharded_50k"]
    rss_2000_mb = unsharded["rss_raw"] / _MAXRSS_PER_MB
    rss_50k_mb = sharded["rss_raw"] / _MAXRSS_PER_MB
    REPORT.record(
        "peak_rss_mb_50k_vs_2000",
        baseline_s=rss_2000_mb,
        optimized_s=rss_50k_mb,
        items=STRESS_GPTS,
    )
    ratio = rss_50k_mb / rss_2000_mb
    INVARIANTS["rss_ratio_50k_over_2000"] = round(ratio, 3)
    INVARIANTS["ingest_50k_s"] = round(sharded["ingest_s"], 3)
    # Split each peak into its import floor and the workload's headroom
    # above it, so a baseline diff shows *where* memory moved (a floor
    # shift is a dependency/allocator change; a workload shift is ours).
    INVARIANTS["rss_import_floor_mb_2000"] = round(
        unsharded["rss_import_raw"] / _MAXRSS_PER_MB, 1
    )
    INVARIANTS["rss_import_floor_mb_50k"] = round(
        sharded["rss_import_raw"] / _MAXRSS_PER_MB, 1
    )
    INVARIANTS["rss_workload_mb_2000"] = round(
        (unsharded["rss_raw"] - unsharded["rss_import_raw"]) / _MAXRSS_PER_MB, 1
    )
    INVARIANTS["rss_workload_mb_50k"] = round(
        (sharded["rss_raw"] - sharded["rss_import_raw"]) / _MAXRSS_PER_MB, 1
    )
    assert ratio < 2.0, (
        f"50k sharded peak RSS {rss_50k_mb:.0f}MB exceeds 2x the 2000-GPT "
        f"unsharded run's {rss_2000_mb:.0f}MB"
    )
    assert rss_50k_mb < RSS_ABS_LIMIT_MB, (
        f"50k sharded peak RSS {rss_50k_mb:.0f}MB exceeds the absolute "
        f"{RSS_ABS_LIMIT_MB}MB ceiling — the 2x ratio can't catch a "
        "regression that inflates both probes equally, so this bound "
        "must not be raised by a baseline refresh without a root cause"
    )
