"""Helpers for recording and reporting performance benchmarks.

Perf benchmarks time a baseline implementation against its optimized
replacement, print a compact table, and persist the measurements to a
``BENCH_<name>.json`` artifact at the repository root so later PRs have a
throughput trajectory to compare against (and to beat).

Usage from a benchmark test::

    report = PerfReport("nlp")
    report.record("embed_5000", baseline_s=t0, optimized_s=t1, items=5000)
    ...
    print(report.format_table())
    report.write()
"""

from __future__ import annotations

import json
import platform
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

#: Repository root (benchmarks/ lives directly below it).
REPO_ROOT = Path(__file__).resolve().parent.parent


@dataclass
class PerfRecord:
    """One timed comparison between a baseline and an optimized path."""

    name: str
    baseline_s: float
    optimized_s: float
    items: int

    @property
    def speedup(self) -> float:
        if self.optimized_s <= 0:
            return float("inf")
        return self.baseline_s / self.optimized_s

    @property
    def optimized_throughput(self) -> float:
        """Items per second through the optimized path."""
        if self.optimized_s <= 0:
            return float("inf")
        return self.items / self.optimized_s


@dataclass
class PerfReport:
    """Collects :class:`PerfRecord` rows and writes the JSON artifact."""

    name: str
    records: List[PerfRecord] = field(default_factory=list)

    def record(
        self, name: str, baseline_s: float, optimized_s: float, items: int
    ) -> PerfRecord:
        entry = PerfRecord(
            name=name, baseline_s=baseline_s, optimized_s=optimized_s, items=items
        )
        self.records.append(entry)
        return entry

    def __getitem__(self, name: str) -> PerfRecord:
        for entry in self.records:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def format_table(self) -> str:
        """A compact, aligned timing table for terminal output."""
        header = f"{'benchmark':<28} {'items':>7} {'baseline':>10} {'optimized':>10} {'speedup':>8}"
        lines = [header, "-" * len(header)]
        for entry in self.records:
            lines.append(
                f"{entry.name:<28} {entry.items:>7d} "
                f"{entry.baseline_s:>9.3f}s {entry.optimized_s:>9.3f}s "
                f"{entry.speedup:>7.1f}x"
            )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.name,
            "platform": platform.platform(),
            "python": platform.python_version(),
            "records": [
                {**asdict(entry), "speedup": entry.speedup} for entry in self.records
            ],
        }

    def write(self, directory: Optional[Path] = None) -> Path:
        """Write ``BENCH_<name>.json`` (default: the repository root)."""
        target = (directory or REPO_ROOT) / f"BENCH_{self.name}.json"
        target.write_text(json.dumps(self.as_dict(), indent=2) + "\n", encoding="utf-8")
        return target


def load_report(path: Path) -> PerfReport:
    """Load a ``BENCH_<name>.json`` artifact back into a :class:`PerfReport`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    report = PerfReport(str(payload.get("benchmark", Path(path).stem)))
    for entry in payload.get("records", []):
        report.record(
            name=str(entry["name"]),
            baseline_s=float(entry["baseline_s"]),
            optimized_s=float(entry["optimized_s"]),
            items=int(entry["items"]),
        )
    return report


def merged_summary(directory: Optional[Path] = None) -> str:
    """One table merging every ``BENCH_*.json`` artifact in ``directory``.

    This is what ``make ci`` prints after the perf smokes run, so the NLP
    and crawl trajectories are read side by side.
    """
    root = directory or REPO_ROOT
    lines: List[str] = []
    for path in sorted(root.glob("BENCH_*.json")):
        report = load_report(path)
        lines.append(f"== {report.name} ({path.name}) ==")
        lines.append(report.format_table())
        lines.append("")
    if not lines:
        return "no BENCH_*.json artifacts found"
    return "\n".join(lines).rstrip()


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print(merged_summary())
