"""Helpers for recording, reporting, and *gating* performance benchmarks.

Perf benchmarks time a baseline implementation against its optimized
replacement, print a compact table, and persist the measurements to a
``BENCH_<name>.json`` artifact at the repository root so later PRs have a
throughput trajectory to compare against (and to beat).

Usage from a benchmark test::

    report = PerfReport("nlp")
    report.record("embed_5000", baseline_s=t0, optimized_s=t1, items=5000)
    ...
    print(report.format_table())
    report.write()

Run as a script, ``python benchmarks/perf_report.py`` prints the merged
trajectory of every ``BENCH_*.json`` artifact, and ``--check`` turns the
artifacts into a regression gate: each freshly measured ``optimized_s``
timing is compared against the artifact committed at ``HEAD`` (via
``git show``), and any metric more than ``--threshold`` (default 1.5×)
slower fails the run with a non-zero exit — this is the last step of
``make ci``.  Artifacts with no committed baseline (a brand-new benchmark)
and metrics whose committed timing sits below the ``--min-baseline-s``
jitter floor (default 50 ms — sub-jitter ratios measure scheduler noise)
are reported and skipped, not failed.  Metrics a benchmark *gated away*
on this runner (recorded via :meth:`PerfReport.note_skipped`, e.g. a
CPU-scaling comparison below its core-count floor) are surfaced as
notices; one with no committed baseline row anywhere prints an explicit
``MISSING`` line instead of passing silently — and one that stays MISSING
across five artifact refreshes (aged per-metric in the artifact's
``skip_history`` section) escalates from notice to gate failure.
"""

from __future__ import annotations

import json
import platform
import subprocess
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

#: Repository root (benchmarks/ lives directly below it).
REPO_ROOT = Path(__file__).resolve().parent.parent


@dataclass
class PerfRecord:
    """One timed comparison between a baseline and an optimized path."""

    name: str
    baseline_s: float
    optimized_s: float
    items: int

    @property
    def speedup(self) -> float:
        if self.optimized_s <= 0:
            return float("inf")
        return self.baseline_s / self.optimized_s

    @property
    def optimized_throughput(self) -> float:
        """Items per second through the optimized path."""
        if self.optimized_s <= 0:
            return float("inf")
        return self.items / self.optimized_s


@dataclass
class PerfReport:
    """Collects :class:`PerfRecord` rows and writes the JSON artifact."""

    name: str
    records: List[PerfRecord] = field(default_factory=list)
    #: Metrics a benchmark *gated away* on this runner (e.g. a CPU-scaling
    #: comparison skipped below a core-count floor), keyed by metric name
    #: with the skip reason.  Persisted so ``--check`` can distinguish "the
    #: row was measured" from "the row silently never ran" — a gated metric
    #: with no committed baseline anywhere is reported as MISSING.
    skipped: Dict[str, str] = field(default_factory=dict)

    def record(
        self, name: str, baseline_s: float, optimized_s: float, items: int
    ) -> PerfRecord:
        entry = PerfRecord(
            name=name, baseline_s=baseline_s, optimized_s=optimized_s, items=items
        )
        self.records.append(entry)
        return entry

    def note_skipped(self, name: str, reason: str) -> None:
        """Record that a gated metric did not run on this runner (and why)."""
        self.skipped[name] = reason

    def __getitem__(self, name: str) -> PerfRecord:
        for entry in self.records:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def format_table(self) -> str:
        """A compact, aligned timing table for terminal output."""
        header = f"{'benchmark':<28} {'items':>7} {'baseline':>10} {'optimized':>10} {'speedup':>8}"
        lines = [header, "-" * len(header)]
        for entry in self.records:
            lines.append(
                f"{entry.name:<28} {entry.items:>7d} "
                f"{entry.baseline_s:>9.3f}s {entry.optimized_s:>9.3f}s "
                f"{entry.speedup:>7.1f}x"
            )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "benchmark": self.name,
            "platform": platform.platform(),
            "python": platform.python_version(),
            "records": [
                {**asdict(entry), "speedup": entry.speedup} for entry in self.records
            ],
        }
        if self.skipped:
            payload["skipped"] = dict(self.skipped)
        return payload

    def write(self, directory: Optional[Path] = None) -> Path:
        """Write ``BENCH_<name>.json`` (default: the repository root).

        Records are emitted in the *prior* file's order (new names appended)
        so a baseline refresh diffs as value changes only — test execution
        order must not reshuffle rows and obscure what actually moved.

        The write **merges with the prior file** rather than clobbering it:
        rows, skip notes, and foreign sections (e.g. the scale bench's
        ``invariants``) that this run did not re-record are preserved, so
        several benchmark modules can share one artifact (the crawl and
        incremental-crawl smokes both feed ``BENCH_crawl.json``) and
        refreshing one never silently drops the other's rows.  Skip notes
        for metrics still unmeasured are aged in a ``skip_history`` section
        (first-seen date + refresh count) so ``--check`` can escalate
        long-stale MISSING rows from notice to failure; a note resolves —
        and its history entry is dropped — the moment the metric is
        recorded.
        """
        target = (directory or REPO_ROOT) / f"BENCH_{self.name}.json"
        payload = self.as_dict()
        fresh_names = {entry.name for entry in self.records}
        try:
            prior = json.loads(target.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            prior = None
        if isinstance(prior, dict):
            payload["records"] = list(payload["records"]) + [
                entry
                for entry in prior.get("records", [])
                if isinstance(entry, dict) and str(entry.get("name")) not in fresh_names
            ]
            merged_skips = {
                str(metric): str(reason)
                for metric, reason in (prior.get("skipped") or {}).items()
                if str(metric) not in fresh_names
            }
            merged_skips.update(payload.get("skipped", {}))  # type: ignore[arg-type]
            if merged_skips:
                payload["skipped"] = merged_skips
        prior_history = (
            {
                str(metric): dict(entry)
                for metric, entry in (prior.get("skip_history") or {}).items()
                if isinstance(entry, dict)
            }
            if isinstance(prior, dict)
            else {}
        )
        final_names = {str(entry["name"]) for entry in payload["records"]}  # type: ignore[index]
        history: Dict[str, Dict[str, object]] = {}
        for metric in sorted(payload.get("skipped", {})):  # type: ignore[arg-type]
            if metric in final_names:
                continue
            entry = prior_history.get(metric, {})
            history[metric] = {
                "first_seen": str(entry.get("first_seen") or _today()),
                "refreshes": int(entry.get("refreshes", 0)) + 1,
            }
        if history:
            payload["skip_history"] = history
        if isinstance(prior, dict):
            # Sections other writers own (the scale bench's invariants)
            # survive a refresh by this report.  The sections this writer
            # owns are excluded: an absent "skipped"/"skip_history" here
            # means every note resolved, not that the prior values stand.
            owned = ("benchmark", "platform", "python", "records", "skipped", "skip_history")
            for key, value in prior.items():
                if key not in payload and key not in owned:
                    payload[key] = value
        prior_order = prior_key_order(target, "records")
        if prior_order:
            rank = {name: index for index, name in enumerate(prior_order)}
            payload["records"] = sorted(
                payload["records"],  # type: ignore[arg-type]
                key=lambda entry: rank.get(str(entry["name"]), len(rank)),
            )
        target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return target


def _today() -> str:
    """Today's ISO date (the skip-history first-seen stamp)."""
    import datetime

    return datetime.date.today().isoformat()


def prior_key_order(path: Path, section: str) -> List[str]:
    """Key order of ``section`` in an existing ``BENCH_*.json``, or ``[]``.

    For ``"records"`` this is the sequence of record names; for a mapping
    section (``"invariants"``) it is the insertion order of keys.  Refresh
    writers use it to keep artifacts diff-stable across reruns.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return []
    section_value = payload.get(section)
    if isinstance(section_value, list):
        return [
            str(entry.get("name"))
            for entry in section_value
            if isinstance(entry, dict) and "name" in entry
        ]
    if isinstance(section_value, dict):
        return [str(key) for key in section_value]
    return []


def load_report(path: Path) -> PerfReport:
    """Load a ``BENCH_<name>.json`` artifact back into a :class:`PerfReport`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    report = PerfReport(str(payload.get("benchmark", Path(path).stem)))
    for entry in payload.get("records", []):
        report.record(
            name=str(entry["name"]),
            baseline_s=float(entry["baseline_s"]),
            optimized_s=float(entry["optimized_s"]),
            items=int(entry["items"]),
        )
    for name, reason in payload.get("skipped", {}).items():
        report.note_skipped(str(name), str(reason))
    return report


def merged_summary(directory: Optional[Path] = None) -> str:
    """One table merging every ``BENCH_*.json`` artifact in ``directory``.

    This is what ``make ci`` prints after the perf smokes run, so the NLP
    and crawl trajectories are read side by side.
    """
    root = directory or REPO_ROOT
    lines: List[str] = []
    for path in sorted(root.glob("BENCH_*.json")):
        report = load_report(path)
        lines.append(f"== {report.name} ({path.name}) ==")
        lines.append(report.format_table())
        lines.append("")
    if not lines:
        return "no BENCH_*.json artifacts found"
    return "\n".join(lines).rstrip()


def committed_report(path: Path) -> Optional[PerfReport]:
    """The ``HEAD``-committed version of a ``BENCH_*.json`` artifact.

    Returns ``None`` when the file has no usable committed baseline (new
    benchmark, shallow environment without git, malformed committed JSON,
    …) so callers can skip rather than fail.
    """
    try:
        completed = subprocess.run(
            ["git", "-C", str(REPO_ROOT), "show", f"HEAD:{Path(path).name}"],
            capture_output=True,
            text=True,
            check=True,
        )
        payload = json.loads(completed.stdout)
        report = PerfReport(str(payload.get("benchmark", Path(path).stem)))
        for entry in payload.get("records", []):
            report.record(
                name=str(entry["name"]),
                baseline_s=float(entry["baseline_s"]),
                optimized_s=float(entry["optimized_s"]),
                items=int(entry["items"]),
            )
    except (OSError, subprocess.CalledProcessError, ValueError, KeyError, TypeError):
        return None
    return report


@dataclass
class RegressionCheck:
    """One fresh-vs-committed timing comparison."""

    benchmark: str
    metric: str
    committed_s: float
    fresh_s: float
    threshold: float

    @property
    def slowdown(self) -> float:
        if self.committed_s <= 0:
            return 1.0
        return self.fresh_s / self.committed_s

    @property
    def ok(self) -> bool:
        return self.slowdown <= self.threshold

    def format_row(self) -> str:
        status = "ok" if self.ok else "REGRESSION"
        return (
            f"{self.benchmark:<10} {self.metric:<28} "
            f"{self.committed_s:>9.3f}s {self.fresh_s:>9.3f}s "
            f"{self.slowdown:>6.2f}x  {status}"
        )


def check_regressions(
    threshold: float = 1.5,
    directory: Optional[Path] = None,
    min_baseline_s: float = 0.05,
) -> List[RegressionCheck]:
    """Compare every fresh ``BENCH_*.json`` against its committed baseline.

    Only metrics recorded on both sides are compared (a renamed or new
    metric has no baseline yet); whole artifacts without a committed
    baseline are skipped with a note.  Metrics whose committed timing is
    below ``min_baseline_s`` are exempt: at sub-jitter durations the ratio
    measures scheduler noise, not a regression.
    """
    root = directory or REPO_ROOT
    checks: List[RegressionCheck] = []
    for path in sorted(root.glob("BENCH_*.json")):
        fresh = load_report(path)
        baseline = committed_report(path)
        if baseline is None:
            print(f"-- {path.name}: no committed baseline; skipping")
            continue
        baseline_by_name = {entry.name: entry for entry in baseline.records}
        for entry in fresh.records:
            committed = baseline_by_name.get(entry.name)
            if committed is None:
                print(f"-- {path.name}: metric {entry.name!r} is new; skipping")
                continue
            if committed.optimized_s < min_baseline_s:
                print(
                    f"-- {path.name}: {entry.name} baseline "
                    f"{committed.optimized_s:.3f}s is below the "
                    f"{min_baseline_s:.3f}s jitter floor; skipping"
                )
                continue
            checks.append(
                RegressionCheck(
                    benchmark=fresh.name,
                    metric=entry.name,
                    committed_s=committed.optimized_s,
                    fresh_s=entry.optimized_s,
                    threshold=threshold,
                )
            )
    return checks


def gated_metric_notices(directory: Optional[Path] = None) -> List[str]:
    """Notices for metrics a benchmark gated away instead of measuring.

    For each fresh artifact's ``skipped`` entries (see
    :meth:`PerfReport.note_skipped`): a metric that was nonetheless
    recorded this run needs no notice; one with a committed baseline row
    gets a "baseline stands" note; one with **no committed row anywhere**
    is reported as an explicit ``MISSING`` line — the row has never been
    measured on a capable runner, and ``--check`` would otherwise pass
    silently forever.  Notices never fail the gate; they keep
    skipped-on-this-runner rows visible.
    """
    root = directory or REPO_ROOT
    notices: List[str] = []
    for path in sorted(root.glob("BENCH_*.json")):
        fresh = load_report(path)
        if not fresh.skipped:
            continue
        fresh_names = {entry.name for entry in fresh.records}
        baseline = committed_report(path)
        baseline_names = (
            {entry.name for entry in baseline.records} if baseline is not None else set()
        )
        for metric, reason in sorted(fresh.skipped.items()):
            if metric in fresh_names:
                continue
            if metric in baseline_names:
                notices.append(
                    f"-- {path.name}: {metric} skipped this run ({reason}); "
                    "the committed baseline row stands"
                )
            else:
                notices.append(
                    f"MISSING {path.name}: {metric} — gated benchmark skipped "
                    f"on this runner ({reason}) and no committed baseline row "
                    "exists; run the benchmark on a capable runner to commit one"
                )
    return notices


def stale_missing_failures(
    directory: Optional[Path] = None, max_refreshes: int = 5
) -> List[str]:
    """MISSING notices that have persisted long enough to fail the gate.

    A gated metric with no committed baseline row starts as a notice — a
    freshly added hardware-gated benchmark deserves a grace period.  But
    one that has stayed unmeasured across ``max_refreshes`` artifact
    refreshes (tracked per-metric in the artifact's ``skip_history``
    section, written by :meth:`PerfReport.write`) has stopped being new:
    the row will never appear on its own, so ``--check`` fails until a
    capable runner measures it and commits the row.  A metric that gained
    a fresh or committed row resolves silently.
    """
    root = directory or REPO_ROOT
    failures: List[str] = []
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        history = payload.get("skip_history")
        if not isinstance(history, dict):
            continue
        fresh_names = {
            str(entry.get("name"))
            for entry in payload.get("records", [])
            if isinstance(entry, dict)
        }
        baseline = committed_report(path)
        baseline_names = (
            {entry.name for entry in baseline.records} if baseline is not None else set()
        )
        for metric, entry in sorted(history.items()):
            if metric in fresh_names or metric in baseline_names:
                continue
            refreshes = int(entry.get("refreshes", 0)) if isinstance(entry, dict) else 0
            if refreshes < max_refreshes:
                continue
            first_seen = entry.get("first_seen", "?") if isinstance(entry, dict) else "?"
            failures.append(
                f"STALE-MISSING {path.name}: {metric} has had no committed "
                f"baseline row for {refreshes} refreshes (first seen "
                f"{first_seen}); measure it on a capable runner and commit "
                "the row"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: print the merged trajectory, or gate on regressions with --check."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) when any fresh metric regressed past --threshold",
    )
    parser.add_argument(
        "--threshold", type=float, default=1.5,
        help="maximum tolerated slowdown versus the committed baseline",
    )
    parser.add_argument(
        "--min-baseline-s", type=float, default=0.05,
        help="exempt metrics whose committed timing is below this (jitter floor)",
    )
    args = parser.parse_args(argv)
    if not args.check:
        print(merged_summary())
        return 0

    checks = check_regressions(threshold=args.threshold, min_baseline_s=args.min_baseline_s)
    header = (
        f"{'benchmark':<10} {'metric':<28} {'committed':>10} {'fresh':>10} "
        f"{'ratio':>6}  status"
    )
    print(header)
    print("-" * len(header))
    for check in checks:
        print(check.format_row())
    notices = gated_metric_notices()
    if notices:
        print()
        for notice in notices:
            print(notice)
    stale = stale_missing_failures()
    if stale:
        print()
        for line in stale:
            print(line)
    failures = [check for check in checks if not check.ok]
    if failures or stale:
        problems = []
        if failures:
            problems.append(
                f"{len(failures)} metric(s) regressed past "
                f"{args.threshold:.2f}x the committed baseline"
            )
        if stale:
            problems.append(
                f"{len(stale)} gated metric(s) stale-MISSING past the "
                "refresh grace period"
            )
        print(f"\nperf gate FAILED: {'; '.join(problems)}")
        return 1
    print(f"\nperf gate ok: {len(checks)} metric(s) within {args.threshold:.2f}x")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    raise SystemExit(main())
