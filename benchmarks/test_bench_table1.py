"""Benchmark E-T1 — Table 1: GPTs successfully crawled per store."""

from benchmarks.conftest import assert_close
from repro.analysis.crawlstats import analyze_crawl_stats
from repro.experiments.paper_values import PAPER_VALUES


def test_bench_table1(benchmark, suite):
    stats = benchmark(analyze_crawl_stats, suite.corpus)
    paper = PAPER_VALUES["table1"]

    assert stats.total_unique_gpts == len(suite.corpus.gpts)
    assert len(stats.per_store_counts) == paper["n_stores"]
    sorted_counts = stats.sorted_store_counts()
    # The largest index is the GitHub list, the official OpenAI store is small,
    # and the size distribution is heavily skewed (paper: 85,377 vs 91).
    assert sorted_counts[0][0] == paper["largest_store"]
    assert sorted_counts[0][1] > 10 * sorted_counts[-1][1]
    paper_ratio = paper["largest_store_count"] / paper["total_unique_gpts"]
    assert_close(sorted_counts[0][1] / stats.total_unique_gpts, paper_ratio, rel=0.4)
