"""Benchmark E-F12 — Figure 12: disclosure consistency vs collected data items."""

from repro.analysis.disclosure import analyze_disclosure
from repro.experiments.paper_values import PAPER_VALUES


def test_bench_figure12(benchmark, suite):
    disclosure = benchmark(analyze_disclosure, suite.policy_report, suite.corpus)
    paper = PAPER_VALUES["figure12"]

    points = disclosure.consistency_vs_items
    assert len(points) >= 30
    # Consistency fractions are valid and counts positive.
    assert all(count >= 1 and 0.0 <= fraction <= 1.0 for count, fraction in points)

    # The correlation between the amount of data collected and disclosure
    # consistency is weak (paper: Spearman ≈ 0.22).
    correlation = disclosure.spearman_consistency_vs_items()
    assert abs(correlation) <= 0.55
    assert abs(correlation - paper["spearman_correlation"]) <= 0.55
