"""Timed perf benchmarks for the concurrent crawl engine.

Crawls a paper-calibrated 2000-GPT ecosystem over the simulated network with
a per-request latency standing in for network RTT (the paper's real crawl is
network-bound) and a handful of flaky policy hosts that need retries, then
times the sequential baseline against the 8-worker engine.  Three properties
are asserted alongside the timings:

* the 8-worker crawl is at least ``MIN_CRAWL_SPEEDUP``× faster than the
  sequential baseline at the same latency;
* both crawls produce **byte-identical** corpora (the engine's deterministic
  merge + the layer's seeded per-URL flakiness draws);
* a checkpointed crawl killed mid-run resumes to a corpus identical to an
  uninterrupted run with the same seed, without refetching completed tasks.

The measured numbers are printed as a compact table and persisted to
``BENCH_crawl.json`` at the repository root alongside ``BENCH_nlp.json``.
"""

from __future__ import annotations

import time

import pytest

from perf_report import PerfReport

from repro.crawler.pipeline import CrawlPipeline
from repro.crawler.transport import TransportConfig
from repro.ecosystem.config import EcosystemConfig
from repro.ecosystem.generator import EcosystemGenerator
from repro.io import corpus_to_payload, policies_to_payload
from repro.web.urls import url_host

REPORT = PerfReport("crawl")

#: Scale of the benchmark crawl and its seed.
CRAWL_GPTS = 2000
CRAWL_SEED = 17

#: Simulated per-request network round-trip time.
LATENCY_S = 0.002
#: Worker-pool size for the concurrent crawl.
WORKERS = 8
#: Failure rate injected into a sample of policy hosts.
FLAKY_RATE = 0.4
N_FLAKY_HOSTS = 8

#: Required speedup of the 8-worker crawl over the sequential baseline.
MIN_CRAWL_SPEEDUP = 4.0


@pytest.fixture(scope="module", autouse=True)
def _emit_report():
    """Print the timing table and write BENCH_crawl.json after the module."""
    yield
    print()
    print(REPORT.format_table())
    print(f"wrote {REPORT.write()}")


@pytest.fixture(scope="module")
def ecosystem():
    config = EcosystemConfig.paper_calibrated(n_gpts=CRAWL_GPTS, seed=CRAWL_SEED)
    return EcosystemGenerator(config).generate()


def _flaky_hosts(ecosystem):
    """A deterministic sample of policy hosts to make flaky."""
    hosts = sorted(
        {
            url_host(action.legal_info_url)
            for action in ecosystem.actions.values()
            if action.legal_info_url
        }
    )
    return hosts[:N_FLAKY_HOSTS]


def _build_pipeline(ecosystem, workers, latency_s=LATENCY_S, **kwargs):
    config = TransportConfig(max_attempts=4, latency_s=latency_s, seed=CRAWL_SEED)
    pipeline = CrawlPipeline.from_ecosystem(
        ecosystem, seed=CRAWL_SEED, workers=workers, transport_config=config, **kwargs
    )
    for host in _flaky_hosts(ecosystem):
        pipeline.http.set_flaky_host(host, FLAKY_RATE)
    return pipeline


def test_concurrent_crawl_speedup(ecosystem):
    baseline_pipeline = _build_pipeline(ecosystem, workers=0)
    start = time.perf_counter()
    baseline_corpus = baseline_pipeline.run()
    baseline_s = time.perf_counter() - start

    engine_pipeline = _build_pipeline(ecosystem, workers=WORKERS)
    start = time.perf_counter()
    engine_corpus = engine_pipeline.run()
    optimized_s = time.perf_counter() - start

    # The concurrent crawl must reproduce the sequential corpus exactly —
    # flaky hosts, retries, and all.
    assert corpus_to_payload(engine_corpus) == corpus_to_payload(baseline_corpus)
    assert policies_to_payload(engine_corpus) == policies_to_payload(baseline_corpus)
    assert len(engine_corpus.gpts) == CRAWL_GPTS
    assert engine_pipeline.statistics.n_retries > 0  # the flaky hosts did bite

    entry = REPORT.record(
        f"crawl_{CRAWL_GPTS}_gpts",
        baseline_s=baseline_s,
        optimized_s=optimized_s,
        items=engine_pipeline.statistics.n_http_requests,
    )
    assert entry.speedup >= MIN_CRAWL_SPEEDUP, (
        f"{WORKERS}-worker crawl only {entry.speedup:.1f}x faster "
        f"(needs {MIN_CRAWL_SPEEDUP:.0f}x)"
    )


def test_checkpointed_crawl_resumes_identically(ecosystem, tmp_path):
    # Same latency as the speedup benchmark: the point of resume is skipping
    # refetches, so the saved time is network time.
    uninterrupted = _build_pipeline(ecosystem, workers=WORKERS)
    start = time.perf_counter()
    full_corpus = uninterrupted.run()
    full_s = time.perf_counter() - start

    killed = _build_pipeline(
        ecosystem, workers=WORKERS,
        checkpoint_dir=str(tmp_path), checkpoint_every=50,
    )
    real_get = killed.http.get
    calls = {"n": 0}

    def killer_get(url):
        calls["n"] += 1
        if calls["n"] == 1200:  # kill mid-resolve, well past the listing stage
            raise KeyboardInterrupt
        return real_get(url)

    killed.http.get = killer_get
    with pytest.raises(KeyboardInterrupt):
        killed.run()

    resumed = _build_pipeline(
        ecosystem, workers=WORKERS,
        checkpoint_dir=str(tmp_path), resume=True,
    )
    start = time.perf_counter()
    resumed_corpus = resumed.run()
    resumed_s = time.perf_counter() - start

    assert resumed.statistics.n_tasks_resumed > 0
    assert corpus_to_payload(resumed_corpus) == corpus_to_payload(full_corpus)
    assert policies_to_payload(resumed_corpus) == policies_to_payload(full_corpus)

    REPORT.record(
        "resume_after_kill",
        baseline_s=full_s,
        optimized_s=resumed_s,
        items=resumed.statistics.n_tasks_resumed,
    )
