"""Timed perf benchmarks for the concurrent crawl engine.

Crawls a paper-calibrated 2000-GPT ecosystem over the simulated network with
a per-request latency standing in for network RTT (the paper's real crawl is
network-bound) and a handful of flaky policy hosts that need retries, then
times the sequential baseline against the 8-worker engine.  Three properties
are asserted alongside the timings:

* the 8-worker crawl is at least ``MIN_CRAWL_SPEEDUP``× faster than the
  sequential baseline at the same latency;
* both crawls produce **byte-identical** corpora (the engine's deterministic
  merge + the layer's seeded per-URL flakiness draws);
* a checkpointed crawl killed mid-run resumes to a corpus identical to an
  uninterrupted run with the same seed, without refetching completed tasks.

The shard-partitioned crawl is regression-gated here too: child-process
probes crawl the same 2000-GPT ecosystem unsharded (materializing the
whole-run corpus) and sharded (``CrawlPipeline.run_sharded``, shards=8,
streaming records straight into the shard store), and both wall time
(``crawl_2000_sharded_vs_unsharded_wall``) and peak RSS
(``crawl_2000_sharded_vs_unsharded_rss_mb``) land in ``BENCH_crawl.json``
for ``perf_report.py --check``.  The sharded probe must stay within
``SHARDED_RSS_LIMIT_RATIO`` of the unsharded peak — the bounded-memory
claim: it holds one shard's payload batch at a time instead of the corpus.

The measured numbers are printed as a compact table and persisted to
``BENCH_crawl.json`` at the repository root alongside ``BENCH_nlp.json``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

from perf_report import REPO_ROOT, PerfReport

from repro.crawler.hostile import install_hostile_hosts
from repro.crawler.pipeline import CrawlPipeline
from repro.crawler.transport import TransportConfig
from repro.ecosystem.config import EcosystemConfig
from repro.ecosystem.generator import EcosystemGenerator
from repro.io import corpus_to_payload, policies_to_payload
from repro.web.urls import url_host

REPORT = PerfReport("crawl")

#: Scale of the benchmark crawl and its seed.
CRAWL_GPTS = 2000
CRAWL_SEED = 17

#: Simulated per-request network round-trip time.
LATENCY_S = 0.002
#: Worker-pool size for the concurrent crawl.
WORKERS = 8
#: Failure rate injected into a sample of policy hosts.
FLAKY_RATE = 0.4
N_FLAKY_HOSTS = 8

#: Required speedup of the 8-worker crawl over the sequential baseline.
MIN_CRAWL_SPEEDUP = 4.0

#: Ceiling on the hostile crawl's wall time relative to the clean crawl at
#: the same worker count: graceful degradation means redirect chains, 429
#: storms, tarpits, and flapping hosts cost bounded retries/waits, never an
#: unbounded stall.
HOSTILE_WALL_LIMIT_RATIO = 3.0
#: Accounted-time deadline for the hostile probe's transport.
HOSTILE_DEADLINE_S = 0.2

#: Shard count for the partitioned-crawl probe.
CRAWL_SHARDS = 8
#: The sharded crawl's peak RSS must stay within this ratio of the
#: unsharded crawl's (both peaks share the same numpy/scipy import floor,
#: so the ratio is stable against allocator/THP variance; the sharded
#: dataflow holds one shard's payloads instead of the whole corpus and in
#: practice sits below 1.0x).
SHARDED_RSS_LIMIT_RATIO = 1.25
#: Absolute ceiling (MB) for either crawl probe's peak RSS, mirroring
#: ``RSS_ABS_LIMIT_MB`` in the scale benchmark.  The ratio assert above
#: compares two readings that share the same import floor, so it passes
#: even when an allocator/THP artifact balloons both probes together —
#: and committing such a run would let the perf gate's 1.5x tolerance
#: ratchet the allowed RSS upward indefinitely.  Healthy runs peak around
#: 146 MB (import floor ~140 MB); this bound must not be raised by a
#: baseline refresh without a root cause.
CRAWL_RSS_ABS_LIMIT_MB = 512

#: ``ru_maxrss`` units per megabyte: kibibytes on Linux, bytes on macOS.
_MAXRSS_PER_MB = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0


@pytest.fixture(scope="module", autouse=True)
def _emit_report():
    """Print the timing table and write BENCH_crawl.json after the module."""
    yield
    print()
    print(REPORT.format_table())
    print(f"wrote {REPORT.write()}")


@pytest.fixture(scope="module")
def ecosystem():
    config = EcosystemConfig.paper_calibrated(n_gpts=CRAWL_GPTS, seed=CRAWL_SEED)
    return EcosystemGenerator(config).generate()


def _flaky_hosts(ecosystem):
    """A deterministic sample of policy hosts to make flaky."""
    hosts = sorted(
        {
            url_host(action.legal_info_url)
            for action in ecosystem.actions.values()
            if action.legal_info_url
        }
    )
    return hosts[:N_FLAKY_HOSTS]


def _build_pipeline(ecosystem, workers, latency_s=LATENCY_S, deadline_s=0.0, **kwargs):
    config = TransportConfig(
        max_attempts=4, latency_s=latency_s, seed=CRAWL_SEED, deadline_s=deadline_s
    )
    pipeline = CrawlPipeline.from_ecosystem(
        ecosystem, seed=CRAWL_SEED, workers=workers, transport_config=config, **kwargs
    )
    for host in _flaky_hosts(ecosystem):
        pipeline.http.set_flaky_host(host, FLAKY_RATE)
    return pipeline


def test_concurrent_crawl_speedup(ecosystem):
    baseline_pipeline = _build_pipeline(ecosystem, workers=0)
    start = time.perf_counter()
    baseline_corpus = baseline_pipeline.run()
    baseline_s = time.perf_counter() - start

    engine_pipeline = _build_pipeline(ecosystem, workers=WORKERS)
    start = time.perf_counter()
    engine_corpus = engine_pipeline.run()
    optimized_s = time.perf_counter() - start

    # The concurrent crawl must reproduce the sequential corpus exactly —
    # flaky hosts, retries, and all.
    assert corpus_to_payload(engine_corpus) == corpus_to_payload(baseline_corpus)
    assert policies_to_payload(engine_corpus) == policies_to_payload(baseline_corpus)
    assert len(engine_corpus.gpts) == CRAWL_GPTS
    assert engine_pipeline.statistics.n_retries > 0  # the flaky hosts did bite

    entry = REPORT.record(
        f"crawl_{CRAWL_GPTS}_gpts",
        baseline_s=baseline_s,
        optimized_s=optimized_s,
        items=engine_pipeline.statistics.n_http_requests,
    )
    assert entry.speedup >= MIN_CRAWL_SPEEDUP, (
        f"{WORKERS}-worker crawl only {entry.speedup:.1f}x faster "
        f"(needs {MIN_CRAWL_SPEEDUP:.0f}x)"
    )


def test_hostile_crawl_bounded_overhead_and_no_lost_records(ecosystem):
    """A crawl over the full adversarial battery (redirect chains/loops,
    429 storms, tarpit latency, content flapping) on top of the usual flaky
    hosts completes within ``HOSTILE_WALL_LIMIT_RATIO``x of the clean crawl
    and loses zero records: same resolved GPTs, same policy-URL set, and
    every *added* failure confined to a quarantined host."""
    clean = _build_pipeline(ecosystem, workers=WORKERS)
    start = time.perf_counter()
    clean_corpus = clean.run()
    clean_s = time.perf_counter() - start

    hostile = _build_pipeline(ecosystem, workers=WORKERS, deadline_s=HOSTILE_DEADLINE_S)
    roles = install_hostile_hosts(hostile.http, ecosystem, seed=CRAWL_SEED)
    start = time.perf_counter()
    hostile_corpus = hostile.run()
    hostile_s = time.perf_counter() - start

    assert len(hostile_corpus.gpts) == len(clean_corpus.gpts) == CRAWL_GPTS
    assert set(hostile_corpus.policies) == set(clean_corpus.policies)
    quarantined = set(hostile.statistics.quarantined_hosts)
    assert quarantined <= {host for hosts in roles.values() for host in hosts}
    clean_failed = {url for url, r in clean_corpus.policies.items() if not r.ok}
    for url, result in hostile_corpus.policies.items():
        if not result.ok and url not in clean_failed:
            assert url_host(url) in quarantined

    entry = REPORT.record(
        f"crawl_{CRAWL_GPTS}_hostile_vs_clean",
        baseline_s=hostile_s,
        optimized_s=clean_s,
        items=hostile.statistics.n_http_requests,
    )
    ratio = hostile_s / clean_s
    assert ratio <= HOSTILE_WALL_LIMIT_RATIO, (
        f"hostile crawl took {ratio:.2f}x the clean crawl's wall time "
        f"(limit {HOSTILE_WALL_LIMIT_RATIO}x) — degradation must stay "
        "bounded by the retry/deadline budgets"
    )
    assert entry.speedup <= HOSTILE_WALL_LIMIT_RATIO


def test_checkpointed_crawl_resumes_identically(ecosystem, tmp_path):
    # Same latency as the speedup benchmark: the point of resume is skipping
    # refetches, so the saved time is network time.
    uninterrupted = _build_pipeline(ecosystem, workers=WORKERS)
    start = time.perf_counter()
    full_corpus = uninterrupted.run()
    full_s = time.perf_counter() - start

    killed = _build_pipeline(
        ecosystem, workers=WORKERS,
        checkpoint_dir=str(tmp_path), checkpoint_every=50,
    )
    real_get = killed.http.get
    calls = {"n": 0}

    def killer_get(url):
        calls["n"] += 1
        if calls["n"] == 1200:  # kill mid-resolve, well past the listing stage
            raise KeyboardInterrupt
        return real_get(url)

    killed.http.get = killer_get
    with pytest.raises(KeyboardInterrupt):
        killed.run()

    resumed = _build_pipeline(
        ecosystem, workers=WORKERS,
        checkpoint_dir=str(tmp_path), resume=True,
    )
    start = time.perf_counter()
    resumed_corpus = resumed.run()
    resumed_s = time.perf_counter() - start

    assert resumed.statistics.n_tasks_resumed > 0
    assert corpus_to_payload(resumed_corpus) == corpus_to_payload(full_corpus)
    assert policies_to_payload(resumed_corpus) == policies_to_payload(full_corpus)

    REPORT.record(
        "resume_after_kill",
        baseline_s=full_s,
        optimized_s=resumed_s,
        items=resumed.statistics.n_tasks_resumed,
    )


# ---------------------------------------------------------------------------
# Shard-partitioned crawl: wall time + peak RSS vs the unsharded crawl.
# Both probes run as child processes so ``ru_maxrss`` measures each dataflow
# in isolation (the unsharded probe must not inherit the sharded probe's
# high-water mark, or vice versa).
# ---------------------------------------------------------------------------
_CHILD_CRAWL_COMMON = f"""
import json, resource, tempfile, time
from repro.crawler.pipeline import CrawlPipeline
from repro.crawler.transport import TransportConfig
from repro.ecosystem.config import EcosystemConfig
from repro.ecosystem.generator import EcosystemGenerator
from repro.web.urls import url_host

ecosystem = EcosystemGenerator(
    EcosystemConfig.paper_calibrated(n_gpts={CRAWL_GPTS}, seed={CRAWL_SEED})
).generate()

def build(**kwargs):
    config = TransportConfig(max_attempts=4, latency_s={LATENCY_S}, seed={CRAWL_SEED})
    pipeline = CrawlPipeline.from_ecosystem(
        ecosystem, seed={CRAWL_SEED}, workers={WORKERS}, transport_config=config, **kwargs
    )
    hosts = sorted({{
        url_host(action.legal_info_url)
        for action in ecosystem.actions.values()
        if action.legal_info_url
    }})[:{N_FLAKY_HOSTS}]
    for host in hosts:
        pipeline.http.set_flaky_host(host, {FLAKY_RATE})
    return pipeline
"""

_CHILD_CRAWL_UNSHARDED = _CHILD_CRAWL_COMMON + """
pipeline = build()
t0 = time.monotonic()
corpus = pipeline.run()
wall_s = time.monotonic() - t0
print(json.dumps({
    "rss_raw": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "wall_s": wall_s,
    "n_gpts": len(corpus.gpts),
}))
"""

_CHILD_CRAWL_SHARDED = _CHILD_CRAWL_COMMON + f"""
pipeline = build(shards={CRAWL_SHARDS})
with tempfile.TemporaryDirectory() as root:
    t0 = time.monotonic()
    store = pipeline.run_sharded(root)
    wall_s = time.monotonic() - t0
    n_gpts = store.n_gpts
print(json.dumps({{
    "rss_raw": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "wall_s": wall_s,
    "n_gpts": n_gpts,
}}))
"""


def _run_child(code: str) -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    completed = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, env=env, check=True
    )
    return json.loads(completed.stdout.strip().splitlines()[-1])


def test_sharded_crawl_wall_and_rss_bounded():
    """The partitioned crawl matches the unsharded wall time at the same
    worker count and keeps its peak RSS bounded (no whole-run corpus)."""
    unsharded = _run_child(_CHILD_CRAWL_UNSHARDED)
    sharded = _run_child(_CHILD_CRAWL_SHARDED)
    assert unsharded["n_gpts"] == CRAWL_GPTS
    assert sharded["n_gpts"] == CRAWL_GPTS

    REPORT.record(
        "crawl_2000_sharded_vs_unsharded_wall",
        baseline_s=unsharded["wall_s"],
        optimized_s=sharded["wall_s"],
        items=CRAWL_GPTS,
    )
    rss_unsharded_mb = unsharded["rss_raw"] / _MAXRSS_PER_MB
    rss_sharded_mb = sharded["rss_raw"] / _MAXRSS_PER_MB
    REPORT.record(
        "crawl_2000_sharded_vs_unsharded_rss_mb",
        baseline_s=rss_unsharded_mb,
        optimized_s=rss_sharded_mb,
        items=CRAWL_GPTS,
    )
    ratio = rss_sharded_mb / rss_unsharded_mb
    assert ratio < SHARDED_RSS_LIMIT_RATIO, (
        f"sharded crawl peak RSS {rss_sharded_mb:.0f}MB is {ratio:.2f}x the "
        f"unsharded crawl's {rss_unsharded_mb:.0f}MB (limit "
        f"{SHARDED_RSS_LIMIT_RATIO}x) — the partitioned dataflow should "
        "never hold the whole-run corpus"
    )
    for label, rss_mb in (("unsharded", rss_unsharded_mb), ("sharded", rss_sharded_mb)):
        assert rss_mb < CRAWL_RSS_ABS_LIMIT_MB, (
            f"{label} crawl peak RSS {rss_mb:.0f}MB exceeds the absolute "
            f"{CRAWL_RSS_ABS_LIMIT_MB}MB ceiling — the ratio gate can't "
            "catch an allocator/THP artifact that inflates both probes "
            "equally, so this run must not become a committed baseline"
        )
