"""Shared fixtures for the benchmark harness.

The benchmark suite regenerates every table and figure of the paper's
evaluation on a paper-calibrated synthetic corpus.  The expensive pipeline
stages (generation, crawling, classification, policy analysis) run once per
session; each benchmark then times the analysis step that produces its table
or figure and asserts that the measured values reproduce the paper's *shape*
(ordering, rough magnitudes, crossovers).
"""

from __future__ import annotations

import pytest

from repro.analysis.suite import MeasurementSuite, SuiteConfig

#: Scale of the benchmark corpus.  Increase for tighter estimates.
BENCH_GPTS = 2500
BENCH_SEED = 17


@pytest.fixture(scope="session")
def suite() -> MeasurementSuite:
    """The shared, fully-run measurement suite used by every benchmark."""
    suite = MeasurementSuite(config=SuiteConfig(n_gpts=BENCH_GPTS, seed=BENCH_SEED))
    # Force the expensive stages so individual benchmarks time only their own
    # analysis step.
    suite.classification
    suite.policy_report
    return suite


def assert_close(measured: float, paper: float, rel: float = 0.6, abs_tol: float = 0.05) -> None:
    """Assert that a measured rate is in the same ballpark as the paper's.

    The synthetic corpus is much smaller than the paper's 119K-GPT crawl, so
    the check is deliberately loose: within ``rel`` relative error or
    ``abs_tol`` absolute error.
    """
    if abs(measured - paper) <= abs_tol:
        return
    assert paper != 0, f"paper value is zero but measured {measured}"
    assert abs(measured - paper) / abs(paper) <= rel, (
        f"measured {measured:.4f} too far from paper {paper:.4f}"
    )
