"""Timed perf benchmarks for the vectorized NLP hot paths.

Times the seed (pre-vectorization) implementations against the batch-first
replacements on synthetic corpora at two scales each:

* hashed embeddings — the per-text / per-feature blake2b loop versus
  :meth:`SentenceEmbedder.embed_many` (scatter-add + process-wide feature
  cache);
* nearest-neighbour retrieval — a per-query embed + full ``argsort`` loop
  versus :meth:`EmbeddingIndex.query_many` (one matrix product +
  ``argpartition`` top-k);
* near-duplicate detection — the O(n²) pairwise Jaccard scan versus
  MinHash–LSH candidate generation with exact verification.

Equivalence is asserted alongside every timing (identical matrices, identical
duplicate pair sets), the measured numbers are printed as a compact table,
and the run is persisted to ``BENCH_nlp.json`` at the repository root so
future PRs have a trajectory to beat.
"""

from __future__ import annotations

import hashlib
import math
import random
import re
import time
import unicodedata
from typing import Dict, List

import numpy as np
import pytest

from perf_report import PerfReport

from repro.nlp.embeddings import EmbeddingIndex, SentenceEmbedder
from repro.nlp.similarity import near_duplicates
from repro.nlp.stopwords import remove_stopwords

REPORT = PerfReport("nlp")

#: (small, large) corpus scales.  The large scales carry the acceptance
#: thresholds; the small scales are recorded for the trajectory only.
EMBED_SCALES = (1000, 5000)
DEDUP_SCALES = (600, 2000)

#: Required speedups at the large scales.
MIN_EMBED_SPEEDUP = 3.0
MIN_QUERY_SPEEDUP = 3.0
MIN_DEDUP_SPEEDUP = 5.0
#: Deliberately modest gate on the cold (cache-empty) extraction path: it
#: measures single passes, so leave a wide noise margin while still tripping
#: CI on an order-of-magnitude regression of the uncached code.
MIN_EMBED_COLD_SPEEDUP = 2.0


@pytest.fixture(scope="module", autouse=True)
def _emit_report():
    """Print the timing table and write BENCH_nlp.json after the module runs."""
    yield
    print()
    print(REPORT.format_table())
    print(f"wrote {REPORT.write()}")


# ----------------------------------------------------------------------
# Synthetic corpora
# ----------------------------------------------------------------------
_SUBJECTS = (
    "email address", "search query", "city name", "gps coordinates",
    "phone number", "payment card", "order id", "user name", "api key",
    "shipping address", "date of birth", "conversation context",
    "browser fingerprint", "device identifier", "job title",
)
_PREFIXES = (
    "the user's", "your", "the customer's", "an optional", "the requested",
    "a validated", "the current", "the primary",
)
_SUFFIXES = (
    "used for the lookup", "to personalize results", "for account recovery",
    "required by the api", "shared with the vendor", "stored for analytics",
    "needed to complete the booking", "for fraud prevention",
)


def _description_corpus(n: int, seed: int) -> List[str]:
    """Short data-description-like texts with a realistic shared vocabulary.

    Real crawls repeat parameter descriptions heavily (boilerplate like "the
    search query" appears across thousands of Actions), so the corpus is
    sampled with a Zipf-like skew from a finite pool of distinct templates.
    """
    rng = random.Random(seed)
    pool = [
        f"{prefix} {subject} {suffix} field{i % 89}"
        for i, (prefix, subject, suffix) in enumerate(
            (prefix, subject, suffix)
            for prefix in _PREFIXES
            for subject in _SUBJECTS
            for suffix in _SUFFIXES
        )
    ]
    weights = [1.0 / (rank + 1) for rank in range(len(pool))]
    return rng.choices(pool, weights=weights, k=n)


def _policy_corpus(n: int, seed: int) -> List[str]:
    """Policy-like documents with planted exact and near duplicates."""
    rng = random.Random(seed)
    vocab = [f"clause{i}" for i in range(500)]
    docs: List[str] = []
    while len(docs) < n:
        words = rng.choices(vocab, k=rng.randint(80, 220))
        doc = " ".join(words)
        docs.append(doc)
        roll = rng.random()
        if roll < 0.30:
            mutated = list(words)
            mutated[rng.randrange(len(mutated))] = "amended"
            docs.append(" ".join(mutated))
        elif roll < 0.45:
            docs.append(doc)
    return docs[:n]


# ----------------------------------------------------------------------
# Seed (pre-vectorization) baselines — faithful replicas of the seed-commit
# implementations, including the costs later removed (per-character Unicode
# normalization scan, one normalization pass per feature family, one blake2b
# digest per feature occurrence, no caching).
# ----------------------------------------------------------------------
_SEED_TOKEN_RE = re.compile(r"[a-z0-9]+(?:[._'-][a-z0-9]+)*")
_SEED_WHITESPACE_RE = re.compile(r"\s+")


def _seed_normalize(text: str) -> str:
    if not text:
        return ""
    folded = unicodedata.normalize("NFKD", text)
    folded = "".join(ch for ch in folded if not unicodedata.combining(ch))
    return _SEED_WHITESPACE_RE.sub(" ", folded.lower()).strip()


def _seed_char_ngrams(text: str, n: int) -> List[str]:
    normalized = _seed_normalize(text).replace(" ", "_")
    if len(normalized) < n:
        return [normalized] if normalized else []
    return [normalized[i : i + n] for i in range(len(normalized) - n + 1)]


def _seed_features(embedder: SentenceEmbedder, text: str) -> Dict[str, float]:
    tokens = _SEED_TOKEN_RE.findall(_seed_normalize(text))
    if embedder.use_stopwords:
        content_tokens = remove_stopwords(tokens)
        if content_tokens:
            tokens = content_tokens
    weights: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for token in tokens:
        counts[token] = counts.get(token, 0) + 1
    for token, count in counts.items():
        weights[f"w:{token}"] = 1.0 + math.log(count)
    if embedder.char_ngram_size > 0:
        gram_counts: Dict[str, int] = {}
        for gram in _seed_char_ngrams(text, embedder.char_ngram_size):
            gram_counts[gram] = gram_counts.get(gram, 0) + 1
        for gram, count in gram_counts.items():
            weights[f"c:{gram}"] = embedder.char_weight * (1.0 + math.log(count))
    return weights


def _seed_embed_one(embedder: SentenceEmbedder, text: str) -> np.ndarray:
    """The seed per-feature loop: one blake2b call per feature, no cache."""
    vector = np.zeros(embedder.dimensions, dtype=np.float64)
    for feature, weight in _seed_features(embedder, text).items():
        digest = hashlib.blake2b(feature.encode("utf-8"), digest_size=8).digest()
        hashed = int.from_bytes(digest, "little")
        index = hashed % embedder.dimensions
        sign = 1.0 if (hashed >> 63) & 1 == 0 else -1.0
        vector[index] += sign * weight
    norm = np.linalg.norm(vector)
    if norm > 0:
        vector /= norm
    return vector


def _seed_embed_loop(embedder: SentenceEmbedder, texts: List[str]) -> np.ndarray:
    return np.vstack([_seed_embed_one(embedder, text) for text in texts])


def _seed_query_loop(
    matrix: np.ndarray, embedder: SentenceEmbedder, texts: List[str], k: int
) -> List[np.ndarray]:
    """The seed retrieval loop: per-query embed, full distances, full argsort."""
    results = []
    for text in texts:
        vector = _seed_embed_one(embedder, text)
        differences = matrix - vector[np.newaxis, :]
        distances = np.sqrt(np.sum(differences * differences, axis=1))
        results.append(distances[np.argsort(distances, kind="stable")[:k]])
    return results


def _timed(fn, repeats: int = 3):
    """Run ``fn`` ``repeats`` times; return its result and the best wall time.

    Min-of-N guards the speedup ratios against scheduler noise on shared CI
    hardware.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


# ----------------------------------------------------------------------
# Benchmarks
# ----------------------------------------------------------------------
def test_perf_embed_and_query():
    embedder = SentenceEmbedder()
    for n_texts in EMBED_SCALES:
        texts = _description_corpus(n_texts, seed=23)

        baseline_matrix, baseline_s = _timed(lambda: _seed_embed_loop(embedder, texts))
        optimized_matrix, optimized_s = _timed(lambda: embedder.embed_many(texts))
        assert np.allclose(optimized_matrix, baseline_matrix)
        embed_entry = REPORT.record(
            f"embed_{n_texts}", baseline_s=baseline_s, optimized_s=optimized_s, items=n_texts
        )

        index = EmbeddingIndex(embedder=embedder)
        index.add_many([(text, i) for i, text in enumerate(_description_corpus(400, seed=29))])
        baseline_distances, baseline_s = _timed(
            lambda: _seed_query_loop(index.vectors, embedder, texts, k=5)
        )
        optimized_results, optimized_s = _timed(lambda: index.query_many(texts, k=5))
        # Same top-k distance profile per query (neighbours at bit-identical
        # distances may swap ranks between the two code paths).
        for distances, results in zip(baseline_distances, optimized_results):
            assert np.allclose(distances, [d for _, _, d in results], atol=1e-6)
        query_entry = REPORT.record(
            f"query_{n_texts}", baseline_s=baseline_s, optimized_s=optimized_s, items=n_texts
        )

        if n_texts == max(EMBED_SCALES):
            assert embed_entry.speedup >= MIN_EMBED_SPEEDUP, (
                f"embed_many speedup {embed_entry.speedup:.1f}x below {MIN_EMBED_SPEEDUP}x"
            )
            assert query_entry.speedup >= MIN_QUERY_SPEEDUP, (
                f"query_many speedup {query_entry.speedup:.1f}x below {MIN_QUERY_SPEEDUP}x"
            )

    # Cold-path gate: a fresh embedder at a dimensionality nobody else
    # uses, so both the process-wide feature cache and the per-instance text
    # cache start empty.  Single pass per side — this is the extraction cost
    # the pipeline pays on first sight of each text, which the warm gates
    # above cannot see.
    texts = _description_corpus(max(EMBED_SCALES), seed=23)
    cold_embedder = SentenceEmbedder(dimensions=509)
    cold_matrix, optimized_s = _timed(lambda: cold_embedder.embed_many(texts), repeats=1)
    baseline_embedder = SentenceEmbedder(dimensions=509)
    baseline_matrix, baseline_s = _timed(
        lambda: _seed_embed_loop(baseline_embedder, texts), repeats=1
    )
    assert np.allclose(cold_matrix, baseline_matrix)
    cold_entry = REPORT.record(
        f"embed_cold_{len(texts)}",
        baseline_s=baseline_s,
        optimized_s=optimized_s,
        items=len(texts),
    )
    assert cold_entry.speedup >= MIN_EMBED_COLD_SPEEDUP, (
        f"cold embed_many speedup {cold_entry.speedup:.1f}x below {MIN_EMBED_COLD_SPEEDUP}x"
    )


def test_perf_near_duplicates():
    for n_docs in DEDUP_SCALES:
        docs = _policy_corpus(n_docs, seed=31)
        # Same repeats on both sides so neither method gets a best-of-N edge.
        exact_pairs, baseline_s = _timed(
            lambda: near_duplicates(docs, threshold=0.95, method="exact"), repeats=2
        )
        lsh_pairs, optimized_s = _timed(
            lambda: near_duplicates(docs, threshold=0.95, method="lsh"), repeats=2
        )
        assert lsh_pairs == exact_pairs
        assert exact_pairs, "benchmark corpus must contain near-duplicates"
        entry = REPORT.record(
            f"dedup_{n_docs}", baseline_s=baseline_s, optimized_s=optimized_s, items=n_docs
        )
        if n_docs == max(DEDUP_SCALES):
            assert entry.speedup >= MIN_DEDUP_SPEEDUP, (
                f"LSH near_duplicates speedup {entry.speedup:.1f}x below {MIN_DEDUP_SPEEDUP}x"
            )
