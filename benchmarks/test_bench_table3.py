"""Benchmark E-T3 — Table 3: tool usage in GPTs."""

from benchmarks.conftest import assert_close
from repro.analysis.tools import analyze_tool_usage
from repro.experiments.paper_values import PAPER_VALUES


def test_bench_table3(benchmark, suite):
    tools = benchmark(analyze_tool_usage, suite.corpus, suite.party_index)
    paper = PAPER_VALUES["table3"]

    # Adoption ordering: browser > dalle > code interpreter > knowledge > actions.
    assert tools.share("browser") > tools.share("dalle") > tools.share("code_interpreter")
    assert tools.share("code_interpreter") > tools.share("knowledge") > tools.share("action")
    assert_close(tools.share("browser"), paper["browser"], rel=0.1)
    assert_close(tools.share("dalle"), paper["dalle"], rel=0.1)
    assert_close(tools.share("code_interpreter"), paper["code_interpreter"], rel=0.15)
    assert_close(tools.share("knowledge"), paper["knowledge"], rel=0.2)
    assert_close(tools.share("action"), paper["actions"], rel=0.35)
    assert_close(tools.any_tool_share, paper["any_tool"], rel=0.1)
    # Third-party Actions dominate (paper: 82.9% vs 17.1%).
    assert tools.third_party_action_share > tools.first_party_action_share
    assert_close(tools.third_party_action_share, paper["third_party_actions"], rel=0.25)
