"""Benchmark E-F8 — Figure 8: Action co-occurrence graph."""

from repro.analysis.cooccurrence import analyze_cooccurrence
from repro.analysis.multiaction import analyze_multi_action


def test_bench_figure8(benchmark, suite):
    cooccurrence = benchmark(analyze_cooccurrence, suite.corpus)
    multi = analyze_multi_action(suite.corpus)

    # Multi-Action GPTs produce a non-trivial co-occurrence graph.
    assert cooccurrence.n_nodes > 0
    assert cooccurrence.n_edges > 0
    # Widely-embedded third-party services (webPilot, AdIntelli, Zapier, …)
    # co-occur with other Actions across GPTs.  At the synthetic corpus scale
    # their weighted degrees are in the single digits (the paper's 93/29 come
    # from a 119K-GPT crawl), but the structural property — prevalent services
    # acting as cross-GPT connectors — must hold.
    prevalent_ids = [
        action_id
        for name in ("webPilot", "AdIntelli", "Zapier", "Gapier", "Link Reader", "Adzedek")
        if (action_id := cooccurrence.find_by_name(name)) is not None
        and action_id in cooccurrence.graph
    ]
    assert prevalent_ids, "at least one prevalent Action must appear in the graph"
    best_prevalent = max(cooccurrence.weighted_degree(action_id) for action_id in prevalent_ids)
    assert best_prevalent >= 2
    # The largest connected component contains the top hub.
    hubs = cooccurrence.top_by_weighted_degree(6)
    component = cooccurrence.largest_component()
    assert hubs[0][0] in component
    assert component.number_of_nodes() >= 3
    # A noticeable share of Actions co-occur with at least one other Action
    # (paper: 23.9%).
    assert 0.05 <= multi.cooccurring_action_share <= 0.7
