"""Benchmark E-F7 — Figure 7: distribution of data items per Action."""

from benchmarks.conftest import assert_close
from repro.analysis.collection import analyze_collection
from repro.experiments.paper_values import PAPER_VALUES


def test_bench_figure7(benchmark, suite):
    collection = benchmark(
        analyze_collection, suite.corpus, suite.classification, suite.party_index
    )
    paper = PAPER_VALUES["figure7"]

    # Roughly half of Actions collect 5+ data items and a fifth collect 10+.
    assert_close(collection.share_with_at_least(5), paper["share_actions_5_plus_items"], rel=0.35)
    assert_close(collection.share_with_at_least(10), paper["share_actions_10_plus_items"], rel=0.6)
    # Third-party Actions collect more data on average (paper: +6.03%).
    assert collection.mean_items("third") > 0
    assert collection.third_party_excess() > -0.05
    # The CDFs are proper distribution functions.
    for party in (None, "first", "third"):
        cdf = collection.item_count_cdf(party)
        if cdf:
            fractions = [y for _, y in cdf]
            assert fractions == sorted(fractions)
            assert fractions[-1] == 1.0
