"""Benchmark E-T4 — Table 4: data types collected by first-/third-party Actions."""

from benchmarks.conftest import assert_close
from repro.analysis.collection import analyze_collection
from repro.experiments.paper_values import PAPER_VALUES


def test_bench_table4(benchmark, suite):
    collection = benchmark(
        analyze_collection, suite.corpus, suite.classification, suite.party_index
    )
    paper = PAPER_VALUES["table4"]

    # Breadth: the corpus exercises most of the 24 categories / 145 types.
    assert collection.n_categories_observed() >= 18
    assert collection.n_types_observed() >= 60

    # Shape of the most-collected types: search queries lead, followed by URLs
    # and user interaction data; email is the most common personal data type.
    search = collection.row_for("Query", "Search query")
    urls = collection.row_for("Web and network data", "URLs")
    interaction = collection.row_for("App usage data", "User interaction data")
    email = collection.row_for("Personal information", "Email address")
    assert search is not None and urls is not None and interaction is not None
    assert search.gpt_share > urls.gpt_share > 0
    assert search.gpt_share > interaction.gpt_share
    assert_close(search.gpt_share, paper["search_query_gpt_share"], rel=0.5)
    assert_close(urls.gpt_share, paper["urls_gpt_share"], rel=0.6)
    if email is not None:
        assert email.gpt_share < search.gpt_share
