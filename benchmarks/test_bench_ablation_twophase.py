"""Ablation — two-phase (category → type) vs single-phase classification.

Section 3.2.3 notes the classification runs in two phases: first the
higher-level category, then the data type within it.  This ablation compares
the two-phase pipeline against direct (category, type) prediction.
"""

from repro.classification.classifier import ClassifierConfig, DataCollectionClassifier
from repro.classification.descriptions import sample_descriptions
from repro.classification.evaluation import evaluate_predictions, gold_from_ground_truth


def _evaluate(suite, two_phase: bool, descriptions):
    classifier = DataCollectionClassifier(
        taxonomy=suite.taxonomy,
        llm=suite.llm,
        fewshot_store=suite.fewshot_store,
        config=ClassifierConfig(two_phase=two_phase),
    )
    result = classifier.classify_many(descriptions)
    gold = gold_from_ground_truth(descriptions, suite.ecosystem.ground_truth)
    return evaluate_predictions(result.labels, gold)


def test_bench_ablation_twophase(benchmark, suite):
    descriptions = sample_descriptions(suite.descriptions, min(250, len(suite.descriptions)), seed=6)

    two_phase = benchmark(_evaluate, suite, True, descriptions)
    single_phase = _evaluate(suite, False, descriptions)

    assert two_phase.n_evaluated == single_phase.n_evaluated > 0
    # Both pipelines land in the paper's accuracy band; two-phase tracks the
    # category decision explicitly so its category accuracy is at least as good.
    assert two_phase.category_accuracy >= single_phase.category_accuracy - 0.03
    assert abs(two_phase.type_accuracy - single_phase.type_accuracy) < 0.12
