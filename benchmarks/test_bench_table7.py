"""Benchmark E-T7 — Table 7: Actions with five or more consistent disclosures."""

from benchmarks.conftest import assert_close
from repro.analysis.disclosure import analyze_disclosure
from repro.experiments.paper_values import PAPER_VALUES


def test_bench_table7(benchmark, suite):
    disclosure = benchmark(analyze_disclosure, suite.policy_report, suite.corpus)
    paper = PAPER_VALUES["table7"]

    # Only a small fraction of Actions disclose their entire data collection
    # (paper: 5.8%); Actions with 5+ consistent disclosures form a short table.
    assert_close(disclosure.fully_consistent_share, paper["fully_consistent_action_share"],
                 rel=1.5, abs_tol=0.06)
    rows = disclosure.top_consistent_actions(min_clear=5)
    assert len(rows) <= max(1, disclosure.n_actions_analyzed // 3)
    for row in rows:
        assert row.clear + row.vague >= 5
