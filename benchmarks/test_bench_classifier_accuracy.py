"""Benchmark E-S41 — Section 4.1.2: classification framework accuracy."""

from benchmarks.conftest import assert_close
from repro.experiments.paper_values import PAPER_VALUES


def test_bench_classifier_accuracy(benchmark, suite):
    evaluation = benchmark(suite.evaluate_classifier)
    paper = PAPER_VALUES["classifier_accuracy"]

    assert evaluation.n_evaluated > 200
    # Paper: 92.83% category accuracy, 91.53% type accuracy.
    assert_close(evaluation.category_accuracy, paper["category_accuracy"], rel=0.08)
    assert_close(evaluation.type_accuracy, paper["type_accuracy"], rel=0.10)
    assert evaluation.category_accuracy >= evaluation.type_accuracy - 1e-9

    # Mistakes concentrate on empty, terse, or multi-topic descriptions
    # (Section 4.1.2's mistake analysis).
    if evaluation.mistakes.total_errors:
        rates = evaluation.mistakes.rates()
        hard_causes = rates["empty_description"] + rates["short_description"] + rates["multi_topic"]
        assert hard_causes > 0.2
