"""Ablation — few-shot retrieval vs zero-shot classification (Section 3.2.3).

The paper conditions the classifier with the top-5 most relevant labelled
examples retrieved by embedding similarity.  This ablation measures how much
that in-context learning contributes by re-running the classifier with the
few-shot store disabled and comparing accuracies.
"""

from repro.classification.classifier import ClassifierConfig, DataCollectionClassifier
from repro.classification.descriptions import sample_descriptions
from repro.classification.evaluation import evaluate_predictions, gold_from_ground_truth


def _evaluate(suite, use_fewshot: bool, descriptions):
    classifier = DataCollectionClassifier(
        taxonomy=suite.taxonomy,
        llm=suite.llm,
        fewshot_store=suite.fewshot_store,
        config=ClassifierConfig(use_fewshot=use_fewshot, two_phase=True),
    )
    result = classifier.classify_many(descriptions)
    gold = gold_from_ground_truth(descriptions, suite.ecosystem.ground_truth)
    return evaluate_predictions(result.labels, gold)


def test_bench_ablation_fewshot(benchmark, suite):
    descriptions = sample_descriptions(suite.descriptions, min(250, len(suite.descriptions)), seed=5)

    with_fewshot = benchmark(_evaluate, suite, True, descriptions)
    without_fewshot = _evaluate(suite, False, descriptions)

    assert with_fewshot.n_evaluated == without_fewshot.n_evaluated > 0
    # Few-shot conditioning never hurts and typically helps on the hard
    # (terse / paraphrased / multi-topic) descriptions.
    assert with_fewshot.type_accuracy >= without_fewshot.type_accuracy - 0.02
    assert with_fewshot.type_accuracy > 0.85
