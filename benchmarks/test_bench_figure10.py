"""Benchmark E-F10 — Figure 10: disclosure consistency for prevalent data types."""

from repro.analysis.disclosure import analyze_disclosure
from repro.policy.labels import ConsistencyLabel


def test_bench_figure10(benchmark, suite):
    disclosure = benchmark(analyze_disclosure, suite.policy_report, suite.corpus)

    rows = disclosure.prevalent_type_rows(min_occurrences=5)
    assert rows, "prevalent data types must exist"
    # Search query is the most frequently analyzed data type (paper: 736 of the
    # disclosures, far ahead of every other type).
    top_key, _, top_total = rows[0]
    assert top_total >= rows[-1][2]
    type_names = [key[1] for key, _, _ in rows]
    assert "Search query" in type_names[:5]

    # For most prevalent types, omission is the dominant label (Figure 10).
    omitted_dominant = 0
    for _, counts, total in rows:
        if counts[ConsistencyLabel.OMITTED] / total > 0.5:
            omitted_dominant += 1
    assert omitted_dominant / len(rows) > 0.5
