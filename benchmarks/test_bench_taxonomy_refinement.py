"""Benchmark E-S324 — Section 3.2.4: handling of ``Other`` descriptions.

Starting from the bootstrap taxonomy (18 categories / 79 types), a large
fraction of data descriptions cannot be classified (the paper: 35.07%).  The
refinement loop proposes new data types for them and re-classifies, dropping
the residual ``Other`` rate to 7.95% while growing the taxonomy toward its
final 24 × 145 shape.
"""

from repro.experiments.registry import run_taxonomy_refinement


def test_bench_taxonomy_refinement(benchmark, suite):
    result = benchmark.pedantic(run_taxonomy_refinement, args=(suite,), rounds=1, iterations=1)
    measured = result.measured_values

    # A substantial share of descriptions is unclassifiable against the
    # bootstrap taxonomy, and the refinement pass removes most of it.
    assert 0.10 <= measured["initial_other_rate"] <= 0.60
    assert measured["final_other_rate"] < measured["initial_other_rate"] * 0.6
    assert measured["final_other_rate"] <= 0.20
    # The refinement adds a meaningful number of new categories and types,
    # growing the taxonomy toward (but not beyond) the final 24 x 145.
    assert measured["accepted_new_categories"] >= 2
    assert measured["accepted_new_types"] >= 10
    assert measured["final_n_categories"] <= 24
    assert measured["final_n_types"] <= 145
