"""Timed perf benchmarks for the sweep engine's content-addressed cache.

Runs a two-scenario × three-seed sweep of the *full* experiment battery
(every registered table/figure/statistic) and times three things:

* a cold sweep (every cell computed) against an unchanged re-run served
  entirely from the content-addressed artifact cache — the re-run must be
  at least ``MIN_CACHE_SPEEDUP``× faster;
* a sweep killed after half its cells against the resumed run that
  recomputes only the missing cells;
* the sequential cold sweep against the same grid scheduled on a 4-worker
  pool.

Alongside the timings, the aggregated results of every run — cold, cached,
resumed, and at every worker count — are asserted **byte-identical**
(canonical JSON), which is the property that makes the cache and the
concurrency safe to use for paper numbers.

The measured numbers are printed as a compact table and persisted to
``BENCH_sweep.json`` at the repository root alongside ``BENCH_nlp.json``
and ``BENCH_crawl.json``.
"""

from __future__ import annotations

import time

import pytest

from perf_report import PerfReport

from repro.experiments.sweep import SweepRunner, expand_grid
from repro.io import ArtifactStore, canonical_json

REPORT = PerfReport("sweep")

#: Shape of the benchmark grid: every registered experiment over
#: 2 scenarios × 3 seeds at a 500-GPT scale.
SCENARIOS = ["baseline", "flaky-hosts"]
N_SEEDS = 3
SWEEP_GPTS = 500
SWEEP_SEED = 17

#: Worker-pool size for the concurrent sweep.
WORKERS = 4

#: Required speedup of an unchanged-grid re-run served from the cache.
MIN_CACHE_SPEEDUP = 5.0


@pytest.fixture(scope="module", autouse=True)
def _emit_report():
    """Print the timing table and write BENCH_sweep.json after the module."""
    yield
    print()
    print(REPORT.format_table())
    print(f"wrote {REPORT.write()}")


def _grid():
    return expand_grid(SCENARIOS, N_SEEDS, base_seed=SWEEP_SEED, n_gpts=SWEEP_GPTS)


def _run(store=None, workers=0, cells=None):
    """Run the benchmark grid; returns (wall seconds, canonical results)."""
    runner = SweepRunner(cells if cells is not None else _grid(), store=store, workers=workers)
    start = time.monotonic()
    result = runner.run()
    elapsed = time.monotonic() - start
    return elapsed, result


def _canonical(result) -> str:
    return canonical_json([(cell.cell_id, cell.experiments) for cell in result.cells])


def test_cached_rerun_speedup(tmp_path_factory):
    """An unchanged grid re-run is served from the cache, >=5x faster."""
    root = tmp_path_factory.mktemp("sweep-cache")
    cold_s, cold = _run(store=ArtifactStore(root))
    warm_s, warm = _run(store=ArtifactStore(root))

    entry = REPORT.record(
        "cached_rerun_6_cells",
        baseline_s=cold_s,
        optimized_s=warm_s,
        items=cold.n_cells,
    )
    assert warm.n_from_cache == warm.n_cells == len(_grid())
    assert _canonical(warm) == _canonical(cold)
    assert entry.speedup >= MIN_CACHE_SPEEDUP, (
        f"cached re-run only {entry.speedup:.1f}x faster "
        f"(needs >= {MIN_CACHE_SPEEDUP}x)"
    )


def test_resume_after_kill(tmp_path_factory):
    """A sweep killed halfway resumes, recomputing only the missing cells."""
    root = tmp_path_factory.mktemp("sweep-resume")
    cells = _grid()
    # The "killed" run completed half the grid before dying.
    _run(store=ArtifactStore(root), cells=cells[: len(cells) // 2])

    fresh_s, fresh = _run()
    resumed_s, resumed = _run(store=ArtifactStore(root), cells=cells)

    REPORT.record(
        "resume_after_kill",
        baseline_s=fresh_s,
        optimized_s=resumed_s,
        items=len(cells),
    )
    assert resumed.n_from_cache == len(cells) // 2
    assert _canonical(resumed) == _canonical(fresh)


def test_worker_scaling_is_deterministic(tmp_path_factory):
    """The 4-worker cold sweep matches the sequential results byte-for-byte."""
    sequential_s, sequential = _run()
    workers_s, workers = _run(workers=WORKERS)

    REPORT.record(
        "cold_4_workers",
        baseline_s=sequential_s,
        optimized_s=workers_s,
        items=sequential.n_cells,
    )
    assert _canonical(workers) == _canonical(sequential)

    cached_root = tmp_path_factory.mktemp("sweep-workers")
    _, cached = _run(store=ArtifactStore(cached_root), workers=WORKERS)
    assert _canonical(cached) == _canonical(sequential)
