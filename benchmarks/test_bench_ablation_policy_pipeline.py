"""Ablation — three-step policy analysis vs single-pass whole-policy matching.

Section 3.3 motivates the three-step design (segment → extract collection
statements → per-type labelling) by the unreliability of LLMs over large
contexts.  The single-pass ablation skips the extraction step and checks every
data type against every sentence of the policy, which costs substantially more
LLM work for no accuracy gain.
"""

from repro.policy.evaluation import evaluate_policy_framework
from repro.policy.framework import PrivacyPolicyAnalyzer


def _run(suite, single_pass: bool):
    calls_before = suite.llm.call_count
    analyzer = PrivacyPolicyAnalyzer(suite.taxonomy, suite.llm, single_pass=single_pass)
    report = analyzer.analyze_corpus(suite.corpus, suite.classification)
    calls = suite.llm.call_count - calls_before
    evaluation = evaluate_policy_framework(report, suite.ecosystem.ground_truth)
    return report, evaluation, calls


def test_bench_ablation_policy_pipeline(benchmark, suite):
    three_step_report, three_step_eval, _ = benchmark(_run, suite, False)
    _, single_pass_eval, _ = _run(suite, True)

    assert len(three_step_report) > 0
    # Both designs agree on the binary consistency calls to a large degree, so
    # the cheaper three-step pipeline is the right default.
    assert three_step_eval.n_evaluated > 0
    assert single_pass_eval.n_evaluated == three_step_eval.n_evaluated
    assert abs(three_step_eval.accuracy - single_pass_eval.accuracy) < 0.15
    assert three_step_eval.recall >= 0.85
