"""Benchmark E-S52 — Section 5.2: disclosure-consistency headline statistics."""

from benchmarks.conftest import assert_close
from repro.analysis.disclosure import analyze_disclosure
from repro.experiments.paper_values import PAPER_VALUES
from repro.policy.labels import ConsistencyLabel


def test_bench_disclosure_headlines(benchmark, suite):
    disclosure = benchmark(analyze_disclosure, suite.policy_report, suite.corpus)
    paper = PAPER_VALUES["disclosure_headlines"]

    overall = disclosure.overall_distribution()
    # Disclosures for most collected data types are omitted.
    assert overall[ConsistencyLabel.OMITTED] == max(overall.values())
    assert overall[ConsistencyLabel.OMITTED] > 0.45
    # Only a small share of Actions disclose their entire data collection
    # (paper: 5.8%).
    assert_close(disclosure.fully_consistent_share, paper["fully_consistent_action_share"],
                 rel=1.5, abs_tol=0.06)
    # Consistency barely correlates with how much data an Action collects.
    assert abs(disclosure.spearman_consistency_vs_items() - paper["spearman_correlation"]) <= 0.55
