"""Benchmark E-S51 — Section 5.1: policy corpus statistics and framework accuracy."""

from benchmarks.conftest import assert_close
from repro.policy.duplicates import analyze_policy_corpus
from repro.experiments.paper_values import PAPER_VALUES


def test_bench_policy_stats(benchmark, suite):
    duplicates = benchmark(analyze_policy_corpus, suite.corpus)
    paper = PAPER_VALUES["policy_stats"]

    # Policy availability ≈ 94%.
    assert_close(duplicates.availability, paper["availability"], rel=0.08)
    # A large fraction of policies are exact duplicates of another Action's
    # policy (paper: 38.56%), a small fraction are near-duplicate boilerplate
    # (5.5%), and ~12% are shorter than 500 characters.
    assert_close(duplicates.duplicate_share, paper["duplicate_share"], rel=0.6)
    assert duplicates.near_duplicate_share <= 0.3
    assert_close(duplicates.short_share, paper["short_policy_share"], rel=0.8, abs_tol=0.08)

    # Framework accuracy ≈ 87% with recall well above precision (98.8% vs 86.6%).
    evaluation = suite.evaluate_policy_framework()
    assert_close(evaluation.accuracy, paper["framework_accuracy"], rel=0.1)
    assert_close(evaluation.recall, paper["framework_recall"], rel=0.1)
    assert evaluation.recall > evaluation.precision - 0.05
