"""Benchmark E-T6 — Table 6: content of duplicate privacy policies."""

from repro.policy.duplicates import analyze_policy_corpus
from repro.experiments.paper_values import PAPER_VALUES


def test_bench_table6(benchmark, suite):
    report = benchmark(analyze_policy_corpus, suite.corpus)
    paper = PAPER_VALUES["table6"]

    fractions = report.duplicate_content_fractions()
    assert fractions, "duplicate policies must exist in the corpus"
    # The two dominant explanations in the paper are external-service policies
    # and empty policies; together they cover the majority of duplicates.
    external = fractions.get("external_service", 0.0)
    empty = fractions.get("empty", 0.0)
    same_vendor = fractions.get("same_vendor", 0.0)
    assert external + empty + same_vendor > 0.4
    assert external > fractions.get("tracking_pixel", 0.0)
    # All reported kinds come from Table 6's vocabulary.
    assert set(fractions) <= set(paper) | {"other"}
