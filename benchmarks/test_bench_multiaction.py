"""Benchmark E-S44 — Section 4.4.1: multi-Action GPTs."""

from benchmarks.conftest import assert_close
from repro.analysis.multiaction import analyze_multi_action
from repro.experiments.paper_values import PAPER_VALUES


def test_bench_multiaction(benchmark, suite):
    multi = benchmark(analyze_multi_action, suite.corpus)
    paper = PAPER_VALUES["multiaction"]

    # 90.9% of Action-embedding GPTs integrate exactly one Action; the share
    # falls off sharply for two, three, and four-plus Actions.
    assert_close(multi.share_with_n_actions(1), paper["one_action"], rel=0.12)
    assert multi.share_with_n_actions(1) > multi.share_with_n_actions(2)
    assert multi.share_with_n_actions(2) >= multi.share_with_n_actions(3)
    assert multi.share_with_at_least(2) < 0.25

    # Among multi-Action GPTs, a slight majority contact additional domains
    # (paper: 55.3%); the rest add endpoints on the same online service.
    if multi.share_with_at_least(2) > 0:
        assert 0.2 <= multi.cross_domain_share <= 1.0

    # A noticeable fraction of Actions co-occur with other Actions (paper: 23.9%).
    assert_close(multi.cooccurring_action_share, paper["cooccurring_action_share"],
                 rel=1.0, abs_tol=0.15)
