"""Benchmark E-F11 — Figure 11: CDF of per-Action disclosure label mixes."""

from repro.analysis.disclosure import analyze_disclosure
from repro.policy.labels import ConsistencyLabel


def test_bench_figure11(benchmark, suite):
    disclosure = benchmark(analyze_disclosure, suite.policy_report, suite.corpus)

    # Per-Action label fractions form valid CDFs for every label.
    for label in ConsistencyLabel:
        cdf = disclosure.label_fraction_cdf(label)
        assert cdf, label
        fractions = [y for _, y in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    # Nearly all Actions have at least some inconsistent disclosures (the paper
    # notes at least 10% of every Action's data collection is inconsistent).
    fully_consistent = disclosure.fully_consistent_share
    assert fully_consistent < 0.3

    # Some Actions do disclose a meaningful share of their collection.
    assert disclosure.majority_consistent_share > 0.02
