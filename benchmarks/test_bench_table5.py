"""Benchmark E-T5 — Table 5: prevalent third-party Actions."""

from benchmarks.conftest import assert_close
from repro.analysis.prevalence import analyze_prevalence
from repro.experiments.paper_values import PAPER_VALUES


def test_bench_table5(benchmark, suite):
    prevalence = benchmark(
        analyze_prevalence, suite.corpus, suite.classification, suite.party_index
    )
    paper = PAPER_VALUES["table5"]

    assert prevalence.rows, "prevalent third-party Actions must exist"
    names = " | ".join(row.name for row in prevalence.top(20))
    # The paper's most widely embedded services show up in the top rows.
    assert "webPilot" in names
    assert "Zapier" in names or "AdIntelli" in names
    webpilot = prevalence.row_by_name("webPilot")
    assert webpilot is not None
    assert_close(webpilot.gpt_share, paper["webpilot_share"], rel=0.8, abs_tol=0.03)
    adintelli = prevalence.row_by_name("AdIntelli")
    if adintelli is not None:
        assert webpilot.gpt_share >= adintelli.gpt_share
