"""Timed perf benchmark for the incremental (delta-aware) epoch re-crawl.

Crawls a 50k-GPT epoch-0 snapshot, evolves the world one epoch with the
seeded churn model (`repro.ecosystem.evolution`, ~5% of records touched),
then re-crawls the evolved world twice over the same simulated network:

* **cold** — ``CrawlPipeline.run_sharded``, refetching all ~50k records
  (the baseline: what refreshing the corpus costs without epoch lineage);
* **incremental** — ``CrawlPipeline.run_incremental`` against the epoch-0
  store: full listing pass, then only the churn is fetched and the other
  ~95% of records are carried forward shard-locally.

Three properties are asserted alongside the headline
``incr_recrawl_50k_5pct_vs_cold`` row (gated at ``MIN_INCR_SPEEDUP``×):

* **byte-identity** — the incremental store's fingerprint equals the cold
  crawl's, so the order-of-magnitude win costs nothing in fidelity;
* **zero HTTP for carried records** — every gizmo-API request the
  incremental crawl issued names a churned identifier (verified against
  the full request log, not just counters);
* **carry coverage** — at least ``MIN_CARRY_SHARE`` of the corpus was
  carried, so the timing really measures the delta path.

The whole workload runs in a **child interpreter** (the scale bench's
``_run_child`` idiom), not because it measures RSS itself but because the
scale bench's child probes do: on Linux a forked child inherits the
parent's RSS high-water mark across ``exec`` (``ru_maxrss`` starts at the
parent's ``VmHWM``), so two 50k worlds held in the shared pytest process
would permanently inflate every later child probe's "import floor" —
exactly the allocator artifact ``tools/check_bench_refresh.py`` exists to
reject.  A disposable child keeps the coordinating process slim.

The row lands in ``BENCH_crawl.json`` next to the cold-crawl engine rows
(the report write merges with the prior file, so the two benchmark modules
share the artifact) and is regression-gated by ``perf_report.py --check``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from perf_report import PerfReport

REPORT = PerfReport("crawl")
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Scale of the epoch-0 snapshot and its seed.
INCR_GPTS = 50_000
INCR_SEED = 23

#: Simulated per-request network round-trip time.  Higher than the 2000-GPT
#: crawl bench's 2 ms: at 50k records the cold crawl is network-bound either
#: way, and 4 ms keeps the carried-forward records' I/O cost honest relative
#: to a realistic RTT instead of flattering the incremental path.
LATENCY_S = 0.004
WORKERS = 8
SHARDS = 8
#: Listing page size: 500-item pages keep the (always-run) listing stage at
#: ~2% of the cold crawl's requests, as in a production store crawl.
PAGE_SIZE = 500

#: Required speedup of the incremental re-crawl over the cold re-crawl.
MIN_INCR_SPEEDUP = 8.0
#: Minimum share of the evolved corpus that must be carried forward.
MIN_CARRY_SHARE = 0.9


@pytest.fixture(scope="module", autouse=True)
def _emit_report():
    """Print the timing table and merge into BENCH_crawl.json after the module."""
    yield
    print()
    print(REPORT.format_table())
    print(f"wrote {REPORT.write()}")


#: The child workload: build, evolve, cold-crawl, and incrementally re-crawl
#: the 50k world, then report timings + invariant checks as one JSON line.
_CHILD_WORKLOAD = f"""
import json, tempfile, time
from pathlib import Path

from repro.crawler.gizmo_api import GIZMO_API_PREFIX
from repro.crawler.pipeline import CrawlPipeline
from repro.crawler.transport import TransportConfig
from repro.ecosystem.config import EcosystemConfig
from repro.ecosystem.evolution import evolve_ecosystem
from repro.ecosystem.generator import EcosystemGenerator

INCR_GPTS = {INCR_GPTS}
INCR_SEED = {INCR_SEED}

def build(world):
    return CrawlPipeline.from_ecosystem(
        world,
        page_size={PAGE_SIZE},
        seed=INCR_SEED,
        workers={WORKERS},
        transport_config=TransportConfig(
            max_attempts=4, latency_s={LATENCY_S}, seed=INCR_SEED
        ),
        shards={SHARDS},
    )

config = EcosystemConfig.paper_calibrated(n_gpts=INCR_GPTS, seed=INCR_SEED)
ecosystem = EcosystemGenerator(config).generate()
evolved = evolve_ecosystem(ecosystem, config, epoch=1)

with tempfile.TemporaryDirectory(prefix="repro-incr-bench-") as tmp:
    tmp = Path(tmp)

    # Epoch 0: the parent snapshot (setup, not part of the comparison).
    parent = build(ecosystem).run_sharded(tmp / "epoch0")

    # Baseline: cold re-crawl of the evolved world, stamped with the same
    # lineage so the two epoch-1 stores are comparable byte for byte.
    cold_pipeline = build(evolved.ecosystem)
    start = time.perf_counter()
    cold = cold_pipeline.run_sharded(
        tmp / "epoch1_cold", epoch=1, parent_fingerprint=parent.fingerprint()
    )
    cold_s = time.perf_counter() - start

    # Optimized: the delta-aware re-crawl, with every request logged so the
    # zero-HTTP-for-carried-records claim is checked URL by URL.
    incr_pipeline = build(evolved.ecosystem)
    requested = []
    real_get = incr_pipeline.http.get

    def logging_get(url):
        requested.append(url)
        return real_get(url)

    incr_pipeline.http.get = logging_get
    start = time.perf_counter()
    incremental = incr_pipeline.run_incremental(
        tmp / "epoch1_incr",
        parent,
        changed_gpt_ids=sorted(evolved.delta.changed_gpt_ids),
        changed_policy_urls=sorted(evolved.delta.changed_policy_urls),
    )
    incremental_s = time.perf_counter() - start

    resolved_ids = set()
    for url in requested:
        if url.startswith(GIZMO_API_PREFIX):
            resolved_ids.add(url[len(GIZMO_API_PREFIX):])

    stats = incr_pipeline.statistics
    print(json.dumps({{
        "cold_s": cold_s,
        "incremental_s": incremental_s,
        "fingerprints_equal": incremental.fingerprint() == cold.fingerprint(),
        "n_resolved_over_http": len(resolved_ids),
        "resolved_subset_of_churn": resolved_ids <= evolved.delta.changed_gpt_ids,
        "n_records_carried": stats.n_records_carried,
        "n_requests_logged": len(requested),
        "n_http_requests_incremental": stats.n_http_requests,
        "n_http_requests_cold": cold_pipeline.statistics.n_http_requests,
    }}))
"""


def _run_child(code: str) -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    completed = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, env=env
    )
    if completed.returncode != 0:
        pytest.fail(
            "incremental-crawl bench child failed:\n" + completed.stderr[-4000:]
        )
    return json.loads(completed.stdout.strip().splitlines()[-1])


def test_incremental_recrawl_speedup():
    child = _run_child(_CHILD_WORKLOAD)

    # The incremental store is byte-identical to the cold crawl.
    assert child["fingerprints_equal"]

    # Carried records cost zero HTTP: every manifest the incremental crawl
    # resolved over the network names a churned identifier.
    assert child["n_resolved_over_http"] > 0, "the churned identifiers must be refetched"
    assert child["resolved_subset_of_churn"]

    # The timing measures the carry path, not a corpus that mostly churned.
    assert child["n_records_carried"] >= MIN_CARRY_SHARE * INCR_GPTS
    assert child["n_http_requests_incremental"] == child["n_requests_logged"]
    assert child["n_http_requests_incremental"] < child["n_http_requests_cold"] * 0.1

    entry = REPORT.record(
        "incr_recrawl_50k_5pct_vs_cold",
        baseline_s=child["cold_s"],
        optimized_s=child["incremental_s"],
        items=child["n_records_carried"],
    )
    assert entry.speedup >= MIN_INCR_SPEEDUP, (
        f"incremental re-crawl only {entry.speedup:.1f}x faster than the "
        f"cold re-crawl (needs {MIN_INCR_SPEEDUP:.0f}x) — "
        f"{child['n_records_carried']} records carried, "
        f"{child['n_http_requests_incremental']} requests for the delta"
    )
