#!/usr/bin/env python
"""Lint gate: analysis code must not materialize the whole corpus.

The sharded measurement path exists so that every analysis stage holds one
record (or one shard) at a time.  Calling ``ShardedCorpusStore.load_corpus``
from code under ``src/repro/analysis/`` silently re-materializes the entire
corpus and defeats bounded-memory sharding, so ``make lint`` rejects it.

Rules (checked textually, per line, on ``src/repro/analysis/**/*.py``):

* any ``load_corpus`` call is an error, unless the line carries an explicit
  ``lint-allow-materialize`` pragma comment explaining itself (today the
  only allowed site is ``MeasurementSuite.corpus`` — the documented
  compatibility property);
* ``corpus_from_payload`` / ``load_classification`` whole-file loads are
  rejected the same way — analysis code should consume a
  :class:`repro.io.CorpusSource` (``iter_records`` / ``iter_shard``) or the
  streaming accumulators instead.

Docstrings and comments that merely *mention* the banned names are fine:
a line only counts when the name is followed by an open parenthesis.

Exit status: 0 when clean, 1 with a file:line listing otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

BANNED = ("load_corpus", "corpus_from_payload", "load_classification")
PRAGMA = "lint-allow-materialize"
ANALYSIS_DIR = Path(__file__).resolve().parent.parent / "src" / "repro" / "analysis"

CALL_PATTERN = re.compile(
    r"\b(" + "|".join(re.escape(name) for name in BANNED) + r")\s*\("
)


def find_violations(root: Path) -> list[str]:
    violations: list[str] = []
    for path in sorted(root.rglob("*.py")):
        for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            match = CALL_PATTERN.search(line)
            if match is None or PRAGMA in line:
                continue
            violations.append(
                f"{path.relative_to(root.parent.parent.parent)}:{number}: "
                f"{match.group(1)}() materializes the whole corpus; consume a "
                f"CorpusSource (iter_records/iter_shard) or add a "
                f"'# {PRAGMA}: <reason>' pragma"
            )
    return violations


def main() -> int:
    if not ANALYSIS_DIR.is_dir():
        print(f"check_no_materialize: missing directory {ANALYSIS_DIR}", file=sys.stderr)
        return 1
    violations = find_violations(ANALYSIS_DIR)
    if violations:
        print("ERROR: make lint: whole-corpus materialization in analysis code:")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
