#!/usr/bin/env python
"""Lint gate: a BENCH refresh must not smuggle in a bloated import floor.

The scale benchmarks record two RSS invariants per corpus size in
``BENCH_*.json``: ``rss_import_floor_mb_*`` (memory the interpreter +
imports cost before any work) and ``rss_workload_mb_*`` (what the workload
added on top).  The streaming contract is that the workload delta stays
~0 MB at any scale; the import floor is runner-dependent ballast.

That split creates a blind spot: a refresh that ships a much larger import
floor while the workload delta "stays flat at ~0" still passes the ratio
checks — the regression hides in the baseline everything is measured
against.  This gate closes it: for every ``BENCH_*.json`` in the working
tree, each ``rss_import_floor_mb*`` invariant is compared against the
``HEAD``-committed value, and the refresh fails when the floor grew more
than ``MAX_FLOOR_GROWTH`` (1.5x) while the matching ``rss_workload_mb*``
key still reports under ``FLAT_WORKLOAD_MB`` (1 MB) — exactly the
"nothing to see here" shape an accidental eager import produces.

Files without a committed counterpart (new benchmarks), files without
invariants, and floors that grew alongside a *visible* workload delta are
all fine.  Exit status: 0 when clean, 1 with a listing otherwise.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

FLOOR_PREFIX = "rss_import_floor_mb"
WORKLOAD_PREFIX = "rss_workload_mb"
MAX_FLOOR_GROWTH = 1.5
FLAT_WORKLOAD_MB = 1.0


def _invariants(payload: object) -> dict:
    if isinstance(payload, dict) and isinstance(payload.get("invariants"), dict):
        return payload["invariants"]
    return {}


def _committed_payload(name: str) -> object:
    try:
        completed = subprocess.run(
            ["git", "-C", str(REPO_ROOT), "show", f"HEAD:{name}"],
            capture_output=True,
            text=True,
            check=True,
        )
        return json.loads(completed.stdout)
    except (OSError, subprocess.CalledProcessError, json.JSONDecodeError):
        return None


def find_violations(root: Path) -> list[str]:
    violations: list[str] = []
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            fresh = _invariants(json.loads(path.read_text(encoding="utf-8")))
        except (OSError, json.JSONDecodeError):
            continue
        committed = _invariants(_committed_payload(path.name))
        if not fresh or not committed:
            continue
        for key, fresh_value in fresh.items():
            if not key.startswith(FLOOR_PREFIX):
                continue
            committed_value = committed.get(key)
            if not isinstance(committed_value, (int, float)) or committed_value <= 0:
                continue
            if not isinstance(fresh_value, (int, float)):
                continue
            if fresh_value <= committed_value * MAX_FLOOR_GROWTH:
                continue
            workload_key = key.replace(FLOOR_PREFIX, WORKLOAD_PREFIX, 1)
            workload = fresh.get(workload_key)
            if isinstance(workload, (int, float)) and workload >= FLAT_WORKLOAD_MB:
                continue  # the growth is visible in the workload delta
            violations.append(
                f"{path.name}: {key} jumped {committed_value} -> {fresh_value} MB "
                f"(> {MAX_FLOOR_GROWTH}x the committed value) while "
                f"{workload_key} stays ~0 — the regression is hiding in the "
                "import floor; find the eager import (or re-baseline "
                "deliberately with a commit message explaining the growth)"
            )
    return violations


def main() -> int:
    if not REPO_ROOT.is_dir():  # pragma: no cover - repo layout invariant
        print(f"check_bench_refresh: missing directory {REPO_ROOT}", file=sys.stderr)
        return 1
    violations = find_violations(REPO_ROOT)
    if violations:
        print("ERROR: make lint: suspicious BENCH refresh (import-floor bloat):")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
