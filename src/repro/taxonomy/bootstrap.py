"""The initial (bootstrap) taxonomy used to seed the manual coding process.

Section 3.2.2 of the paper bootstraps the taxonomy from Android's data-safety
data types and then refines it through manual review of 1K sampled data
descriptions.  The initial taxonomy consists of 18 categories and 79 data
types; after the final refinement pass (Section 3.2.4) it grows to 24
categories and 145 types.

Here we derive the bootstrap taxonomy deterministically from the built-in
final taxonomy by keeping the first 18 categories and a stable subset of 79
data types, which preserves the *workflow* (bootstrap → review → extend)
without duplicating a second large data table.
"""

from __future__ import annotations

from typing import List

from repro.taxonomy.builtin import CATEGORY_DESCRIPTIONS, taxonomy_records
from repro.taxonomy.schema import DataTaxonomy, DataType

#: The 18 categories present in the initial taxonomy (paper Section 3.2.2).
BOOTSTRAP_CATEGORIES: List[str] = [
    "Location",
    "Time",
    "Event information",
    "Personal information",
    "Finance information",
    "Health information",
    "App usage data",
    "App metadata",
    "Files and documents",
    "Web and network data",
    "Message",
    "Query",
    "Identifier",
    "Market data",
    "Weather information",
    "Vehicle information",
    "Security credentials",
    "Food and nutrition information",
]

#: Number of data types in the initial taxonomy.
BOOTSTRAP_TYPE_COUNT = 79


def load_bootstrap_taxonomy(include_other: bool = True) -> DataTaxonomy:
    """Build the 18-category / 79-type bootstrap taxonomy.

    Data types are selected per category proportionally to the category's size
    in the final taxonomy, keeping the earliest (most common) entries so that
    every bootstrap type also exists in the final taxonomy.
    """
    records = taxonomy_records()
    bootstrap_records = {name: records[name] for name in BOOTSTRAP_CATEGORIES}
    total_types = sum(len(entries) for entries in bootstrap_records.values())

    taxonomy = DataTaxonomy(name="gpt-data-exposure-bootstrap")
    selected = 0
    # First pass: proportional allocation with at least one type per category.
    quotas = {}
    for name, entries in bootstrap_records.items():
        quota = max(1, round(BOOTSTRAP_TYPE_COUNT * len(entries) / total_types))
        quotas[name] = min(quota, len(entries))
    # Adjust quotas to hit the target count exactly.
    overshoot = sum(quotas.values()) - BOOTSTRAP_TYPE_COUNT
    category_order = sorted(quotas, key=lambda name: quotas[name], reverse=True)
    index = 0
    while overshoot > 0 and index < len(category_order) * 4:
        name = category_order[index % len(category_order)]
        if quotas[name] > 1:
            quotas[name] -= 1
            overshoot -= 1
        index += 1
    while overshoot < 0:
        name = category_order[(-overshoot) % len(category_order)]
        if quotas[name] < len(bootstrap_records[name]):
            quotas[name] += 1
            overshoot += 1
        else:
            overshoot += 1  # skip saturated category

    for name, entries in bootstrap_records.items():
        taxonomy.add_category(name, CATEGORY_DESCRIPTIONS.get(name, ""))
        for entry in entries[: quotas[name]]:
            taxonomy.add_data_type(
                DataType(
                    name=str(entry["name"]),
                    category=name,
                    description=str(entry["description"]),
                    keywords=tuple(entry["keywords"]),  # type: ignore[arg-type]
                    phrasings=tuple(entry["phrasings"]),  # type: ignore[arg-type]
                    sensitive=bool(entry["sensitive"]),
                    prohibited=bool(entry["prohibited"]),
                )
            )
            selected += 1

    if include_other:
        from repro.taxonomy.schema import OTHER_CATEGORY, OTHER_TYPE

        taxonomy.add_category(OTHER_CATEGORY, CATEGORY_DESCRIPTIONS[OTHER_CATEGORY])
        taxonomy.add_data_type(
            DataType(
                name=OTHER_TYPE,
                category=OTHER_CATEGORY,
                description="Data descriptions that do not match any taxonomy entry.",
            )
        )
    return taxonomy
