"""Multi-coder taxonomy construction workflow (Section 3.2.2).

The paper builds the taxonomy with three human coders (plus an LLM) who
independently label 1K sampled data descriptions against a preliminary
taxonomy, then meet to resolve disagreements.  This module reproduces the
workflow programmatically: coders are modelled as labelling functions, a
:class:`ReviewSession` records per-description decisions and agreement
statistics, and the resolved labels become the few-shot example set used by
the classifier.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.taxonomy.schema import DataTaxonomy, DataType, OTHER_CATEGORY, OTHER_TYPE

#: A coder maps a free-text data description to a ``(category, type)`` pair.
Coder = Callable[[str], Tuple[str, str]]


@dataclass(frozen=True)
class CoderDecision:
    """A single coder's label for one data description."""

    coder: str
    description: str
    category: str
    data_type: str

    @property
    def label(self) -> Tuple[str, str]:
        """The ``(category, type)`` label assigned by the coder."""
        return (self.category, self.data_type)


@dataclass
class ResolvedLabel:
    """The final label for a description after disagreement resolution."""

    description: str
    category: str
    data_type: str
    unanimous: bool
    votes: Dict[Tuple[str, str], int] = field(default_factory=dict)


@dataclass
class ReviewSession:
    """Outcome of one round of multi-coder review."""

    decisions: List[CoderDecision] = field(default_factory=list)
    resolved: List[ResolvedLabel] = field(default_factory=list)

    @property
    def n_descriptions(self) -> int:
        """Number of distinct descriptions reviewed."""
        return len({decision.description for decision in self.decisions})

    def agreement_rate(self) -> float:
        """Fraction of descriptions on which all coders agreed."""
        if not self.resolved:
            return 0.0
        unanimous = sum(1 for label in self.resolved if label.unanimous)
        return unanimous / len(self.resolved)

    def labels(self) -> Dict[str, Tuple[str, str]]:
        """Mapping from description to its resolved ``(category, type)``."""
        return {label.description: (label.category, label.data_type) for label in self.resolved}


class TaxonomyBuilder:
    """Coordinates coders to produce labelled examples and extend a taxonomy.

    Parameters
    ----------
    taxonomy:
        The preliminary taxonomy the coders label against.
    coders:
        Mapping of coder name to a labelling function.  In the paper these are
        three human reviewers plus one LLM; in the reproduction they are
        typically :class:`repro.llm.knowledge.KeywordKnowledgeBase`-backed
        labelers with different noise seeds.
    """

    def __init__(self, taxonomy: DataTaxonomy, coders: Mapping[str, Coder]) -> None:
        if not coders:
            raise ValueError("at least one coder is required")
        self.taxonomy = taxonomy
        self.coders = dict(coders)

    def review(self, descriptions: Sequence[str]) -> ReviewSession:
        """Run one review round over the sampled data descriptions.

        Every coder labels every description; disagreements are resolved by
        majority vote (ties broken by the first coder's label, mirroring the
        paper's joint adjudication meeting where the label assigner identity is
        hidden).
        """
        session = ReviewSession()
        for description in descriptions:
            votes: Counter = Counter()
            first_label: Optional[Tuple[str, str]] = None
            for coder_name, coder in self.coders.items():
                category, data_type = coder(description)
                if not self._label_in_taxonomy(category, data_type):
                    category, data_type = OTHER_CATEGORY, OTHER_TYPE
                decision = CoderDecision(
                    coder=coder_name,
                    description=description,
                    category=category,
                    data_type=data_type,
                )
                session.decisions.append(decision)
                votes[decision.label] += 1
                if first_label is None:
                    first_label = decision.label
            assert first_label is not None
            winner, count = votes.most_common(1)[0]
            tied = [label for label, votes_ in votes.items() if votes_ == count]
            if len(tied) > 1:
                winner = first_label if first_label in tied else tied[0]
            session.resolved.append(
                ResolvedLabel(
                    description=description,
                    category=winner[0],
                    data_type=winner[1],
                    unanimous=(len(votes) == 1),
                    votes=dict(votes),
                )
            )
        return session

    def build_examples(self, session: ReviewSession) -> List[Tuple[str, str, str]]:
        """Turn a resolved review session into ``(description, category, type)`` examples."""
        return [
            (label.description, label.category, label.data_type)
            for label in session.resolved
            if label.category != OTHER_CATEGORY
        ]

    def propose_new_types(
        self, session: ReviewSession, minimum_support: int = 3
    ) -> List[DataType]:
        """Propose new data types for descriptions resolved as ``Other``.

        Descriptions that could not be matched are grouped by their leading
        token; groups with at least ``minimum_support`` members become new
        data-type proposals (named after the shared token).  This mirrors the
        creation of new tuples for unmatched descriptions in Section 3.2.2.
        """
        unmatched = [
            label.description for label in session.resolved if label.category == OTHER_CATEGORY
        ]
        groups: Dict[str, List[str]] = {}
        for description in unmatched:
            tokens = [token for token in description.lower().split() if token.isalpha()]
            key = tokens[0] if tokens else "misc"
            groups.setdefault(key, []).append(description)
        proposals: List[DataType] = []
        for key, members in sorted(groups.items()):
            if len(members) < minimum_support:
                continue
            proposals.append(
                DataType(
                    name=key.capitalize(),
                    category=OTHER_CATEGORY,
                    description=f"Automatically proposed type covering descriptions about {key!r}.",
                    keywords=(key,),
                )
            )
        return proposals

    def _label_in_taxonomy(self, category: str, data_type: str) -> bool:
        if category == OTHER_CATEGORY and data_type == OTHER_TYPE:
            return True
        return self.taxonomy.get_type(category, data_type) is not None


def coder_agreement_matrix(session: ReviewSession) -> Dict[Tuple[str, str], float]:
    """Pairwise agreement rates between coders in a review session.

    Returns a mapping from ``(coder_a, coder_b)`` to the fraction of
    descriptions they labelled identically.
    """
    by_coder: Dict[str, Dict[str, Tuple[str, str]]] = {}
    for decision in session.decisions:
        by_coder.setdefault(decision.coder, {})[decision.description] = decision.label
    coders = sorted(by_coder)
    matrix: Dict[Tuple[str, str], float] = {}
    for i, coder_a in enumerate(coders):
        for coder_b in coders[i + 1:]:
            shared = set(by_coder[coder_a]) & set(by_coder[coder_b])
            if not shared:
                matrix[(coder_a, coder_b)] = 0.0
                continue
            agreed = sum(
                1
                for description in shared
                if by_coder[coder_a][description] == by_coder[coder_b][description]
            )
            matrix[(coder_a, coder_b)] = agreed / len(shared)
    return matrix
