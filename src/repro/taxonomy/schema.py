"""Core data structures for the LLM-app data taxonomy.

A taxonomy is a two-level hierarchy: *categories* (e.g. ``Location``) contain
*data types* (e.g. ``City``), and every data type carries a natural-language
description (the ``<category, data type, description>`` tuples of
Section 3.2.2).  Data types additionally carry matching keywords used by the
simulated LLM's knowledge base and phrasing templates used by the synthetic
ecosystem generator.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

#: Sentinel category/type used when a data description cannot be mapped to the
#: taxonomy (Section 3.2.4).
OTHER_CATEGORY = "Other"
OTHER_TYPE = "Other"


class TaxonomyError(ValueError):
    """Raised when a taxonomy is constructed or queried inconsistently."""


def _normalize(name: str) -> str:
    """Normalize a category or data-type name for case-insensitive lookup."""
    return " ".join(name.strip().lower().split())


@dataclass(frozen=True)
class DataType:
    """A single data type in the taxonomy.

    Parameters
    ----------
    name:
        Canonical name, e.g. ``"Email address"``.
    category:
        Name of the category this type belongs to, e.g.
        ``"Personal information"``.
    description:
        A natural-language description of the data type (the third element of
        the taxonomy tuples in the paper).
    keywords:
        Indicator words and phrases used by the simulated LLM's knowledge base
        to recognize the data type in free text.
    phrasings:
        Natural-language templates used by the ecosystem generator to emit
        realistic data descriptions for this type.
    sensitive:
        Whether the type is broadly considered sensitive personal data.
    prohibited:
        Whether collection of the type is explicitly prohibited by the
        platform's usage policies (e.g. passwords and API keys).
    """

    name: str
    category: str
    description: str = ""
    keywords: Tuple[str, ...] = ()
    phrasings: Tuple[str, ...] = ()
    sensitive: bool = False
    prohibited: bool = False

    @property
    def key(self) -> Tuple[str, str]:
        """Unique ``(category, name)`` key of this data type."""
        return (self.category, self.name)

    @property
    def is_other(self) -> bool:
        """Whether this is the fallback ``Other`` type."""
        return _normalize(self.name) == _normalize(OTHER_TYPE)

    def with_description(self, description: str) -> "DataType":
        """Return a copy of this type with a replaced description."""
        return DataType(
            name=self.name,
            category=self.category,
            description=description,
            keywords=self.keywords,
            phrasings=self.phrasings,
            sensitive=self.sensitive,
            prohibited=self.prohibited,
        )

    def to_dict(self) -> Dict[str, object]:
        """Serialize to a JSON-compatible dictionary."""
        return {
            "name": self.name,
            "category": self.category,
            "description": self.description,
            "keywords": list(self.keywords),
            "phrasings": list(self.phrasings),
            "sensitive": self.sensitive,
            "prohibited": self.prohibited,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "DataType":
        """Deserialize from :meth:`to_dict` output."""
        return cls(
            name=str(payload["name"]),
            category=str(payload["category"]),
            description=str(payload.get("description", "")),
            keywords=tuple(payload.get("keywords", ())),  # type: ignore[arg-type]
            phrasings=tuple(payload.get("phrasings", ())),  # type: ignore[arg-type]
            sensitive=bool(payload.get("sensitive", False)),
            prohibited=bool(payload.get("prohibited", False)),
        )


@dataclass
class DataCategory:
    """A category grouping several :class:`DataType` entries."""

    name: str
    description: str = ""
    data_types: List[DataType] = field(default_factory=list)

    def type_names(self) -> List[str]:
        """Names of all data types in this category."""
        return [data_type.name for data_type in self.data_types]

    def get(self, type_name: str) -> Optional[DataType]:
        """Look up a data type by (case-insensitive) name."""
        wanted = _normalize(type_name)
        for data_type in self.data_types:
            if _normalize(data_type.name) == wanted:
                return data_type
        return None

    def __len__(self) -> int:
        return len(self.data_types)

    def __iter__(self) -> Iterator[DataType]:
        return iter(self.data_types)

    def to_dict(self) -> Dict[str, object]:
        """Serialize to a JSON-compatible dictionary."""
        return {
            "name": self.name,
            "description": self.description,
            "data_types": [data_type.to_dict() for data_type in self.data_types],
        }


class DataTaxonomy:
    """A two-level data taxonomy (categories containing data types).

    The taxonomy behaves like an immutable registry once built, but supports
    the refinement operations used in Section 3.2.4 (adding, merging and
    deprecating data types) through explicit methods that return information
    about the change.
    """

    def __init__(self, name: str = "llm-app-data-taxonomy") -> None:
        self.name = name
        self._categories: Dict[str, DataCategory] = {}
        self._category_descriptions: Dict[str, str] = {}
        self._types_by_key: Dict[Tuple[str, str], DataType] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_category(self, name: str, description: str = "") -> DataCategory:
        """Add (or fetch) a category by name."""
        norm = _normalize(name)
        if norm in self._categories:
            category = self._categories[norm]
            if description and not category.description:
                category.description = description
            return category
        category = DataCategory(name=name, description=description)
        self._categories[norm] = category
        return category

    def add_data_type(self, data_type: DataType) -> DataType:
        """Add a data type, creating its category if needed."""
        category = self.add_category(data_type.category)
        key = (_normalize(data_type.category), _normalize(data_type.name))
        if key in self._types_by_key:
            raise TaxonomyError(
                f"data type {data_type.name!r} already exists in category "
                f"{data_type.category!r}"
            )
        category.data_types.append(data_type)
        self._types_by_key[key] = data_type
        return data_type

    def remove_data_type(self, category: str, name: str) -> DataType:
        """Remove and return a data type (used by refinement/deprecation)."""
        key = (_normalize(category), _normalize(name))
        if key not in self._types_by_key:
            raise TaxonomyError(f"no data type {name!r} in category {category!r}")
        data_type = self._types_by_key.pop(key)
        cat = self._categories[_normalize(category)]
        cat.data_types = [dt for dt in cat.data_types if dt.name != data_type.name]
        return data_type

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def categories(self) -> List[DataCategory]:
        """All categories in insertion order."""
        return list(self._categories.values())

    def category_names(self) -> List[str]:
        """Canonical names of all categories."""
        return [category.name for category in self._categories.values()]

    def get_category(self, name: str) -> Optional[DataCategory]:
        """Look up a category by (case-insensitive) name."""
        return self._categories.get(_normalize(name))

    def has_category(self, name: str) -> bool:
        """Whether a category with this name exists."""
        return _normalize(name) in self._categories

    def get_type(self, category: str, name: str) -> Optional[DataType]:
        """Look up a data type by category and type name."""
        return self._types_by_key.get((_normalize(category), _normalize(name)))

    def find_type(self, name: str) -> Optional[DataType]:
        """Look up a data type by name alone (first match across categories)."""
        wanted = _normalize(name)
        for (_, type_norm), data_type in self._types_by_key.items():
            if type_norm == wanted:
                return data_type
        return None

    def iter_types(self) -> Iterator[DataType]:
        """Iterate over every data type in the taxonomy."""
        for category in self._categories.values():
            yield from category.data_types

    def all_types(self) -> List[DataType]:
        """All data types as a list."""
        return list(self.iter_types())

    def prohibited_types(self) -> List[DataType]:
        """Data types whose collection is prohibited by platform policy."""
        return [data_type for data_type in self.iter_types() if data_type.prohibited]

    def sensitive_types(self) -> List[DataType]:
        """Data types flagged as sensitive."""
        return [data_type for data_type in self.iter_types() if data_type.sensitive]

    @property
    def n_categories(self) -> int:
        """Number of categories."""
        return len(self._categories)

    @property
    def n_types(self) -> int:
        """Number of data types."""
        return len(self._types_by_key)

    @property
    def n_distinct_type_names(self) -> int:
        """Number of distinct data-type *names* across categories.

        The paper reports 145 data types; one name (``Participants``) appears
        in both the Event-information and Message categories, so the count of
        distinct names is what matches the paper's figure.
        """
        return len({type_norm for (_, type_norm) in self._types_by_key})

    def __len__(self) -> int:
        return self.n_types

    def __contains__(self, item: object) -> bool:
        if isinstance(item, DataType):
            return self.get_type(item.category, item.name) is not None
        if isinstance(item, tuple) and len(item) == 2:
            return self.get_type(str(item[0]), str(item[1])) is not None
        if isinstance(item, str):
            return self.find_type(item) is not None or self.has_category(item)
        return False

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Serialize the full taxonomy to a JSON-compatible dictionary."""
        return {
            "name": self.name,
            "categories": [category.to_dict() for category in self._categories.values()],
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize the taxonomy to JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "DataTaxonomy":
        """Deserialize a taxonomy from :meth:`to_dict` output."""
        taxonomy = cls(name=str(payload.get("name", "taxonomy")))
        for category_payload in payload.get("categories", ()):  # type: ignore[union-attr]
            category = taxonomy.add_category(
                str(category_payload["name"]),
                str(category_payload.get("description", "")),
            )
            del category  # categories are registered as a side effect
            for type_payload in category_payload.get("data_types", ()):
                taxonomy.add_data_type(DataType.from_dict(type_payload))
        return taxonomy

    @classmethod
    def from_json(cls, text: str) -> "DataTaxonomy":
        """Deserialize a taxonomy from JSON text."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_tuples(
        cls,
        tuples: Iterable[Tuple[str, str, str]],
        name: str = "taxonomy",
    ) -> "DataTaxonomy":
        """Build a taxonomy from ``(category, type, description)`` tuples."""
        taxonomy = cls(name=name)
        for category, type_name, description in tuples:
            taxonomy.add_data_type(
                DataType(name=type_name, category=category, description=description)
            )
        return taxonomy

    def copy(self) -> "DataTaxonomy":
        """Return a deep-ish copy of the taxonomy (types are immutable)."""
        clone = DataTaxonomy(name=self.name)
        for category in self._categories.values():
            clone.add_category(category.name, category.description)
            for data_type in category.data_types:
                clone.add_data_type(data_type)
        return clone

    def summary(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"{self.name}: {self.n_categories} categories, {self.n_types} data types"
        )


def category_type_pairs(taxonomy: DataTaxonomy) -> List[Tuple[str, str]]:
    """Return all ``(category, type)`` pairs of a taxonomy."""
    return [data_type.key for data_type in taxonomy.iter_types()]


def merge_taxonomies(base: DataTaxonomy, extension: DataTaxonomy) -> DataTaxonomy:
    """Merge two taxonomies, preferring ``base`` entries on conflicts."""
    merged = base.copy()
    for data_type in extension.iter_types():
        if merged.get_type(data_type.category, data_type.name) is None:
            merged.add_data_type(data_type)
    return merged
