"""The final built-in data taxonomy (Table 8 of the paper).

The taxonomy spans 24 categories and 145 distinct data types.  Each data type
carries a natural-language description (as in the paper's
``<category, data type, description>`` tuples), a set of indicator keywords
used by the simulated LLM's knowledge base, and a handful of phrasing
templates used by the synthetic ecosystem generator to emit realistic Action
parameter descriptions.

``PROHIBITED_CATEGORIES`` reflects OpenAI's usage policies as discussed in
Section 4.2.2: collection of security credentials (passwords, API keys, access
tokens, cryptographic keys, verification codes) is explicitly prohibited.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.taxonomy.schema import DataTaxonomy, DataType, OTHER_CATEGORY, OTHER_TYPE

#: Categories whose collection is prohibited by the platform's usage policies.
PROHIBITED_CATEGORIES: Tuple[str, ...] = ("Security credentials",)

#: Categories considered sensitive under common data-protection regulation.
SENSITIVE_CATEGORIES: Tuple[str, ...] = (
    "Personal information",
    "Health information",
    "Finance information",
    "Security credentials",
    "Legal and law enforcement data",
)


def _entry(
    name: str,
    description: str,
    keywords: Sequence[str],
    phrasings: Sequence[str] = (),
    sensitive: bool = False,
    prohibited: bool = False,
) -> Dict[str, object]:
    """Helper to build a data-type record for ``_TAXONOMY_DATA``."""
    return {
        "name": name,
        "description": description,
        "keywords": tuple(keywords),
        "phrasings": tuple(phrasings),
        "sensitive": sensitive,
        "prohibited": prohibited,
    }


# ---------------------------------------------------------------------------
# Category descriptions
# ---------------------------------------------------------------------------
CATEGORY_DESCRIPTIONS: Dict[str, str] = {
    "Location": "Information about a physical place, area, or position.",
    "Time": "Temporal information such as dates, times, and periods.",
    "Event information": "Details about calendar events, meetings, and reminders.",
    "Personal information": "Information that identifies or describes a person.",
    "Finance information": "Information about a person's financial situation.",
    "Health information": "Medical, health, and fitness related information.",
    "App usage data": "Data about how the app or service is used and configured.",
    "App metadata": "Metadata describing the app, GPT, or integrated services.",
    "Files and documents": "Information about files, documents, and their contents.",
    "Web and network data": "Web resources, network identifiers, and browsing data.",
    "Message": "User communications such as chat messages and emails.",
    "Query": "User search queries, prompts, and query filters.",
    "Identifier": "Opaque identifiers for users, devices, accounts, and resources.",
    "Market data": "Financial-market data such as tickers and exchange information.",
    "Weather information": "Weather observation and forecast parameters.",
    "Vehicle information": "Information describing a vehicle.",
    "Security credentials": "Secrets used for authentication and authorization.",
    "Food and nutrition information": "Dietary, nutrition, and recipe information.",
    "Real estate data": "Information about real-estate properties.",
    "E-commerce data": "Shopping, product, and transaction information.",
    "Gaming data": "In-game and player information.",
    "Legal and law enforcement data": "Legal matters and law-enforcement information.",
    "Travel information": "Trip and passenger related information.",
    "Sports information": "Sports teams, leagues, and statistics.",
    OTHER_CATEGORY: "Data that does not match any taxonomy category.",
}


# ---------------------------------------------------------------------------
# Full taxonomy: 24 categories, 145 data types (Table 8)
# ---------------------------------------------------------------------------
_TAXONOMY_DATA: Dict[str, List[Dict[str, object]]] = {
    "Location": [
        _entry(
            "Altitude",
            "Height of a location above sea level.",
            ["altitude", "elevation", "above sea level", "height above"],
            [
                "Altitude of the location in meters",
                "The elevation above sea level for the point of interest",
            ],
        ),
        _entry(
            "Exact address",
            "A full street address identifying a specific building or unit.",
            ["full address", "street address", "exact address", "address line", "home address"],
            [
                "The full street address of the user",
                "Address of the delivery destination, including street and number",
                "Complete address where the service should be performed",
            ],
            sensitive=True,
        ),
        _entry(
            "City",
            "An urban area defined by administrative boundaries.",
            ["city", "town", "municipality", "commune", "ville"],
            [
                "The city to search in",
                "Name of the city for the weather lookup",
                "nom de la commune à rechercher (facultatif)",
                "city, state (Required)",
            ],
        ),
        _entry(
            "Street",
            "A street or road name within a city.",
            ["street", "road name", "avenue", "boulevard"],
            ["Street name for the address lookup", "The road on which the property is located"],
        ),
        _entry(
            "State/province",
            "A first-level administrative division such as a state or province.",
            ["state", "province", "prefecture", "federal state", "administrative region"],
            ["State or province of the search area", "Two-letter state code for the listing"],
        ),
        _entry(
            "Country",
            "A country or sovereign territory.",
            ["country", "nation", "country code", "iso country"],
            ["Country of the user", "ISO country code to filter results by"],
        ),
        _entry(
            "Postcode",
            "A postal or ZIP code used for mail routing.",
            ["postcode", "zip code", "postal code", "zip"],
            ["ZIP code of the search area", "Postal code for the delivery address"],
            sensitive=True,
        ),
        _entry(
            "Place of interest",
            "A named place such as a landmark, venue, or business location.",
            ["place of interest", "landmark", "venue", "point of interest", "poi", "place name"],
            ["Name of the place or landmark to look up", "The venue where the event takes place"],
        ),
        _entry(
            "GPS coordinates",
            "Latitude and longitude coordinates of a location.",
            ["gps", "latitude", "longitude", "coordinates", "lat", "lng", "geolocation"],
            [
                "Latitude of the location",
                "Longitude coordinate for the search center",
                "GPS coordinates of the user's current position",
            ],
            sensitive=True,
        ),
        _entry(
            "Relative location",
            "A location expressed relative to another place (e.g. nearby, within a radius).",
            ["nearby", "radius", "within", "distance from", "close to", "relative location"],
            ["Search radius in kilometers around the user", "Places near the specified point"],
        ),
        _entry(
            "Route",
            "A path or itinerary between two or more locations.",
            ["route", "itinerary", "path", "directions", "waypoints"],
            ["The route to compute directions for", "Ordered list of waypoints for the trip"],
        ),
        _entry(
            "General location",
            "A coarse-grained location such as a neighbourhood or metropolitan area.",
            ["general location", "area", "neighbourhood", "neighborhood", "metro area", "geographical location"],
            [
                "the geographical location for the search",
                "General area where the user is looking for services",
            ],
        ),
        _entry(
            "Origin/destination",
            "The start or end point of a journey.",
            ["origin", "destination", "departure airport", "arrival city", "from location", "to location"],
            [
                "Departure city or airport code",
                "destination, departDate, returnDate for the flight search",
                "Destination of the trip",
            ],
        ),
        _entry(
            "Region",
            "A large geographic region spanning multiple administrative areas.",
            ["region", "continent", "territory", "geographic region"],
            ["Region to restrict the search to", "The continent or world region of interest"],
        ),
    ],
    "Time": [
        _entry(
            "Year",
            "A calendar year.",
            ["year", "calendar year", "yyyy"],
            ["Year of the report", "The year the movie was released"],
        ),
        _entry(
            "Time period",
            "A span of time with a start and an end.",
            ["time period", "date range", "between dates", "start and end", "duration", "period"],
            ["The date range to query statistics for", "Start and end dates of the booking period"],
        ),
        _entry(
            "Season",
            "A season of the year such as summer or winter.",
            ["season", "summer", "winter", "spring", "autumn", "fall season"],
            ["The season to plan the trip for"],
        ),
        _entry(
            "Month",
            "A calendar month.",
            ["month", "calendar month"],
            ["Month of the query, 1-12", "The month for which to fetch the calendar"],
        ),
        _entry(
            "Week",
            "A calendar week or week number.",
            ["week", "week number", "iso week"],
            ["ISO week number to fetch the schedule for"],
        ),
        _entry(
            "Time of day",
            "A clock time or part of the day.",
            ["time of day", "hour", "clock time", "morning", "evening", "am/pm"],
            ["Preferred time of day for the appointment", "Hour of the day in 24h format"],
        ),
        _entry(
            "Date",
            "A specific calendar date.",
            ["date", "calendar date", "departure date", "check-in date", "birth date excluded"],
            ["Date of the reservation in YYYY-MM-DD", "The departure date for the flight"],
        ),
        _entry(
            "Relative time",
            "Time expressed relative to now (e.g. yesterday, next week).",
            ["relative time", "yesterday", "tomorrow", "next week", "ago", "last 7 days"],
            ["How many days back to include in the report"],
        ),
        _entry(
            "Timezone",
            "A timezone identifier or UTC offset.",
            ["timezone", "time zone", "utc offset", "tz"],
            ["Timezone of the user, e.g. America/Chicago", "UTC offset for displaying times"],
        ),
        _entry(
            "Frequency",
            "How often something occurs or should recur.",
            ["frequency", "recurrence", "how often", "interval", "repeat"],
            ["How often the reminder should repeat"],
        ),
        _entry(
            "Timestamp",
            "A precise machine-readable point in time.",
            ["timestamp", "unix timestamp", "epoch", "iso 8601", "datetime"],
            [
                "End time of the query as unix timestamp. If only count is given, defaults to now.",
                "Timestamp of the request in ISO 8601 format",
            ],
        ),
    ],
    "Event information": [
        _entry(
            "Event name",
            "The title of a calendar event or meeting.",
            ["event name", "event title", "meeting name", "appointment title"],
            ["Title of the event to create", "Name of the meeting to schedule"],
        ),
        _entry(
            "Event description",
            "A free-text description of an event.",
            ["event description", "event details", "agenda", "meeting description"],
            ["Detailed description of the event", "Agenda for the meeting"],
        ),
        _entry(
            "Participants",
            "People attending or invited to an event.",
            ["participants", "attendees", "invitees", "guests"],
            ["List of attendee email addresses", "Participants to invite to the meeting"],
            sensitive=True,
        ),
        _entry(
            "Reminders",
            "Reminder or notification settings for an event or task.",
            ["reminder", "notification time", "alert before", "remind me"],
            ["When to send the reminder before the event"],
        ),
    ],
    "Personal information": [
        _entry(
            "Relationship",
            "Information about a person's relationships (family, partner, friends).",
            ["relationship", "spouse", "partner", "family members", "marital status"],
            ["The user's relationship status", "Names of family members to include"],
            sensitive=True,
        ),
        _entry(
            "Age",
            "A person's age or age range.",
            ["age", "years old", "age range", "age group"],
            ["Age of the user", "The age group the content should target"],
            sensitive=True,
        ),
        _entry(
            "Birthday",
            "A person's date of birth.",
            ["birthday", "date of birth", "dob", "birth date"],
            ["User's date of birth in YYYY-MM-DD"],
            sensitive=True,
        ),
        _entry(
            "Race and ethnicity",
            "A person's race or ethnic background.",
            ["race", "ethnicity", "ethnic background"],
            ["Ethnicity of the applicant (optional)"],
            sensitive=True,
        ),
        _entry(
            "Sexual orientation",
            "A person's sexual orientation.",
            ["sexual orientation", "orientation"],
            ["Sexual orientation, if the user wishes to share it"],
            sensitive=True,
        ),
        _entry(
            "Name",
            "A person's full name, first name, or last name.",
            ["name", "first name", "last name", "full name", "surname", "given name"],
            [
                "The user's full name",
                "First and last name for the reservation",
                "Name of the person to add to the contact list",
            ],
            sensitive=True,
        ),
        _entry(
            "Gender",
            "A person's gender or sex.",
            ["gender", "sex", "male or female"],
            ["Gender of the user (optional)", "Sex of the patient"],
            sensitive=True,
        ),
        _entry(
            "Education",
            "Educational background such as degrees and schools.",
            ["education", "degree", "school", "university", "gpa", "academic"],
            ["Highest degree obtained by the user", "University the user attended"],
            sensitive=True,
        ),
        _entry(
            "Work",
            "Employment information such as employer, job title, and work history.",
            ["work", "job title", "employer", "occupation", "company you work for", "work experience", "resume"],
            ["Current job title of the user", "Work experience to include in the resume"],
            sensitive=True,
        ),
        _entry(
            "Email address",
            "A personal email address.",
            ["email", "email address", "e-mail"],
            [
                "Email address of the user",
                "The email to send the report to",
                "Contact email for the booking confirmation",
            ],
            sensitive=True,
        ),
        _entry(
            "Phone number",
            "A personal phone number.",
            ["phone", "phone number", "mobile number", "telephone"],
            ["Phone number for the contact", "The user's mobile number including country code"],
            sensitive=True,
        ),
        _entry(
            "Social media handle",
            "A username or handle on a social media platform.",
            ["social media handle", "twitter handle", "instagram username", "linkedin profile", "social profile"],
            ["The user's Twitter handle", "LinkedIn profile URL of the candidate"],
            sensitive=True,
        ),
        _entry(
            "Mailing address",
            "A postal address used for correspondence or delivery.",
            ["mailing address", "shipping address", "billing address", "postal address"],
            ["Mailing address for the shipment", "Billing address associated with the payment"],
            sensitive=True,
        ),
        _entry(
            "Nickname",
            "An informal name or alias for a person.",
            ["nickname", "alias", "display name", "preferred name"],
            ["Preferred display name of the user"],
        ),
    ],
    "Finance information": [
        _entry(
            "Purchase history",
            "Records of past purchases and orders.",
            ["purchase history", "order history", "past purchases", "transaction history"],
            ["The user's recent purchase history", "Previous orders to base recommendations on"],
            sensitive=True,
        ),
        _entry(
            "Insurance",
            "Insurance coverage and policy information.",
            ["insurance", "policy number", "coverage", "insurer"],
            ["Insurance policy number", "Type of insurance coverage held by the user"],
            sensitive=True,
        ),
        _entry(
            "Property ownership",
            "Information about properties a person owns.",
            ["property ownership", "home owner", "owned properties", "deed"],
            ["Whether the user owns or rents their home"],
            sensitive=True,
        ),
        _entry(
            "Loans",
            "Loan and mortgage details such as amounts and terms.",
            ["loan", "mortgage", "loan amount", "interest rate", "down payment", "principal"],
            [
                "Loan amount requested by the user",
                "The value of the home and the down payment for the mortgage calculation",
            ],
            sensitive=True,
        ),
        _entry(
            "Income information",
            "A person's income, salary, or earnings.",
            ["income", "salary", "annual earnings", "wage", "household income"],
            ["Annual income of the applicant", "Monthly salary before tax"],
            sensitive=True,
        ),
        _entry(
            "Investment",
            "Investment holdings such as portfolios and assets.",
            ["investment", "portfolio", "holdings", "assets", "stocks owned"],
            ["Current investment portfolio of the user"],
            sensitive=True,
        ),
    ],
    "Health information": [
        _entry(
            "Medical record",
            "Medical conditions, diagnoses, medications, and clinical documents.",
            ["medical record", "diagnosis", "symptom", "medication", "x-ray", "blood sugar", "medical history", "patient"],
            [
                "Symptoms reported by the patient",
                "Base64 encoded X-ray image to analyze",
                "Current medications the user is taking",
            ],
            sensitive=True,
        ),
        _entry(
            "Fitness information",
            "Fitness and activity data such as workouts and fitness level.",
            ["fitness", "workout", "exercise", "steps", "fitness level", "heart rate"],
            ["User's level of fitness", "Weekly workout routine of the user"],
            sensitive=True,
        ),
    ],
    "App usage data": [
        _entry(
            "Status",
            "The status of an operation, job, or resource within the app.",
            ["status", "state of the task", "job status", "completion status"],
            ["Status of the task to filter by", "The current state of the order"],
        ),
        _entry(
            "Subscription information",
            "Details about a user's subscription or plan.",
            ["subscription", "plan", "tier", "premium", "membership"],
            ["The subscription tier of the user", "Membership plan to upgrade to"],
        ),
        _entry(
            "Diagnostics",
            "Diagnostic, crash, or error data about the app.",
            ["diagnostics", "error log", "crash report", "debug info", "stack trace"],
            ["Error message encountered by the user", "Diagnostic logs to attach to the ticket"],
        ),
        _entry(
            "Current session setting",
            "Configuration options for the current session or request.",
            ["setting", "option", "configuration", "preference flag", "format of the response", "language setting",
             "sort order", "page size", "limit", "boolean flag"],
            [
                "The format of the response.",
                "whether to use short URLs, must be true",
                "Maximum number of results to return",
                "Language in which results should be returned",
                "Sort order for the results (asc or desc)",
            ],
        ),
        _entry(
            "Response fields",
            "Which fields or sections should be included in the response.",
            ["response fields", "fields to include", "include details", "output fields", "columns to return"],
            ["Comma separated list of fields to include in the response"],
        ),
        _entry(
            "User interaction data",
            "Records of the user's interactions with the app or conversation.",
            ["interaction", "conversation context", "chat history", "user input", "session context", "usage analytics",
             "click", "conversation_context", "context of the conversation"],
            [
                "The full conversation context so far",
                "Recent user interactions to personalize results",
                "conversation_context: the last user messages",
            ],
            sensitive=True,
        ),
    ],
    "App metadata": [
        _entry(
            "Function description",
            "A description of the app's or GPT's functionality.",
            ["function description", "gpt description", "capability description", "what the assistant does"],
            ["Description of the GPT calling this action", "gpt_description: what this assistant does"],
        ),
        _entry(
            "Name or version",
            "The name or version of the app, GPT, or tool.",
            ["app name", "gpt name", "gpt_name", "version", "tool name", "plugin name"],
            ["Name of the GPT making the request", "Version of the client application"],
        ),
        _entry(
            "Publisher",
            "The developer or publisher of the app.",
            ["publisher", "developer name", "vendor", "author of the app"],
            ["Publisher of the application"],
        ),
        _entry(
            "Integrated applications",
            "Which external applications or services are connected.",
            ["integrated applications", "connected apps", "zapier action", "integration name", "connected service"],
            [
                "The Zapier action to execute",
                "Name of the connected application to run the automation on",
                "List of integrations enabled for this account",
            ],
        ),
    ],
    "Files and documents": [
        _entry(
            "File path",
            "A filesystem path to a file or directory.",
            ["file path", "directory", "folder path", "filepath"],
            ["Path of the file to read", "Directory in which to create the document"],
        ),
        _entry(
            "File name",
            "The name of a file.",
            ["file name", "filename", "document name"],
            ["Name of the file to create", "The filename for the generated PDF"],
        ),
        _entry(
            "File hash",
            "A cryptographic hash or checksum of a file.",
            ["file hash", "checksum", "sha256", "md5"],
            ["SHA-256 hash of the uploaded file"],
        ),
        _entry(
            "File type",
            "The format or MIME type of a file.",
            ["file type", "mime type", "format of the file", "extension"],
            ["MIME type of the document", "Desired output file format (pdf, docx, ...)"],
        ),
        _entry(
            "File description",
            "A free-text description of a file or document.",
            ["file description", "document description", "summary of the document"],
            ["Short description of the attached document"],
        ),
        _entry(
            "File size",
            "The size of a file in bytes or other units.",
            ["file size", "bytes", "size in mb"],
            ["Maximum file size to accept in megabytes"],
        ),
        _entry(
            "File content",
            "The actual contents of a file or document.",
            ["file content", "document text", "contents of the file", "document body", "text of the document",
             "script to be produced", "content provided by the user"],
            [
                "The text content of the document to analyze",
                "Script to be produced",
                "Content provided by the user to store in the knowledge base",
            ],
            sensitive=True,
        ),
        _entry(
            "Source",
            "The source or origin a file/document was obtained from.",
            ["source of the file", "origin", "imported from", "source url of the document"],
            ["Where the document was originally obtained from"],
        ),
        _entry(
            "File list",
            "A list of files or documents.",
            ["file list", "list of files", "documents to process", "attachments"],
            ["List of files to merge into a single PDF"],
        ),
    ],
    "Web and network data": [
        _entry(
            "URLs",
            "A web address (URL) of a page or resource.",
            ["url", "link", "web address", "webpage link", "href"],
            [
                "The URL of the page to summarize",
                "Link to the article the user wants to read",
                "URL of the video to transcribe",
            ],
        ),
        _entry(
            "IP addresses",
            "An IP address of a user or server.",
            ["ip address", "ipv4", "ipv6", "client ip"],
            ["IP address of the client making the request"],
            sensitive=True,
        ),
        _entry(
            "Domain names",
            "A domain or hostname.",
            ["domain", "hostname", "domain name", "website domain"],
            ["Domain name to run the SEO audit on", "The website domain to check availability for"],
        ),
        _entry(
            "Related links",
            "Links related to a resource, such as references or citations.",
            ["related links", "references", "citations", "backlinks"],
            ["Related links to include in the report"],
        ),
        _entry(
            "Connection logs",
            "Network connection or access logs.",
            ["connection log", "access log", "request log", "network log"],
            ["Recent access logs to analyze for anomalies"],
            sensitive=True,
        ),
        _entry(
            "Blockchain data",
            "Blockchain addresses, transactions, and on-chain data.",
            ["blockchain", "wallet address", "transaction hash", "smart contract", "ethereum", "bitcoin"],
            ["Wallet address to look up", "Transaction hash on the Ethereum network"],
        ),
        _entry(
            "Cookies",
            "HTTP cookies or similar client-side identifiers.",
            ["cookie", "session cookie", "tracking cookie"],
            ["Session cookie to authenticate the request"],
            sensitive=True,
        ),
        _entry(
            "Web page content",
            "The contents of a web page.",
            ["web page content", "page html", "page text", "scraped content"],
            ["HTML content of the page to process"],
        ),
        _entry(
            "User-agent strings",
            "The browser or client user-agent string.",
            ["user-agent", "user agent", "browser string"],
            ["User agent of the requesting browser"],
        ),
        _entry(
            "Database information",
            "Database connection details, schemas, or query targets.",
            ["database", "db config", "dbconfig", "connection string", "schema", "sql table"],
            ["Database connection configuration", "Name of the table to run the query against"],
            sensitive=True,
        ),
        _entry(
            "Multimedia data",
            "Images, audio, video, or other media content.",
            ["image", "photo", "audio", "video", "media file", "picture", "screenshot"],
            ["Image to run the analysis on", "URL or base64 of the photo to edit"],
        ),
    ],
    "Message": [
        _entry(
            "Text messages",
            "Chat or instant messages written by the user.",
            ["text message", "chat message", "message body", "message to send", "sms"],
            [
                "The message to post to the channel",
                "Text of the message the user wants to send",
            ],
            sensitive=True,
        ),
        _entry(
            "Emails",
            "Email messages including subject and body.",
            ["email message", "email body", "email subject", "draft email"],
            ["Subject and body of the email to send", "The email thread to summarize"],
            sensitive=True,
        ),
        _entry(
            "Participants",
            "The people involved in a conversation or message thread.",
            ["recipients", "message participants", "conversation members", "to address"],
            ["Recipients of the message"],
            sensitive=True,
        ),
        _entry(
            "User feedback",
            "Feedback, reviews, or ratings provided by the user.",
            ["feedback", "review", "rating", "comment from the user", "suggestion"],
            ["Feedback text provided by the user", "Star rating between 1 and 5"],
        ),
    ],
    "Query": [
        _entry(
            "Query filter",
            "Filters, constraints, or parameters refining a query.",
            ["filter", "query filter", "constraint", "criteria", "facet", "keyword filter"],
            [
                "Filters to apply to the search, such as price range",
                "Category filter for the query",
            ],
        ),
        _entry(
            "Generative prompt",
            "A prompt used to generate content (text, image, code).",
            ["prompt", "generation prompt", "image prompt", "instructions for generation", "generative prompt"],
            [
                "The prompt describing the image to generate",
                "Instructions for the text to be written",
            ],
        ),
        _entry(
            "Search query",
            "A raw or processed search query issued by the user.",
            ["search query", "query string", "search term", "keywords", "what the user is searching", "search"],
            [
                "The search query from the user",
                "Keywords to search for",
                "query: the user's question rephrased for search",
            ],
            sensitive=True,
        ),
    ],
    "Identifier": [
        _entry(
            "Vehicle identification number (VIN)",
            "A vehicle identification number.",
            ["vin", "vehicle identification number"],
            ["VIN of the car to decode"],
        ),
        _entry(
            "License plate number",
            "A vehicle license plate number.",
            ["license plate", "plate number", "registration plate"],
            ["License plate to look up"],
            sensitive=True,
        ),
        _entry(
            "Device IDs",
            "Identifiers of a user's device.",
            ["device id", "device identifier", "imei", "advertising id"],
            ["Unique identifier of the device"],
            sensitive=True,
        ),
        _entry(
            "Resource IDs",
            "Identifiers of resources such as documents, tasks, or objects.",
            ["resource id", "object id", "task id", "document id", "item id", "record id", "id of the"],
            [
                "ID of the task to update",
                "Identifier of the document to retrieve",
                "The id of the resource to delete",
            ],
        ),
        _entry(
            "Project and issue identifiers",
            "Identifiers of projects, issues, or tickets in tracking systems.",
            ["project id", "issue key", "ticket id", "jira key", "repository name"],
            ["Jira issue key, e.g. PROJ-123", "Repository and issue number"],
        ),
        _entry(
            "Account identifiers",
            "Identifiers of user accounts such as account numbers.",
            ["account id", "account number", "customer number"],
            ["Account number of the customer"],
            sensitive=True,
        ),
        _entry(
            "Media identifiers",
            "Identifiers of media items such as ISBNs or track IDs.",
            ["isbn", "track id", "movie id", "media id", "imdb id"],
            ["ISBN of the book", "Spotify track id to queue"],
        ),
        _entry(
            "Geographical area codes",
            "Codes identifying geographic areas, e.g. airport or area codes.",
            ["airport code", "iata", "area code", "fips code", "geonames id"],
            ["IATA code of the departure airport"],
        ),
        _entry(
            "Financial instrument identifiers",
            "Identifiers of financial instruments such as ISIN or CUSIP.",
            ["isin", "cusip", "instrument id", "contract id"],
            ["ISIN of the security to quote"],
        ),
        _entry(
            "Product and item identifiers",
            "Identifiers of products or items such as SKU or ASIN.",
            ["sku", "asin", "product id", "item id", "barcode", "upc"],
            ["SKU of the product", "Barcode value scanned by the user"],
        ),
        _entry(
            "Ticket and order identifiers",
            "Identifiers of orders, bookings, or tickets.",
            ["order id", "booking reference", "ticket number", "confirmation number", "tracking number"],
            ["Order number to track", "Booking reference for the reservation"],
        ),
        _entry(
            "Organization identifiers",
            "Identifiers of organizations such as company or VAT numbers.",
            ["organization id", "company number", "vat number", "ein", "duns"],
            ["Company registration number"],
        ),
        _entry(
            "User identifiers",
            "Identifiers of user accounts such as usernames or user IDs.",
            ["user id", "username", "user identifier", "login name", "handle", "member id"],
            [
                "Username of the account",
                "The user id to fetch the profile for",
                "Unique identifier of the user",
            ],
            sensitive=True,
        ),
    ],
    "Market data": [
        _entry(
            "Ticker symbol",
            "A stock or asset ticker symbol.",
            ["ticker", "stock symbol", "ticker symbol"],
            ["Ticker symbol of the stock, e.g. AAPL"],
        ),
        _entry(
            "Company name",
            "The name of a company in a financial-market context.",
            ["company name", "issuer", "corporation name"],
            ["Name of the company to fetch financials for"],
        ),
        _entry(
            "Exchange",
            "A stock exchange or trading venue.",
            ["exchange", "nasdaq", "nyse", "trading venue"],
            ["Exchange on which the security is listed"],
        ),
        _entry(
            "List of ticker symbols",
            "Multiple ticker symbols, e.g. a watchlist.",
            ["list of tickers", "ticker symbols", "watchlist", "symbols list"],
            ["Comma separated list of ticker symbols to compare"],
        ),
        _entry(
            "Currency information",
            "Currencies and exchange-rate parameters.",
            ["currency", "exchange rate", "fx pair", "currency code"],
            ["Currency code to convert from", "The FX pair to quote"],
        ),
        _entry(
            "Financial ratios and metrics",
            "Financial metrics such as P/E ratio, revenue, or EBITDA.",
            ["p/e ratio", "financial ratio", "revenue", "ebitda", "market cap", "metrics to retrieve"],
            ["Financial metrics to include in the comparison"],
        ),
    ],
    "Weather information": [
        _entry(
            "Weather data parameters",
            "Which weather variables to retrieve, e.g. temperature or wind.",
            ["weather", "temperature", "wind speed", "humidity", "precipitation", "forecast parameters"],
            ["Weather variables to include in the forecast", "Units for the temperature (metric or imperial)"],
        ),
        _entry(
            "Weather data timeframe",
            "The time range of the requested weather data.",
            ["forecast days", "weather timeframe", "hourly forecast", "daily forecast"],
            ["Number of forecast days to return"],
        ),
    ],
    "Vehicle information": [
        _entry(
            "Vehicle make",
            "The manufacturer of a vehicle.",
            ["vehicle make", "car make", "manufacturer of the car"],
            ["Make of the car, e.g. Toyota"],
        ),
        _entry(
            "Vehicle model",
            "The model of a vehicle.",
            ["vehicle model", "car model"],
            ["Model of the vehicle, e.g. Corolla"],
        ),
        _entry(
            "Vehicle type",
            "The type or body style of a vehicle.",
            ["vehicle type", "body style", "suv", "sedan", "truck type"],
            ["Type of vehicle the user is looking for"],
        ),
        _entry(
            "Vehicle color",
            "The color of a vehicle.",
            ["vehicle color", "car color"],
            ["Preferred color of the car"],
        ),
        _entry(
            "Vehicle mileage",
            "The mileage or odometer reading of a vehicle.",
            ["mileage", "odometer", "kilometers driven"],
            ["Current mileage of the vehicle"],
        ),
        _entry(
            "Vehicle fuel type",
            "The fuel or energy type of a vehicle.",
            ["fuel type", "electric vehicle", "diesel", "petrol", "hybrid"],
            ["Fuel type of the car (petrol, diesel, electric)"],
        ),
        _entry(
            "Vehicle specifications",
            "Technical specifications of a vehicle.",
            ["vehicle specifications", "engine size", "horsepower", "trim level"],
            ["Engine and trim specifications to filter by"],
        ),
    ],
    "Security credentials": [
        _entry(
            "API key",
            "A secret API key used to authenticate with a service.",
            ["api key", "apikey", "api token", "secret key", "client secret"],
            [
                "Your API key for the service",
                "API key used to authenticate requests",
            ],
            sensitive=True,
            prohibited=True,
        ),
        _entry(
            "Password",
            "A user's password.",
            ["password", "passcode", "login password"],
            ["Password of the user's account", "The password to log in with"],
            sensitive=True,
            prohibited=True,
        ),
        _entry(
            "Access tokens",
            "OAuth or session access tokens.",
            ["access token", "bearer token", "oauth token", "refresh token", "session token", "authentication token",
             "auth token"],
            ["OAuth access token for the account", "Bearer token to authorize the request",
             "user authentication token"],
            sensitive=True,
            prohibited=True,
        ),
        _entry(
            "Cryptographic key",
            "Cryptographic keys such as private keys or signing keys.",
            ["private key", "cryptographic key", "signing key", "ssh key", "pgp key"],
            ["Private key used to sign the transaction"],
            sensitive=True,
            prohibited=True,
        ),
        _entry(
            "Verification code",
            "One-time passwords and verification codes.",
            ["verification code", "otp", "one-time password", "2fa code", "mfa code"],
            ["The 6-digit verification code sent to the user"],
            sensitive=True,
            prohibited=True,
        ),
    ],
    "Food and nutrition information": [
        _entry(
            "Nutrients",
            "Nutritional values such as calories and macros.",
            ["nutrients", "calories", "protein", "carbs", "macros", "nutrition facts"],
            ["Target calories per day", "Macronutrient breakdown the user wants"],
            sensitive=True,
        ),
        _entry(
            "Recipes",
            "Recipes, ingredients, and cooking instructions.",
            ["recipe", "ingredients", "cooking instructions", "dish"],
            ["Ingredients the user has available", "The dish to find a recipe for"],
        ),
        _entry(
            "Food type filters",
            "Dietary restrictions and food-type filters.",
            ["dietary restrictions", "vegan", "gluten free", "low-carb", "food type filter", "cuisine"],
            ["Dietary restrictions to respect, e.g. vegetarian", "Cuisine type to filter recipes by"],
            sensitive=True,
        ),
        _entry(
            "Meal planning",
            "Meal plans and meal scheduling preferences.",
            ["meal plan", "meal planning", "weekly menu", "meal prep"],
            ["Number of meals per day to plan"],
        ),
    ],
    "Real estate data": [
        _entry(
            "Property details",
            "Details about a real-estate property such as size and price.",
            ["property details", "square feet", "bedrooms", "listing price", "property type"],
            ["Number of bedrooms required", "Maximum listing price for the search"],
        ),
        _entry(
            "Amenities",
            "Amenities of a property such as pool or parking.",
            ["amenities", "pool", "parking", "gym", "balcony"],
            ["Amenities the property must include"],
        ),
        _entry(
            "Furnishing status",
            "Whether a property is furnished or unfurnished.",
            ["furnished", "unfurnished", "furnishing status"],
            ["Whether the apartment should be furnished"],
        ),
    ],
    "E-commerce data": [
        _entry(
            "Parcel dimensions",
            "Dimensions and weight of a parcel or shipment.",
            ["parcel dimensions", "package weight", "shipment size", "length width height"],
            ["Weight and dimensions of the package to ship"],
        ),
        _entry(
            "Product details",
            "Details about a product such as name, brand, or specification.",
            ["product details", "product name", "brand", "product specification", "product description"],
            ["Name of the product to look up", "The product the user wants to compare prices for"],
        ),
        _entry(
            "Company information",
            "Information about a business such as its profile or services.",
            ["company information", "business profile", "company description", "about the company"],
            ["Description of the company to research", "Company information for the sales briefing"],
        ),
        _entry(
            "Business metrics",
            "Business KPIs such as sales figures and conversion rates.",
            ["business metrics", "kpi", "conversion rate", "sales figures", "revenue metrics"],
            ["Sales metrics to include in the dashboard"],
        ),
        _entry(
            "E-commerce transaction details",
            "Details of a shopping transaction such as cart contents and totals.",
            ["cart", "checkout", "order total", "transaction details", "payment amount"],
            ["Items in the user's shopping cart", "Total amount of the order"],
            sensitive=True,
        ),
    ],
    "Gaming data": [
        _entry(
            "In-game data",
            "In-game state such as inventory, levels, and progress.",
            ["in-game", "inventory", "game level", "quest", "game state"],
            ["Current level and inventory of the player"],
        ),
        _entry(
            "Player statistics",
            "Player performance statistics and rankings.",
            ["player statistics", "k/d ratio", "rank", "win rate", "leaderboard"],
            ["The player's ranked statistics to analyze"],
        ),
    ],
    "Legal and law enforcement data": [
        _entry(
            "Crime details",
            "Details about a crime or incident.",
            ["crime", "incident report", "offense", "police report"],
            ["Description of the incident to report"],
            sensitive=True,
        ),
        _entry(
            "Case outcomes and evidence",
            "Court case outcomes, filings, and evidence.",
            ["case outcome", "evidence", "court filing", "verdict", "docket"],
            ["Docket number of the case to retrieve"],
            sensitive=True,
        ),
        _entry(
            "Legal provisions",
            "Statutes, regulations, and legal provisions.",
            ["statute", "regulation", "legal provision", "article of law", "clause"],
            ["The statute or regulation to summarize"],
        ),
        _entry(
            "Legal inquiries",
            "Legal questions or matters raised by the user.",
            ["legal inquiry", "legal question", "legal matter", "contract question"],
            ["The legal question the user needs help with"],
            sensitive=True,
        ),
    ],
    "Travel information": [
        _entry(
            "Baggage information",
            "Baggage allowances and luggage details.",
            ["baggage", "luggage", "checked bag", "carry-on"],
            ["Number of checked bags for the flight"],
        ),
        _entry(
            "Cabin preferences",
            "Cabin class and seating preferences.",
            ["cabin class", "economy", "business class", "seat preference"],
            ["Preferred cabin class for the flight"],
        ),
        _entry(
            "Passenger counts",
            "The number and type of passengers.",
            ["passenger count", "number of travelers", "adults and children", "travellers"],
            ["Number of adults and children traveling"],
        ),
    ],
    "Sports information": [
        _entry(
            "Markets",
            "Betting or prediction markets for sports events.",
            ["betting market", "odds", "sports market", "moneyline", "spread"],
            ["The betting market to fetch odds for"],
        ),
        _entry(
            "Teams",
            "Sports teams.",
            ["team", "sports team", "club", "roster"],
            ["Name of the team to get fixtures for"],
        ),
        _entry(
            "Leagues",
            "Sports leagues and competitions.",
            ["league", "competition", "tournament", "premier league", "nba"],
            ["League to list upcoming matches for"],
        ),
        _entry(
            "Statistics",
            "Sports statistics such as scores and player stats.",
            ["sports statistics", "score", "standings", "player stats", "match statistics"],
            ["Statistics to retrieve for the match"],
        ),
    ],
}


def taxonomy_records() -> Dict[str, List[Dict[str, object]]]:
    """Return the raw built-in taxonomy records keyed by category name."""
    return {category: list(entries) for category, entries in _TAXONOMY_DATA.items()}


def load_builtin_taxonomy(include_other: bool = True) -> DataTaxonomy:
    """Build and return the full built-in taxonomy (24 categories, 145 types).

    Parameters
    ----------
    include_other:
        If true (the default) an ``Other``/``Other`` fallback entry is added so
        that classifiers can emit the fallback label described in
        Section 3.2.4.
    """
    taxonomy = DataTaxonomy(name="gpt-data-exposure-final")
    for category_name, entries in _TAXONOMY_DATA.items():
        taxonomy.add_category(category_name, CATEGORY_DESCRIPTIONS.get(category_name, ""))
        for entry in entries:
            taxonomy.add_data_type(
                DataType(
                    name=str(entry["name"]),
                    category=category_name,
                    description=str(entry["description"]),
                    keywords=tuple(entry["keywords"]),  # type: ignore[arg-type]
                    phrasings=tuple(entry["phrasings"]),  # type: ignore[arg-type]
                    sensitive=bool(entry["sensitive"]),
                    prohibited=bool(entry["prohibited"]),
                )
            )
    if include_other:
        taxonomy.add_category(OTHER_CATEGORY, CATEGORY_DESCRIPTIONS[OTHER_CATEGORY])
        taxonomy.add_data_type(
            DataType(
                name=OTHER_TYPE,
                category=OTHER_CATEGORY,
                description="Data descriptions that do not match any taxonomy entry.",
                keywords=(),
                phrasings=(),
            )
        )
    return taxonomy


def builtin_category_names() -> List[str]:
    """Names of the 24 non-``Other`` categories."""
    return list(_TAXONOMY_DATA.keys())


def builtin_type_count() -> int:
    """Number of (category, type) entries in the built-in taxonomy."""
    return sum(len(entries) for entries in _TAXONOMY_DATA.values())
