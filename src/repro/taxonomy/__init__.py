"""Data taxonomy for LLM app ecosystems.

The paper builds a data taxonomy of 24 categories and 145 data types (Table 8)
to which natural-language data descriptions extracted from GPT Action
specifications are mapped.  This subpackage provides:

* :mod:`repro.taxonomy.schema` — the :class:`DataType`, :class:`DataCategory`
  and :class:`DataTaxonomy` data structures;
* :mod:`repro.taxonomy.builtin` — the full final taxonomy from Table 8 with
  descriptions, matching keywords, and phrasing templates;
* :mod:`repro.taxonomy.bootstrap` — the initial 18-category / 79-data-type
  taxonomy bootstrapped from Android's data-safety types (Section 3.2.2);
* :mod:`repro.taxonomy.builder` — the multi-coder taxonomy construction and
  agreement workflow;
* :mod:`repro.taxonomy.refinement` — the semi-automated refinement pass that
  turns ``other`` descriptions into new data types (Section 3.2.4).
"""

from repro.taxonomy.schema import (
    OTHER_CATEGORY,
    OTHER_TYPE,
    DataCategory,
    DataTaxonomy,
    DataType,
    TaxonomyError,
)
from repro.taxonomy.builtin import load_builtin_taxonomy, PROHIBITED_CATEGORIES
from repro.taxonomy.bootstrap import load_bootstrap_taxonomy
from repro.taxonomy.builder import TaxonomyBuilder, CoderDecision, ReviewSession
from repro.taxonomy.refinement import (
    RefinementAction,
    RefinementDecision,
    TaxonomyRefiner,
)

__all__ = [
    "OTHER_CATEGORY",
    "OTHER_TYPE",
    "DataCategory",
    "DataTaxonomy",
    "DataType",
    "TaxonomyError",
    "load_builtin_taxonomy",
    "load_bootstrap_taxonomy",
    "PROHIBITED_CATEGORIES",
    "TaxonomyBuilder",
    "CoderDecision",
    "ReviewSession",
    "RefinementAction",
    "RefinementDecision",
    "TaxonomyRefiner",
]
