"""Semi-automated taxonomy refinement for ``Other`` descriptions (Section 3.2.4).

After the first classification pass, 35.07% of descriptions are labelled
``Other``.  The paper asks a stronger LLM (GPT-o1) to propose, per unmatched
description, one of four actions — *Covered*, *Add*, *Combine*, *Deprecate* —
and three human reviewers then settle on 7 new categories and 66 new data
types, growing the taxonomy from 18 × 79 to 24 × 145.

This module reproduces that loop: an LLM-like decision function (any callable,
usually :class:`repro.llm.SimulatedLLM` via
:func:`repro.classification.other_handler.build_refinement_decider`) maps
unmatched descriptions to :class:`RefinementDecision` objects and the
:class:`TaxonomyRefiner` applies them to produce the extended taxonomy.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.taxonomy.schema import DataTaxonomy, DataType, OTHER_CATEGORY


class RefinementAction(str, enum.Enum):
    """The four refinement actions enumerated in the Code 4 prompt."""

    COVERED = "Covered"
    ADD = "Add"
    COMBINE = "Combine"
    DEPRECATE = "Deprecate"


@dataclass(frozen=True)
class RefinementDecision:
    """A refinement decision for one unmatched data description.

    Parameters
    ----------
    description:
        The data description being considered.
    action:
        One of the four :class:`RefinementAction` values.
    category:
        Target category (for ``Covered``/``Add``/``Combine``).
    data_type:
        Target data-type name (existing for ``Covered``, new for
        ``Add``/``Combine``).
    type_description:
        Natural-language description for a newly created data type.
    """

    description: str
    action: RefinementAction
    category: str = ""
    data_type: str = ""
    type_description: str = ""


#: A decider maps an unmatched description (and its frequency) to a decision.
RefinementDecider = Callable[[str, int], RefinementDecision]


@dataclass
class RefinementReport:
    """Summary of one refinement pass."""

    decisions: List[RefinementDecision]
    new_categories: List[str]
    new_types: List[DataType]
    deprecated: List[str]
    covered: int

    @property
    def n_new_categories(self) -> int:
        """Number of categories added by the refinement."""
        return len(self.new_categories)

    @property
    def n_new_types(self) -> int:
        """Number of data types added by the refinement."""
        return len(self.new_types)


class TaxonomyRefiner:
    """Applies refinement decisions to extend a taxonomy.

    Parameters
    ----------
    taxonomy:
        The taxonomy to extend (it is copied; the original is not mutated).
    decider:
        Callable producing a :class:`RefinementDecision` per unmatched
        description.  The description's observed frequency is passed so the
        decider can weigh "amount appears" as in the Code 4 prompt.
    reviewer:
        Optional post-hoc filter emulating the human review: receives the list
        of proposed new :class:`DataType` objects and returns the accepted
        subset.  Defaults to accepting everything.
    """

    def __init__(
        self,
        taxonomy: DataTaxonomy,
        decider: RefinementDecider,
        reviewer: Optional[Callable[[List[DataType]], List[DataType]]] = None,
    ) -> None:
        self.base_taxonomy = taxonomy
        self.decider = decider
        self.reviewer = reviewer or (lambda proposals: proposals)

    def refine(
        self, unmatched_descriptions: Sequence[str]
    ) -> Tuple[DataTaxonomy, RefinementReport]:
        """Run one refinement pass over unmatched data descriptions.

        Returns the extended taxonomy and a report of what changed.
        """
        frequencies = Counter(unmatched_descriptions)
        decisions: List[RefinementDecision] = []
        proposals: Dict[Tuple[str, str], DataType] = {}
        deprecated: List[str] = []
        covered = 0

        for description, count in frequencies.most_common():
            decision = self.decider(description, count)
            decisions.append(decision)
            if decision.action is RefinementAction.COVERED:
                covered += 1
            elif decision.action is RefinementAction.DEPRECATE:
                deprecated.append(description)
            elif decision.action in (RefinementAction.ADD, RefinementAction.COMBINE):
                if not decision.category or not decision.data_type:
                    deprecated.append(description)
                    continue
                key = (decision.category, decision.data_type)
                if key not in proposals:
                    proposals[key] = DataType(
                        name=decision.data_type,
                        category=decision.category,
                        description=decision.type_description
                        or f"Data related to {decision.data_type.lower()}.",
                        keywords=tuple(
                            token
                            for token in decision.data_type.lower().split()
                            if len(token) > 2
                        ),
                    )

        accepted = self.reviewer(list(proposals.values()))
        extended = self.base_taxonomy.copy()
        existing_categories = set(extended.category_names())
        new_categories: List[str] = []
        new_types: List[DataType] = []
        for data_type in accepted:
            if extended.get_type(data_type.category, data_type.name) is not None:
                continue
            if data_type.category not in existing_categories and data_type.category != OTHER_CATEGORY:
                new_categories.append(data_type.category)
                existing_categories.add(data_type.category)
            extended.add_data_type(data_type)
            new_types.append(data_type)

        report = RefinementReport(
            decisions=decisions,
            new_categories=new_categories,
            new_types=new_types,
            deprecated=deprecated,
            covered=covered,
        )
        return extended, report


def keep_top_proposals(limit: int) -> Callable[[List[DataType]], List[DataType]]:
    """Build a reviewer that keeps at most ``limit`` proposed data types.

    The human review in the paper trimmed 8 proposed categories / 102 proposed
    types down to 7 / 66; this helper provides a deterministic counterpart for
    experiments that need a bounded taxonomy size.
    """

    def reviewer(proposals: List[DataType]) -> List[DataType]:
        return proposals[:limit]

    return reviewer
