"""Taxonomy coverage analysis (Figure 3 and Section 4.1.2).

Measures how many *distinct* data descriptions each taxonomy category and data
type covers, and the fraction of descriptions that remain unclassified
(``Other``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.classification.results import ClassificationResult


@dataclass
class CoverageAnalysis:
    """Distinct-description coverage per category and per data type."""

    #: Category → number of distinct descriptions covered.
    category_coverage: Dict[str, int] = field(default_factory=dict)
    #: ``(category, type)`` → number of distinct descriptions covered.
    type_coverage: Dict[Tuple[str, str], int] = field(default_factory=dict)
    n_distinct_descriptions: int = 0
    other_rate: float = 0.0

    # ------------------------------------------------------------------
    def coverage_cdf(self, level: str = "type") -> List[Tuple[int, float]]:
        """Figure 3's CDF: fraction of categories/types covering ≤ N descriptions."""
        if level == "type":
            values = sorted(self.type_coverage.values())
        elif level == "category":
            values = sorted(self.category_coverage.values())
        else:
            raise ValueError("level must be 'type' or 'category'")
        if not values:
            return []
        total = len(values)
        points: List[Tuple[int, float]] = []
        for threshold in sorted(set(values)):
            points.append((threshold, sum(1 for value in values if value <= threshold) / total))
        return points

    def median_coverage(self, level: str = "type") -> float:
        """Median number of distinct descriptions covered per category/type."""
        values = (
            list(self.type_coverage.values())
            if level == "type"
            else list(self.category_coverage.values())
        )
        return float(np.median(values)) if values else 0.0

    def share_covering_at_least(self, threshold: int, level: str = "type") -> float:
        """Fraction of categories/types covering at least ``threshold`` descriptions."""
        values = (
            list(self.type_coverage.values())
            if level == "type"
            else list(self.category_coverage.values())
        )
        if not values:
            return 0.0
        return sum(1 for value in values if value >= threshold) / len(values)

    def classified_share(self) -> float:
        """Fraction of descriptions mapped to the taxonomy (1 − other rate)."""
        return 1.0 - self.other_rate


class CoverageAccumulator:
    """Streaming builder of :class:`CoverageAnalysis` over label chunks.

    Consumes classification labels (not GPT records): partition the label
    list any way — per shard, per batch — accumulate each chunk, then
    :meth:`merge`.  State is the distinct-text sets the analysis itself
    needs, so memory matches the single-pass computation.  :meth:`finalize`
    sorts keys, making any partitioning byte-identical to the single pass.
    """

    def __init__(self) -> None:
        self.distinct_by_type: Dict[Tuple[str, str], set] = {}
        self.distinct_by_category: Dict[str, set] = {}
        self.distinct_descriptions: set = set()
        self.n_labels = 0
        self.n_other = 0

    def update(self, label) -> None:
        """Fold one :class:`~repro.classification.results.DescriptionLabel`."""
        self.n_labels += 1
        self.distinct_descriptions.add(label.text)
        if label.is_other:
            self.n_other += 1
            return
        self.distinct_by_type.setdefault(label.label, set()).add(label.text)
        self.distinct_by_category.setdefault(label.category, set()).add(label.text)

    def merge(self, other: "CoverageAccumulator") -> None:
        """Fold another chunk's partial sets into this one."""
        self.n_labels += other.n_labels
        self.n_other += other.n_other
        self.distinct_descriptions.update(other.distinct_descriptions)
        for key, texts in other.distinct_by_type.items():
            self.distinct_by_type.setdefault(key, set()).update(texts)
        for key, texts in other.distinct_by_category.items():
            self.distinct_by_category.setdefault(key, set()).update(texts)

    def finalize(self) -> CoverageAnalysis:
        """Reduce the distinct-text sets to coverage counts."""
        analysis = CoverageAnalysis()
        analysis.n_distinct_descriptions = len(self.distinct_descriptions)
        analysis.type_coverage = {
            key: len(self.distinct_by_type[key]) for key in sorted(self.distinct_by_type)
        }
        analysis.category_coverage = {
            key: len(self.distinct_by_category[key]) for key in sorted(self.distinct_by_category)
        }
        analysis.other_rate = self.n_other / self.n_labels if self.n_labels else 0.0
        return analysis


def analyze_coverage(classification: ClassificationResult) -> CoverageAnalysis:
    """Compute Figure 3 coverage statistics from a classification result."""
    accumulator = CoverageAccumulator()
    for label in classification.labels:
        accumulator.update(label)
    return accumulator.finalize()
