"""Taxonomy coverage analysis (Figure 3 and Section 4.1.2).

Measures how many *distinct* data descriptions each taxonomy category and data
type covers, and the fraction of descriptions that remain unclassified
(``Other``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.classification.results import ClassificationResult


@dataclass
class CoverageAnalysis:
    """Distinct-description coverage per category and per data type."""

    #: Category → number of distinct descriptions covered.
    category_coverage: Dict[str, int] = field(default_factory=dict)
    #: ``(category, type)`` → number of distinct descriptions covered.
    type_coverage: Dict[Tuple[str, str], int] = field(default_factory=dict)
    n_distinct_descriptions: int = 0
    other_rate: float = 0.0

    # ------------------------------------------------------------------
    def coverage_cdf(self, level: str = "type") -> List[Tuple[int, float]]:
        """Figure 3's CDF: fraction of categories/types covering ≤ N descriptions."""
        if level == "type":
            values = sorted(self.type_coverage.values())
        elif level == "category":
            values = sorted(self.category_coverage.values())
        else:
            raise ValueError("level must be 'type' or 'category'")
        if not values:
            return []
        total = len(values)
        points: List[Tuple[int, float]] = []
        for threshold in sorted(set(values)):
            points.append((threshold, sum(1 for value in values if value <= threshold) / total))
        return points

    def median_coverage(self, level: str = "type") -> float:
        """Median number of distinct descriptions covered per category/type."""
        values = (
            list(self.type_coverage.values())
            if level == "type"
            else list(self.category_coverage.values())
        )
        return float(np.median(values)) if values else 0.0

    def share_covering_at_least(self, threshold: int, level: str = "type") -> float:
        """Fraction of categories/types covering at least ``threshold`` descriptions."""
        values = (
            list(self.type_coverage.values())
            if level == "type"
            else list(self.category_coverage.values())
        )
        if not values:
            return 0.0
        return sum(1 for value in values if value >= threshold) / len(values)

    def classified_share(self) -> float:
        """Fraction of descriptions mapped to the taxonomy (1 − other rate)."""
        return 1.0 - self.other_rate


def analyze_coverage(classification: ClassificationResult) -> CoverageAnalysis:
    """Compute Figure 3 coverage statistics from a classification result."""
    analysis = CoverageAnalysis()
    distinct_by_type: Dict[Tuple[str, str], set] = {}
    distinct_by_category: Dict[str, set] = {}
    distinct_descriptions = set()
    for label in classification.labels:
        distinct_descriptions.add(label.text)
        if label.is_other:
            continue
        distinct_by_type.setdefault(label.label, set()).add(label.text)
        distinct_by_category.setdefault(label.category, set()).add(label.text)
    analysis.n_distinct_descriptions = len(distinct_descriptions)
    analysis.type_coverage = {key: len(texts) for key, texts in distinct_by_type.items()}
    analysis.category_coverage = {key: len(texts) for key, texts in distinct_by_category.items()}
    analysis.other_rate = classification.other_rate()
    return analysis
