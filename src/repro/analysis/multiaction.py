"""Multi-Action GPT analysis (Section 4.4.1).

Measures how many Actions each Action-embedding GPT integrates, whether the
Actions of multi-Action GPTs span several domains (additional online services)
or just additional endpoints of the same service, and how often Actions
co-occur with other Actions across GPTs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from repro.crawler.corpus import CrawlCorpus
from repro.web.psl import registrable_domain


@dataclass
class MultiActionAnalysis:
    """Distribution of Actions per GPT and related multi-Action statistics."""

    #: Number of Actions → number of GPTs with that many Actions.
    action_count_distribution: Dict[int, int] = field(default_factory=dict)
    n_action_gpts: int = 0
    #: Among multi-Action GPTs, the share whose Actions contact >1 registrable domain.
    cross_domain_share: float = 0.0
    #: Share of Actions (appearing across GPTs) that co-occur with ≥1 other Action.
    cooccurring_action_share: float = 0.0

    def share_with_n_actions(self, n: int) -> float:
        """Fraction of Action-embedding GPTs with exactly ``n`` Actions."""
        if not self.n_action_gpts:
            return 0.0
        return self.action_count_distribution.get(n, 0) / self.n_action_gpts

    def share_with_at_least(self, n: int) -> float:
        """Fraction of Action-embedding GPTs with at least ``n`` Actions."""
        if not self.n_action_gpts:
            return 0.0
        matching = sum(count for size, count in self.action_count_distribution.items() if size >= n)
        return matching / self.n_action_gpts


def analyze_multi_action(corpus: CrawlCorpus) -> MultiActionAnalysis:
    """Compute Section 4.4.1 statistics for a corpus."""
    analysis = MultiActionAnalysis()
    action_gpts = corpus.action_embedding_gpts()
    analysis.n_action_gpts = len(action_gpts)
    if not action_gpts:
        return analysis

    distribution: Counter = Counter()
    multi_total = 0
    multi_cross_domain = 0
    action_partners: Dict[str, set] = {}
    for gpt in action_gpts:
        action_ids = [action.action_id for action in gpt.actions]
        distribution[len(action_ids)] += 1
        domains = {
            registrable_domain(action.domain) or action.domain
            for action in gpt.actions
            if action.domain
        }
        if len(action_ids) > 1:
            multi_total += 1
            if len(domains) > 1:
                multi_cross_domain += 1
        for action_id in action_ids:
            partners = action_partners.setdefault(action_id, set())
            partners.update(other for other in action_ids if other != action_id)

    analysis.action_count_distribution = dict(distribution)
    if multi_total:
        analysis.cross_domain_share = multi_cross_domain / multi_total
    if action_partners:
        cooccurring = sum(1 for partners in action_partners.values() if partners)
        analysis.cooccurring_action_share = cooccurring / len(action_partners)
    return analysis
