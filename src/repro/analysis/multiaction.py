"""Multi-Action GPT analysis (Section 4.4.1).

Measures how many Actions each Action-embedding GPT integrates, whether the
Actions of multi-Action GPTs span several domains (additional online services)
or just additional endpoints of the same service, and how often Actions
co-occur with other Actions across GPTs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from repro.io import CorpusSource
from repro.web.psl import registrable_domain


@dataclass
class MultiActionAnalysis:
    """Distribution of Actions per GPT and related multi-Action statistics."""

    #: Number of Actions → number of GPTs with that many Actions.
    action_count_distribution: Dict[int, int] = field(default_factory=dict)
    n_action_gpts: int = 0
    #: Among multi-Action GPTs, the share whose Actions contact >1 registrable domain.
    cross_domain_share: float = 0.0
    #: Share of Actions (appearing across GPTs) that co-occur with ≥1 other Action.
    cooccurring_action_share: float = 0.0

    def share_with_n_actions(self, n: int) -> float:
        """Fraction of Action-embedding GPTs with exactly ``n`` Actions."""
        if not self.n_action_gpts:
            return 0.0
        return self.action_count_distribution.get(n, 0) / self.n_action_gpts

    def share_with_at_least(self, n: int) -> float:
        """Fraction of Action-embedding GPTs with at least ``n`` Actions."""
        if not self.n_action_gpts:
            return 0.0
        matching = sum(count for size, count in self.action_count_distribution.items() if size >= n)
        return matching / self.n_action_gpts


class MultiActionAccumulator:
    """Streaming builder of :class:`MultiActionAnalysis`.

    State is the Actions-per-GPT histogram and a per-Action partner set —
    O(#Actions + #co-occurrence pairs), never the GPT records themselves.
    :meth:`finalize` emits the histogram with sorted keys, making sharded
    and unsharded runs byte-identical.
    """

    def __init__(self) -> None:
        self.n_action_gpts = 0
        self.distribution: Counter = Counter()
        self.multi_total = 0
        self.multi_cross_domain = 0
        self.action_partners: Dict[str, set] = {}

    def update(self, gpt) -> None:
        """Fold one GPT's Action count / domain spread into the counters."""
        if not gpt.has_actions:
            return
        self.n_action_gpts += 1
        action_ids = [action.action_id for action in gpt.actions]
        self.distribution[len(action_ids)] += 1
        domains = {
            registrable_domain(action.domain) or action.domain
            for action in gpt.actions
            if action.domain
        }
        if len(action_ids) > 1:
            self.multi_total += 1
            if len(domains) > 1:
                self.multi_cross_domain += 1
        for action_id in action_ids:
            partners = self.action_partners.setdefault(action_id, set())
            partners.update(other for other in action_ids if other != action_id)

    def merge(self, other: "MultiActionAccumulator") -> None:
        """Fold another shard's partial counters into this one."""
        self.n_action_gpts += other.n_action_gpts
        self.distribution.update(other.distribution)
        self.multi_total += other.multi_total
        self.multi_cross_domain += other.multi_cross_domain
        for action_id, partners in other.action_partners.items():
            self.action_partners.setdefault(action_id, set()).update(partners)

    def finalize(self) -> MultiActionAnalysis:
        """Reduce the counters to Section 4.4.1 statistics."""
        analysis = MultiActionAnalysis()
        analysis.n_action_gpts = self.n_action_gpts
        if not self.n_action_gpts:
            return analysis
        analysis.action_count_distribution = {
            size: self.distribution[size] for size in sorted(self.distribution)
        }
        if self.multi_total:
            analysis.cross_domain_share = self.multi_cross_domain / self.multi_total
        if self.action_partners:
            cooccurring = sum(1 for partners in self.action_partners.values() if partners)
            analysis.cooccurring_action_share = cooccurring / len(self.action_partners)
        return analysis


def analyze_multi_action(corpus: CorpusSource) -> MultiActionAnalysis:
    """Compute Section 4.4.1 statistics for a corpus."""
    accumulator = MultiActionAccumulator()
    for gpt in corpus.iter_records():
        accumulator.update(gpt)
    return accumulator.finalize()
