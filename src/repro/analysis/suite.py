"""One-stop measurement suite.

:class:`MeasurementSuite` runs the full measurement pipeline the paper
describes — generate (or accept) an ecosystem, crawl it, build the few-shot
seed set, classify every data description, analyze privacy policies — and
exposes every analysis lazily from a single object.  Experiments, benchmarks,
and examples all build on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.analysis.collection import CollectionAnalysis, analyze_collection
from repro.analysis.cooccurrence import CooccurrenceAnalysis, analyze_cooccurrence
from repro.analysis.coverage import CoverageAnalysis, analyze_coverage
from repro.analysis.crawlstats import CrawlStatsAnalysis, analyze_crawl_stats
from repro.analysis.disclosure import DisclosureAnalysis, analyze_disclosure
from repro.analysis.multiaction import MultiActionAnalysis, analyze_multi_action
from repro.analysis.party import ActionPartyIndex, build_party_index
from repro.analysis.prevalence import PrevalenceAnalysis, analyze_prevalence
from repro.analysis.prohibited import ProhibitedDataAnalysis, analyze_prohibited
from repro.analysis.tools import ToolUsageAnalysis, analyze_tool_usage
from repro.classification.classifier import ClassifierConfig, DataCollectionClassifier
from repro.classification.descriptions import (
    DataDescription,
    extract_descriptions,
    label_with_ground_truth,
    sample_descriptions,
)
from repro.classification.evaluation import (
    ClassifierEvaluation,
    evaluate_predictions,
    gold_from_ground_truth,
)
from repro.classification.results import ClassificationResult
from repro.crawler.corpus import CrawlCorpus
from repro.crawler.pipeline import CrawlPipeline
from repro.ecosystem.config import EcosystemConfig
from repro.ecosystem.generator import EcosystemGenerator
from repro.ecosystem.models import SyntheticEcosystem
from repro.exec import ExecutionBackend, WorkerPool
from repro.llm.fewshot import FewShotStore
from repro.llm.simulated import SimulatedLLM
from repro.policy.duplicates import DuplicatePolicyReport, analyze_policy_corpus
from repro.policy.evaluation import PolicyFrameworkEvaluation, evaluate_policy_framework
from repro.policy.framework import PolicyConsistencyReport, PrivacyPolicyAnalyzer
from repro.taxonomy.builtin import load_builtin_taxonomy
from repro.taxonomy.schema import DataTaxonomy


@dataclass
class SuiteConfig:
    """Configuration of a full measurement run.

    **Knob naming.**  Knobs are grouped by the stage they configure:
    measurement knobs are bare (``n_gpts``, ``seed``, ``fewshot_k``, …),
    crawl-stage execution knobs are ``crawl_*``, sharded-store knobs are
    ``shard*``, and ``backend`` picks the :mod:`repro.exec` backend for all
    sharded work.  Execution knobs never change measured values — only how
    (and how fast) they are produced.

    **Sharding semantics — the one place they are documented.**
    ``shards=0`` (the default) is the unsharded path: the crawl builds an
    in-memory :class:`~repro.crawler.corpus.CrawlCorpus` and every analysis
    runs on it directly; ``shard_workers``, ``shard_dir``, and ``backend``
    have nothing to act on and :meth:`validate` rejects them.  ``shards=N``
    (N >= 1) is the sharded path: the shard-partitioned crawl streams
    records into an N-shard on-disk store, and every stage downstream —
    corpus analyses, description extraction, classification, and the
    policy analyses — runs shard-parallel in bounded memory, byte-identical
    to the unsharded path.  ``suite.corpus`` stays available as a thin
    compatibility property (it materializes the store in discovery order;
    no second crawl), and ``suite.corpus_source`` is the layout-agnostic
    :class:`~repro.io.CorpusSource` view analyses should prefer.
    """

    n_gpts: int = 2000
    seed: int = 0
    seed_example_count: int = 300
    fewshot_k: int = 5
    two_phase: bool = True
    use_fewshot: bool = True
    single_pass_policy: bool = False
    #: Candidate generation for near-duplicate policy detection ("auto" picks
    #: MinHash–LSH at corpus scale; see repro.nlp.similarity.near_duplicates).
    near_duplicate_method: str = "auto"
    #: Worker-pool size for the crawl engine (0/1 crawls sequentially).
    crawl_workers: int = 0
    #: Directory for incremental crawl checkpoints (None disables).
    crawl_checkpoint_dir: Optional[str] = None
    #: Resume a checkpointed crawl instead of starting from scratch.
    crawl_resume: bool = False
    #: Retry/backoff/latency knobs for the crawl transport: a
    #: :class:`~repro.crawler.transport.TransportConfig` or an equivalent
    #: plain mapping (sweep scenarios store JSON; None = defaults).
    crawl_transport: Optional[Union["TransportConfig", Dict[str, object]]] = None
    #: Hostile-host battery for the crawl (None = a well-behaved web).  A
    #: dict of :data:`repro.crawler.hostile.DEFAULT_HOSTILE_SPEC` overrides
    #: ({} = the default battery): seeded adversarial behaviors — redirect
    #: chains/loops, 429 storms, tarpit latency, content flapping — are
    #: installed on a deterministic subset of policy hosts.
    crawl_hostile: Optional[Dict[str, object]] = None
    #: Per-host politeness limits (host → requests/second) for the crawl.
    crawl_rate_limits: Optional[Dict[str, float]] = None
    #: Crawl epoch of the measured world (0 = the base snapshot).  N > 0
    #: evolves the generated ecosystem through N rounds of seeded churn
    #: (:func:`repro.ecosystem.evolution.evolve_epochs`) before crawling —
    #: deterministic in ``(seed, epoch)``, so two suites at the same epoch
    #: measure the same world.  The per-epoch change feeds land in
    #: ``suite.epoch_deltas``; pair with :meth:`MeasurementSuite.incremental_crawl`
    #: to crawl the evolved world as a delta over the previous epoch's store.
    epoch: int = 0
    #: Shard count for the on-disk corpus store (0 = in-memory single pass).
    #: When set, crawl checkpoints are shard-partitioned too, and every
    #: corpus-driven analysis runs shard-parallel with byte-identical
    #: results (an execution knob: it never changes measured values).
    shards: int = 0
    #: Worker-pool size for shard-parallel analysis (0/1 = sequential).
    shard_workers: int = 0
    #: Directory for the sharded corpus store (None = a private temp dir).
    shard_dir: Optional[str] = None
    #: Execution backend for sharded work ("serial" / "thread" / "process",
    #: None = serial at <=1 workers, threads above).  Applies to the
    #: shard-partitioned crawl and the shard-parallel analyses; like
    #: ``shards``, it is an execution knob that never changes measured
    #: values.  "process" spawns one warm worker pool for the suite's
    #: whole lifetime (crawl through analyses); call ``suite.close()`` —
    #: or use the suite as a context manager — to release it.
    backend: Optional[str] = None

    def validate(self) -> "SuiteConfig":
        """Reject contradictory knob combinations with actionable messages.

        Called by :class:`MeasurementSuite` on construction, so a
        misconfigured run fails at build time instead of deep inside a
        crawl or analysis pass.  Returns ``self`` for chaining.
        """
        problems = []
        if self.n_gpts <= 0:
            problems.append("n_gpts must be positive")
        if self.shards < 0:
            problems.append(
                "shards must be >= 0 (0 = unsharded in-memory corpus, "
                "N >= 1 = N-shard on-disk store)"
            )
        if self.shard_workers < 0 or self.crawl_workers < 0:
            problems.append("worker counts must be >= 0 (0/1 = sequential)")
        if self.epoch < 0:
            problems.append(
                "epoch must be >= 0 (0 = base snapshot, N = the world after "
                "N rounds of seeded churn)"
            )
        if self.shards == 0 and self.shard_workers > 0:
            problems.append(
                "shard_workers has no effect without sharding — "
                "set shards=N (N >= 1) to shard the corpus, or drop shard_workers"
            )
        if self.shards == 0 and self.shard_dir is not None:
            problems.append(
                "shard_dir has no effect without sharding — "
                "set shards=N (N >= 1) to write a sharded store there, or drop shard_dir"
            )
        if self.shards == 0 and self.backend is not None:
            problems.append(
                "backend has no effect without sharding (it only drives the "
                "shard-partitioned crawl and shard-parallel analyses) — "
                "set shards=N (N >= 1), or drop backend"
            )
        if self.backend not in (None, "serial", "thread", "process"):
            problems.append(
                f"unknown backend {self.backend!r} — "
                "pick 'serial', 'thread', or 'process' (or None for the default)"
            )
        if self.backend == "process" and self.crawl_rate_limits:
            problems.append(
                "crawl_rate_limits cannot be combined with backend='process': "
                "per-host token buckets do not span processes — use the "
                "thread backend for rate-limited crawls"
            )
        if self.crawl_hostile is not None and not isinstance(self.crawl_hostile, dict):
            problems.append(
                "crawl_hostile must be a dict of DEFAULT_HOSTILE_SPEC "
                "overrides ({} = the default hostile battery) or None"
            )
        if self.crawl_resume and self.crawl_checkpoint_dir is None:
            problems.append(
                "crawl_resume=True needs crawl_checkpoint_dir — "
                "point it at the directory the interrupted crawl checkpointed into"
            )
        if problems:
            raise ValueError("invalid SuiteConfig: " + "; ".join(problems))
        return self


class MeasurementSuite:
    """Runs and caches the full measurement pipeline."""

    def __init__(
        self,
        config: Optional[SuiteConfig] = None,
        ecosystem_config: Optional[EcosystemConfig] = None,
        ecosystem: Optional[SyntheticEcosystem] = None,
        taxonomy: Optional[DataTaxonomy] = None,
        llm: Optional[SimulatedLLM] = None,
        corpus: Optional[CrawlCorpus] = None,
        classification: Optional[ClassificationResult] = None,
    ) -> None:
        self.config = (config or SuiteConfig()).validate()
        self.taxonomy = taxonomy or load_builtin_taxonomy()
        self.ecosystem_config = ecosystem_config or EcosystemConfig.paper_calibrated(
            n_gpts=self.config.n_gpts, seed=self.config.seed
        )
        self.llm = llm or SimulatedLLM(knowledge_taxonomy=self.taxonomy, seed=self.config.seed)
        self._ecosystem = ecosystem
        # ``corpus`` / ``classification`` preload pipeline stages from a
        # cache (e.g. the sweep engine's artifact store) so only the stages
        # downstream of what changed are recomputed.
        self._corpus: Optional[CrawlCorpus] = corpus
        self._descriptions: Optional[List[DataDescription]] = None
        self._fewshot_store: Optional[FewShotStore] = None
        self._classification: Optional[ClassificationResult] = classification
        self._policy_report: Optional[PolicyConsistencyReport] = None
        self._party_index: Optional[ActionPartyIndex] = None
        self._cache: Dict[str, object] = {}
        self._shard_store = None
        self._shard_tempdir = None
        #: CrawlStatistics from the crawl this suite ran (None when the
        #: corpus was preloaded and no crawl happened here).
        self._crawl_statistics = None
        #: Suite-lifetime warm pool for backend="process": one spawn carries
        #: from the sharded crawl through every analysis pass (see
        #: _execution_backend); released by close().
        self._exec_pool: Optional[WorkerPool] = None
        #: Action → (policy URL, domain, title) registry reused across
        #: streamed policy-analysis passes (one GPT-shard scan, not one per
        #: analysis group).
        self._action_catalog = None
        #: Per-epoch change feeds (:class:`~repro.ecosystem.evolution.EpochDelta`)
        #: from evolving the generated ecosystem to ``config.epoch``; empty
        #: at epoch 0 or when the ecosystem was supplied pre-built.
        self.epoch_deltas: List = []

    # ------------------------------------------------------------------
    # Pipeline stages (lazy, cached)
    # ------------------------------------------------------------------
    def stage_materialized(self, stage: str) -> bool:
        """Whether a lazy pipeline stage has been computed (or preloaded).

        Lets callers that persist intermediate products (the sweep engine's
        artifact store) cache exactly what a run actually built instead of
        forcing expensive stages nothing asked for.
        """
        attribute = {
            "ecosystem": self._ecosystem,
            "corpus": self._corpus,
            "classification": self._classification,
        }[stage]
        return attribute is not None

    @property
    def ecosystem(self) -> SyntheticEcosystem:
        """The synthetic ecosystem (generated — and evolved — on first access).

        With ``config.epoch > 0`` the base snapshot is churned through that
        many seeded evolution rounds; the change feeds are retained in
        :attr:`epoch_deltas` for delta-aware re-crawls.
        """
        if self._ecosystem is None:
            world = EcosystemGenerator(self.ecosystem_config, self.taxonomy).generate()
            if self.config.epoch > 0:
                from repro.ecosystem.evolution import evolve_epochs

                world, self.epoch_deltas = evolve_epochs(
                    world, self.ecosystem_config, self.config.epoch
                )
            self._ecosystem = world
        return self._ecosystem

    def _execution_backend(self) -> Union[str, ExecutionBackend, None]:
        """``config.backend``, with ``"process"`` promoted to one warm pool.

        The pool spans the suite's lifetime — the shard-partitioned crawl
        and every shard-parallel analysis pass reuse the same workers
        instead of respawning per stage.  Pipelines and runners receive a
        non-owning :class:`~repro.exec.PoolHandle`, so their own cleanup
        never tears the suite's workers down; :meth:`close` does.
        """
        if self.config.backend != "process":
            return self.config.backend
        if self._exec_pool is None or self._exec_pool._closed:
            workers = max(
                1, self.config.shard_workers, self.config.crawl_workers
            )
            self._exec_pool = WorkerPool(kind="process", workers=workers)
        return self._exec_pool.handle()

    def close(self) -> None:
        """Release the suite's warm worker pool (idempotent).

        Cached stages and analyses stay usable; a later sharded access
        simply builds a fresh pool.
        """
        if self._exec_pool is not None:
            self._exec_pool.close()

    def __enter__(self) -> "MeasurementSuite":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _build_pipeline(
        self,
        shards: int = 1,
        backend: Union[str, ExecutionBackend, None] = None,
    ) -> CrawlPipeline:
        pipeline = CrawlPipeline.from_ecosystem(
            self.ecosystem,
            seed=self.config.seed,
            workers=self.config.crawl_workers,
            transport_config=self.config.crawl_transport,
            rate_limits=self.config.crawl_rate_limits,
            checkpoint_dir=self.config.crawl_checkpoint_dir,
            resume=self.config.crawl_resume,
            checkpoint_shards=max(1, self.config.shards),
            shards=shards,
            backend=backend,
        )
        if self.config.crawl_hostile is not None:
            from repro.crawler.hostile import install_hostile_hosts

            install_hostile_hosts(
                pipeline.http,
                self.ecosystem,
                spec=self.config.crawl_hostile,
                seed=self.config.seed,
            )
        return pipeline

    @property
    def corpus(self) -> CrawlCorpus:
        """The materialized corpus — a thin compatibility property.

        On a sharded suite it rebuilds from the shard store in exact
        discovery order (the store records each record's discovery index),
        so there is never a second crawl and downstream seeded sampling
        sees the same record order either way.  Prefer
        :attr:`corpus_source` — materializing defeats bounded-memory
        sharding, and ``make lint`` rejects new ``load_corpus`` calls in
        analysis code.
        """
        if self._corpus is None:
            if self.sharded:
                self._corpus = self.shard_store.load_corpus()  # lint-allow-materialize: the compat property
            else:
                pipeline = self._build_pipeline()
                self._corpus = pipeline.run()
                self._crawl_statistics = pipeline.statistics
        return self._corpus

    @property
    def corpus_source(self):
        """The suite's :class:`~repro.io.CorpusSource`: one record-read API.

        The shard store when sharded, the in-memory corpus otherwise —
        callers iterate records (or shards) without branching on layout.
        """
        if self.sharded:
            return self.shard_store
        return self.corpus

    @property
    def sharded(self) -> bool:
        """Whether corpus analyses run on the sharded streaming path."""
        return self.config.shards > 0

    @property
    def crawl_statistics(self):
        """The :class:`~repro.crawler.pipeline.CrawlStatistics` of the crawl
        this suite ran — retry counters and the per-host failure taxonomy of
        quarantined (hostile/degraded) hosts.  ``None`` when the corpus was
        preloaded, so no crawl happened inside the suite.
        """
        return self._crawl_statistics

    @property
    def shard_store(self):
        """The on-disk sharded corpus store (built on first access).

        Lives under ``config.shard_dir`` when set, otherwise in a private
        temporary directory tied to the suite's lifetime.  When no
        in-memory corpus exists yet, the store comes straight from the
        **shard-partitioned crawl** (:meth:`CrawlPipeline.run_sharded`) —
        no whole-run corpus is ever materialized, which is what makes
        ``crawl``-style workloads memory-bounded at scale.  If the corpus
        was already crawled (or preloaded), it is sharded to disk instead;
        both paths publish byte-identical stores.
        """
        if not self.sharded:
            raise ValueError("SuiteConfig.shards must be > 0 for a shard store")
        if self._shard_store is None:
            from repro.io.shards import ShardedCorpusStore

            directory = self.config.shard_dir
            if directory is None:
                import tempfile

                self._shard_tempdir = tempfile.TemporaryDirectory(prefix="repro-shards-")
                directory = self._shard_tempdir.name
            if self._corpus is None:
                pipeline = self._build_pipeline(
                    shards=self.config.shards, backend=self._execution_backend()
                )
                self._shard_store = pipeline.run_sharded(
                    directory, epoch=self.config.epoch
                )
                self._crawl_statistics = pipeline.statistics
            else:
                self._shard_store = ShardedCorpusStore.write_corpus(
                    self.corpus, directory, n_shards=self.config.shards
                )
        return self._shard_store

    def incremental_crawl(self, parent, shard_dir: str):
        """Crawl this suite's (evolved) world as a delta over ``parent``.

        ``parent`` is the previous epoch's
        :class:`~repro.io.shards.ShardedCorpusStore` (or a path to one);
        the suite's :attr:`epoch_deltas` supply the change feed, so only
        churned records are fetched
        (:meth:`~repro.crawler.pipeline.CrawlPipeline.run_incremental`).
        The published store becomes the suite's shard store, so every
        downstream analysis reads the incremental result.
        """
        from repro.io.shards import ShardedCorpusStore

        if not self.sharded:
            raise ValueError(
                "incremental crawls need a sharded suite — set "
                "SuiteConfig.shards >= 1"
            )
        if not isinstance(parent, ShardedCorpusStore):
            parent = ShardedCorpusStore(parent)
        if parent.manifest.epoch != self.config.epoch - 1:
            raise ValueError(
                f"parent store is epoch {parent.manifest.epoch} but this "
                f"suite's world is epoch {self.config.epoch}; incremental "
                "crawls step one epoch at a time"
            )
        self.ecosystem  # force generation so epoch_deltas is populated
        delta = self.epoch_deltas[-1] if self.epoch_deltas else None
        pipeline = self._build_pipeline(
            shards=self.config.shards, backend=self._execution_backend()
        )
        store = pipeline.run_incremental(
            shard_dir,
            parent,
            changed_gpt_ids=sorted(delta.changed_gpt_ids) if delta else (),
            changed_policy_urls=sorted(delta.changed_policy_urls) if delta else (),
            epoch=self.config.epoch,
        )
        self._shard_store = store
        self._crawl_statistics = pipeline.statistics
        return store

    def _stream_runner(self):
        """A shard-analysis runner on the suite's store, workers, and pool."""
        from repro.analysis.streaming import ShardAnalysisRunner

        return ShardAnalysisRunner(
            self.shard_store,
            workers=self.config.shard_workers,
            backend=self._execution_backend(),
        )

    def _streamed(self, names: List[str]) -> None:
        """Compute streamed analyses shard-parallel and prime the cache.

        Analyses are grouped so a corpus-only request never forces the
        classification stage (and ``policy_duplicates`` never forces it
        either); everything requested lands in ``_cache`` /
        ``_party_index`` in one pass per record kind over the shards.
        """
        classification = None
        if any(
            name in ("collection", "coverage", "prohibited", "prevalence", "disclosure")
            for name in names
        ):
            classification = self.classification
        runner = self._stream_runner()
        results = runner.run(
            names,
            classification=classification,
            taxonomy=self.taxonomy,
            party_index=self._party_index,
            llm=self.llm,
            single_pass_policy=self.config.single_pass_policy,
            near_duplicate_method=self.config.near_duplicate_method,
            action_catalog=self._action_catalog,
        )
        party = results.pop("party", None)
        if party is not None and self._party_index is None:
            self._party_index = party
        catalog = results.pop("action_catalog", None)
        if catalog is not None and self._action_catalog is None:
            self._action_catalog = catalog
        self._cache.update(results)

    @property
    def descriptions(self) -> List[DataDescription]:
        """All data descriptions, in corpus first-occurrence order.

        On the sharded path they are extracted shard-parallel from the
        store and merged on global discovery index, which reproduces the
        in-memory extraction order exactly — no corpus materialization.
        """
        if self._descriptions is None:
            if self.sharded and self._corpus is None:
                self._descriptions = self._stream_runner().extract_descriptions()
            else:
                self._descriptions = extract_descriptions(self.corpus)
        return self._descriptions

    @property
    def fewshot_store(self) -> FewShotStore:
        """The labelled seed-example store (the paper's 1K manual labels)."""
        if self._fewshot_store is None:
            # Cap the seed set well below the corpus size: the paper labels 1K
            # of ~40K descriptions, so the few-shot store must stay a small
            # fraction of what gets classified or accuracy is trivially inflated.
            cap = max(1, len(self.descriptions) // 3)
            seed_sample = sample_descriptions(
                self.descriptions,
                min(self.config.seed_example_count, cap),
                seed=self.config.seed,
            )
            examples = label_with_ground_truth(seed_sample, self.ecosystem.ground_truth)
            self._fewshot_store = FewShotStore(examples, default_k=self.config.fewshot_k)
        return self._fewshot_store

    def _classifier_config(self) -> ClassifierConfig:
        return ClassifierConfig(
            fewshot_k=self.config.fewshot_k,
            two_phase=self.config.two_phase,
            use_fewshot=self.config.use_fewshot,
        )

    def build_classifier(self) -> DataCollectionClassifier:
        """Construct the classifier with the suite's configuration."""
        return DataCollectionClassifier(
            taxonomy=self.taxonomy,
            llm=self.llm,
            fewshot_store=self.fewshot_store,
            config=self._classifier_config(),
        )

    @property
    def classification(self) -> ClassificationResult:
        """Classification of every extracted data description.

        Sharded suites classify in batch-aligned chunks fanned out over
        the shard workers (the few-shot store rides the warm pool's
        broadcast channel); labels are byte-identical to the in-memory
        ``classify_many`` pass at any worker count or backend.
        """
        if self._classification is None:
            if self.sharded and self._corpus is None:
                self._classification = self._stream_runner().classify(
                    taxonomy=self.taxonomy,
                    llm=self.llm,
                    fewshot_store=self.fewshot_store,
                    config=self._classifier_config(),
                    descriptions=self.descriptions,
                )
            else:
                self._classification = self.build_classifier().classify_many(
                    self.descriptions
                )
        return self._classification

    @property
    def policy_report(self) -> PolicyConsistencyReport:
        """Privacy-policy consistency report for the whole corpus."""
        if self._policy_report is None:
            analyzer = PrivacyPolicyAnalyzer(
                self.taxonomy, self.llm, single_pass=self.config.single_pass_policy
            )
            self._policy_report = analyzer.analyze_corpus(self.corpus, self.classification)
        return self._policy_report

    @property
    def party_index(self) -> ActionPartyIndex:
        """First-/third-party attribution of Actions."""
        if self._party_index is None:
            if self.sharded:
                self._streamed(["party"])
            else:
                self._party_index = build_party_index(self.corpus)
        return self._party_index

    # ------------------------------------------------------------------
    # Analyses (lazy, cached)
    # ------------------------------------------------------------------
    #: Streamable analyses grouped by what they force: corpus-only requests
    #: (including policy duplicates, which stream policy records alone)
    #: must never trigger the classification stage; disclosure runs the
    #: policy framework per shard and needs the classification + LLM.
    _CORPUS_STREAM_GROUP = ("crawl_stats", "tool_usage", "multi_action", "cooccurrence")
    _CLASSIFIED_STREAM_GROUP = ("collection", "coverage", "prohibited", "prevalence")
    _POLICY_STREAM_GROUPS = (("policy_duplicates",), ("disclosure",))

    def _cached(self, key: str, builder) -> object:
        if key not in self._cache:
            if self.sharded and key in self._CORPUS_STREAM_GROUP:
                # One shard-parallel pass computes the whole group.
                self._streamed(list(self._CORPUS_STREAM_GROUP))
            elif self.sharded and key in self._CLASSIFIED_STREAM_GROUP:
                self._streamed(list(self._CLASSIFIED_STREAM_GROUP))
            elif self.sharded and any(
                key in group for group in self._POLICY_STREAM_GROUPS
            ):
                # Disclosure already forces the classification stage, so
                # the duplicates analysis rides its policy-shard pass for
                # free; a duplicates-only request streams alone and keeps
                # the corpus-only principle (no classification forced).
                names = [key]
                if key == "disclosure" and "policy_duplicates" not in self._cache:
                    names.append("policy_duplicates")
                self._streamed(names)
            else:
                self._cache[key] = builder()
        return self._cache[key]

    @property
    def crawl_stats(self) -> CrawlStatsAnalysis:
        """Table 1 crawl statistics."""
        return self._cached("crawl_stats", lambda: analyze_crawl_stats(self.corpus))  # type: ignore[return-value]

    @property
    def tool_usage(self) -> ToolUsageAnalysis:
        """Table 3 tool usage."""
        return self._cached(
            "tool_usage", lambda: analyze_tool_usage(self.corpus, self.party_index)
        )  # type: ignore[return-value]

    @property
    def collection(self) -> CollectionAnalysis:
        """Table 4 / Figure 7 collection trends."""
        return self._cached(
            "collection",
            lambda: analyze_collection(self.corpus, self.classification, self.party_index),
        )  # type: ignore[return-value]

    @property
    def coverage(self) -> CoverageAnalysis:
        """Figure 3 taxonomy coverage."""
        return self._cached("coverage", lambda: analyze_coverage(self.classification))  # type: ignore[return-value]

    @property
    def prohibited(self) -> ProhibitedDataAnalysis:
        """Section 4.2.2 prohibited-data collection."""
        return self._cached(
            "prohibited",
            lambda: analyze_prohibited(self.corpus, self.classification, self.taxonomy),
        )  # type: ignore[return-value]

    @property
    def prevalence(self) -> PrevalenceAnalysis:
        """Table 5 prevalent third-party Actions."""
        return self._cached(
            "prevalence",
            lambda: analyze_prevalence(self.corpus, self.classification, self.party_index),
        )  # type: ignore[return-value]

    @property
    def multi_action(self) -> MultiActionAnalysis:
        """Section 4.4.1 multi-Action statistics."""
        return self._cached("multi_action", lambda: analyze_multi_action(self.corpus))  # type: ignore[return-value]

    @property
    def cooccurrence(self) -> CooccurrenceAnalysis:
        """Figure 8 co-occurrence graph."""
        return self._cached("cooccurrence", lambda: analyze_cooccurrence(self.corpus))  # type: ignore[return-value]

    @property
    def disclosure(self) -> DisclosureAnalysis:
        """Figures 9–12 / Table 7 disclosure consistency."""
        return self._cached(
            "disclosure", lambda: analyze_disclosure(self.policy_report, self.corpus)
        )  # type: ignore[return-value]

    @property
    def policy_duplicates(self) -> DuplicatePolicyReport:
        """Section 5.1.1 / Table 6 duplicate-policy statistics."""
        return self._cached(
            "policy_duplicates",
            lambda: analyze_policy_corpus(
                self.corpus, near_duplicate_method=self.config.near_duplicate_method
            ),
        )  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Evaluations against generator ground truth
    # ------------------------------------------------------------------
    def evaluate_classifier(self, sample_fraction: float = 1.0) -> ClassifierEvaluation:
        """Score the classifier against generator ground truth."""
        descriptions = self.descriptions
        if 0.0 < sample_fraction < 1.0:
            n = max(1, int(len(descriptions) * sample_fraction))
            descriptions = sample_descriptions(descriptions, n, seed=self.config.seed + 1)
        relevant = {description.key for description in descriptions}
        predictions = [
            label for label in self.classification.labels
            if (label.action_id, label.parameter_name) in relevant
        ]
        gold = gold_from_ground_truth(descriptions, self.ecosystem.ground_truth)
        return evaluate_predictions(predictions, gold)

    def evaluate_policy_framework(self) -> PolicyFrameworkEvaluation:
        """Score the policy framework against generator ground truth."""
        return evaluate_policy_framework(self.policy_report, self.ecosystem.ground_truth)

    # ------------------------------------------------------------------
    def run_all(self) -> Dict[str, object]:
        """Force every stage and analysis to run; return them keyed by name."""
        return {
            "crawl_stats": self.crawl_stats,
            "tool_usage": self.tool_usage,
            "collection": self.collection,
            "coverage": self.coverage,
            "prohibited": self.prohibited,
            "prevalence": self.prevalence,
            "multi_action": self.multi_action,
            "cooccurrence": self.cooccurrence,
            "disclosure": self.disclosure,
            "policy_duplicates": self.policy_duplicates,
        }
