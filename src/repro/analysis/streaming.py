"""Shard-parallel streaming analysis over a sharded corpus store.

The in-memory analyzers (``analyze_crawl_stats`` … ``analyze_disclosure``)
assume the whole :class:`~repro.crawler.corpus.CrawlCorpus` (and, for the
policy analyses, the whole
:class:`~repro.policy.framework.PolicyConsistencyReport`) is resident.  At
100k-GPT scale the corpus lives in a
:class:`~repro.io.shards.ShardedCorpusStore` instead, and this module runs
the same measurements as a **map-reduce** over its shards:

* **GPT-record map** — one task per GPT shard, scheduled on a pluggable
  execution backend (:mod:`repro.exec`), streams the shard's GPT records
  through a fresh set of accumulator objects (``CrawlStatsAccumulator``,
  ``ToolUsageAccumulator``, …, plus an :class:`ActionCatalogAccumulator`
  when the policy analyses need the Action → policy-URL join), holding one
  record at a time;
* **policy-record map** — one task per policy shard: duplicate analysis
  profiles each document shard-locally (MinHash signatures included — see
  :class:`~repro.policy.duplicates.PolicyProfileAccumulator`) and the
  disclosure analysis runs the privacy-policy framework per document,
  folding per-Action outcomes straight into a
  :class:`~repro.analysis.disclosure.DisclosureAccumulator` — the policy
  report itself is never materialized;
* **description-extraction map** — one task per GPT shard collects each
  Action's data descriptions keyed by ``(gpt discovery index, action
  position)``; the reduce reconstructs the exact global description list
  (first-occurrence order over the discovery-ordered corpus) without
  materializing the corpus;
* **classification map** — the global description list is classified in
  batch-aligned chunks (:data:`CLASSIFY_CHUNK_BATCHES`); the classifier's
  fixed inputs (taxonomy, LLM, few-shot store, config) are broadcast once
  on a warm process pool, and chunk labels concatenate in submission order
  to the byte-identical ``classify_many`` result;
* **reduce** — shard partials merge (``accumulator.merge``), near-duplicate
  LSH candidates band over the *union* of the shard signatures and get
  exact-verified against only the candidate texts, and everything is
  finalized with the shared context (classification rollups, party index,
  shard-manifest metadata).

Because every ``finalize`` is order-canonical and the map tasks are pure
per-shard folds, the output is **byte-identical** to running the in-memory
analyzers on the materialized corpus — at any shard count, worker count, or
backend (serial, thread, or process; map tasks and their accumulators are
picklable module-level payloads, so pure-Python accumulation scales across
cores instead of serializing on the GIL).  That invariant is what lets the
measurement suite switch freely between the in-memory and sharded paths,
and it is asserted by ``tests/analysis/test_streaming.py`` and the
determinism matrix.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.collection import CollectionAccumulator
from repro.analysis.cooccurrence import CooccurrenceAccumulator
from repro.analysis.coverage import CoverageAccumulator
from repro.analysis.crawlstats import CrawlStatsAccumulator
from repro.analysis.disclosure import DisclosureAccumulator
from repro.analysis.multiaction import MultiActionAccumulator
from repro.analysis.party import ActionPartyAccumulator, ActionPartyIndex
from repro.analysis.prevalence import PrevalenceAccumulator
from repro.analysis.prohibited import ProhibitedAccumulator, find_offending_actions
from repro.analysis.tools import ToolUsageAccumulator
from repro.classification.descriptions import DataDescription
from repro.classification.results import ClassificationResult, DescriptionLabel
from repro.crawler.corpus import CrawledGPT
from repro.crawler.engine import CrawlEngine, CrawlTask
from repro.exec import ExecutionBackend, WorkerPool, resolve_pool, shared_state
from repro.io.shards import ShardedCorpusStore, shard_index
from repro.policy.duplicates import (
    PolicyProfileAccumulator,
    finalize_duplicate_report,
    normalize_policy_text,
)
from repro.taxonomy.schema import DataTaxonomy

#: Analyses computable by streaming GPT records alone.
CORPUS_STREAM_ANALYSES = (
    "crawl_stats",
    "tool_usage",
    "multi_action",
    "cooccurrence",
)

#: Analyses that additionally need the classification result.
CLASSIFIED_STREAM_ANALYSES = (
    "collection",
    "coverage",
    "prohibited",
    "prevalence",
)

#: Analyses that stream *policy* records (joined against the Action catalog
#: built in the GPT-record pass).  ``disclosure`` additionally runs the
#: policy framework per document and therefore needs the classification and
#: an LLM; ``policy_duplicates`` needs neither.
POLICY_STREAM_ANALYSES = (
    "policy_duplicates",
    "disclosure",
)

#: Everything this engine can compute.
STREAMABLE_ANALYSES = (
    CORPUS_STREAM_ANALYSES + CLASSIFIED_STREAM_ANALYSES + POLICY_STREAM_ANALYSES
)


class ActionCatalogAccumulator:
    """Streaming Action registry: id → (policy URL, API domain, title).

    The compact join key between GPT shards (where Actions live) and policy
    shards (where their documents live).  Memory is O(#distinct Actions);
    duplicate embeddings of an Action carry identical specifications, so
    first-write-wins merging is order-insensitive.
    """

    def __init__(self) -> None:
        self.actions: Dict[str, Tuple[Optional[str], str, str]] = {}

    def update(self, gpt: CrawledGPT) -> None:
        """Register every Action of one GPT record."""
        for action in gpt.actions:
            self.actions.setdefault(
                action.action_id, (action.legal_info_url, action.domain, action.title)
            )

    def merge(self, other: "ActionCatalogAccumulator") -> None:
        """Fold another shard's registry into this one."""
        for action_id, row in other.actions.items():
            self.actions.setdefault(action_id, row)


def _accumulator_factories(
    names: Sequence[str],
    collected: Optional[Mapping[str, List[Tuple[str, str]]]],
    offending: Optional[Mapping[str, List[Tuple[str, str]]]],
    include_party: bool = True,
) -> Dict[str, Callable[[], object]]:
    """Per-shard accumulator factories for the requested GPT-record analyses.

    The party accumulator rides along whenever any analysis needs the
    first-/third-party rollup; the Action catalog rides along for the policy
    analyses.  ``collected`` / ``offending`` are the classification rollups,
    passed as plain mappings so the factory set can be rebuilt inside a
    process-pool worker from a picklable payload.
    """
    factories: Dict[str, Callable[[], object]] = {}
    if include_party and {"tool_usage", "collection", "prevalence", "party"} & set(names):
        factories["party"] = ActionPartyAccumulator
    if "crawl_stats" in names:
        factories["crawl_stats"] = CrawlStatsAccumulator
    if "tool_usage" in names:
        factories["tool_usage"] = ToolUsageAccumulator
    if "multi_action" in names:
        factories["multi_action"] = MultiActionAccumulator
    if "cooccurrence" in names:
        factories["cooccurrence"] = CooccurrenceAccumulator
    if "action_catalog" in names:
        factories["action_catalog"] = ActionCatalogAccumulator
    if collected is not None:
        if "collection" in names:
            factories["collection"] = lambda: CollectionAccumulator(collected)
        if "prohibited" in names:
            factories["prohibited"] = lambda: ProhibitedAccumulator(offending, collected)
        if "prevalence" in names:
            factories["prevalence"] = PrevalenceAccumulator
    return factories


def _map_gpt_shard(
    root: str,
    index: int,
    names: Tuple[str, ...],
    collected: Optional[Mapping[str, List[Tuple[str, str]]]],
    offending: Optional[Mapping[str, List[Tuple[str, str]]]],
    include_party: bool = True,
) -> Dict[str, object]:
    """Fold one GPT shard's record stream through fresh accumulators.

    Module-level with plain-data arguments so the task (and its returned
    accumulators) pickle cleanly onto the process backend; thread and serial
    backends call it in-process with zero copies.
    """
    store = ShardedCorpusStore(root)
    factories = _accumulator_factories(names, collected, offending, include_party)
    accumulators = {name: factory() for name, factory in factories.items()}
    for gpt in store.iter_shard_gpts(index):
        for accumulator in accumulators.values():
            accumulator.update(gpt)
    return accumulators


def _map_policy_shard(
    root: str,
    index: int,
    want_duplicates: bool,
    disclosure_spec: Optional[Dict[str, object]],
) -> Dict[str, object]:
    """Fold one policy shard: duplicate profiles and/or disclosure analyses.

    ``disclosure_spec`` carries the shard's slice of the URL → Actions join
    (``url_actions``: url → [(action id, collected types, title)]) plus the
    policy framework's inputs (taxonomy, LLM, single-pass flag); the
    framework runs per document and its per-Action outcomes fold straight
    into a :class:`DisclosureAccumulator` — no policy report is built.
    """
    store = ShardedCorpusStore(root)
    out: Dict[str, object] = {}
    duplicates = PolicyProfileAccumulator() if want_duplicates else None
    disclosure = None
    analyzer = None
    url_actions: Mapping[str, Sequence] = {}
    if disclosure_spec is not None:
        from repro.policy.framework import PrivacyPolicyAnalyzer

        disclosure = DisclosureAccumulator()
        analyzer = PrivacyPolicyAnalyzer(
            disclosure_spec["taxonomy"],
            disclosure_spec["llm"],
            single_pass=bool(disclosure_spec["single_pass"]),
        )
        url_actions = disclosure_spec["url_actions"]
    for result in store.iter_shard_policies(index):
        if duplicates is not None:
            duplicates.update(result)
        if disclosure is not None and result.ok and result.text is not None:
            for action_id, collected_types, title in url_actions.get(result.url, ()):
                disclosure.update(
                    analyzer.analyze_action(
                        action_id=action_id,
                        policy_url=result.url,
                        policy_text=result.text,
                        collected_types=collected_types,
                    ),
                    name=title,
                )
    if duplicates is not None:
        out["policy_duplicates"] = duplicates
    if disclosure is not None:
        out["disclosure"] = disclosure
    return out


#: Broadcast keys for the two shared map-pass payloads (see
#: :class:`~repro.exec.WorkerPool`): tasks carry only their shard index.
STREAM_GPT_KEY = "stream/gpt-pass"
STREAM_POLICY_KEY = "stream/policy-pass"


def _map_gpt_shard_shared(index: int) -> Dict[str, object]:
    """Warm-pool GPT map task: everything but the shard index is broadcast."""
    spec = shared_state(STREAM_GPT_KEY)
    return _map_gpt_shard(
        spec["root"],
        index,
        spec["names"],
        spec["collected"],
        spec["offending"],
        spec["include_party"],
    )


def _map_policy_shard_shared(index: int) -> Dict[str, object]:
    """Warm-pool policy map task: the per-shard spec slice is broadcast."""
    spec = shared_state(STREAM_POLICY_KEY)
    disclosure_specs = spec["disclosure_specs"]
    return _map_policy_shard(
        spec["root"],
        index,
        spec["want_duplicates"],
        disclosure_specs[index] if disclosure_specs else None,
    )


# ---------------------------------------------------------------------------
# Shard-partitioned classification
# ---------------------------------------------------------------------------
#: Chunk size of the classification map, in classifier batches.  Chunk
#: boundaries always land on batch boundaries, so batch composition — and
#: with it every prompt, since the pooled few-shot example union is built
#: per batch — is identical to one global ``classify_many`` call at any
#: chunk count, worker count, or backend.
CLASSIFY_CHUNK_BATCHES = 8

#: Broadcast key for the shared classifier inputs (taxonomy, LLM, few-shot
#: store, config): classification tasks carry only their description chunk.
STREAM_CLASSIFY_KEY = "stream/classify-pass"


def _map_extract_shard(root: str, index: int) -> List[Tuple[int, int, str, List[Tuple[str, str]]]]:
    """Extract one GPT shard's data descriptions with global order keys.

    Returns one row per *first in-shard occurrence* of an Action:
    ``(gpt discovery index, action position, action id, [(parameter name,
    description text), …])``.  The coordinator keeps the globally smallest
    key per Action and sorts — which reproduces, exactly, the
    first-occurrence order of ``CrawlCorpus.unique_actions()`` over the
    discovery-ordered corpus, and therefore the exact description list of
    :func:`repro.classification.descriptions.extract_descriptions`.
    """
    store = ShardedCorpusStore(root)
    rows: List[Tuple[int, int, str, List[Tuple[str, str]]]] = []
    seen: set = set()
    for discovery_index, gpt in store.iter_shard_gpts_indexed(index):
        for position, action in enumerate(gpt.actions):
            if action.action_id in seen:
                continue
            seen.add(action.action_id)
            pairs = [
                (name, text)
                for (name, _), text in zip(action.parameters, action.data_descriptions())
            ]
            rows.append((discovery_index, position, action.action_id, pairs))
    return rows


def _classify_chunk(
    spec: Mapping[str, object], chunk: Sequence[DataDescription]
) -> List[DescriptionLabel]:
    """Classify one batch-aligned chunk of the global description list.

    The classifier's only inputs besides the chunk are fixed shared state
    (taxonomy, LLM, few-shot store, config) and every simulated-LLM
    decision is a pure function of its prompt, so chunk results concatenate
    to the byte-identical global classification.
    """
    from repro.classification.classifier import DataCollectionClassifier

    classifier = DataCollectionClassifier(
        taxonomy=spec["taxonomy"],
        llm=spec["llm"],
        fewshot_store=spec["fewshot_store"],
        config=spec["config"],
    )
    return classifier.classify_many(list(chunk)).labels


def _classify_chunk_shared(chunk: Sequence[DataDescription]) -> List[DescriptionLabel]:
    """Warm-pool classification task: the classifier inputs are broadcast."""
    return _classify_chunk(shared_state(STREAM_CLASSIFY_KEY), chunk)


class ShardAnalysisRunner:
    """Runs streaming analyses shard-parallel on an execution backend.

    Parameters
    ----------
    store:
        The sharded corpus to analyze.
    workers:
        Worker-pool size for shard tasks (``<= 1`` streams shards
        sequentially).  Results are identical at any worker count.
    backend:
        ``"serial"`` / ``"thread"`` / ``"process"``, a backend instance, or
        ``None`` (serial at ``workers <= 1``, threads above).  The process
        backend gives pure-Python accumulation real CPU scaling; results
        are identical on every backend.  ``"process"`` builds an **owned**
        warm :class:`~repro.exec.WorkerPool` (close the runner, or use it
        as a context manager, to release the workers); passing a
        ``WorkerPool``/``PoolHandle`` instance reuses the caller's warm
        workers across analysis passes.  On a warm pool the map-pass
        payloads (classification rollups, the URL → Actions join) are
        broadcast via the pool initializer, so per-task pickles carry a
        shard index instead of the rollups; a pass whose payload changed
        restarts the pool once rather than re-shipping per task.
    """

    def __init__(
        self,
        store: ShardedCorpusStore,
        workers: int = 0,
        backend: Union[str, ExecutionBackend, None] = None,
    ) -> None:
        self.store = store
        self.workers = workers
        self._owned_pool: Optional[WorkerPool] = None
        if backend == "process":
            self._owned_pool = WorkerPool(kind="process", workers=max(1, workers))
            backend = self._owned_pool
        self.engine = CrawlEngine(workers=workers, backend=backend)

    @property
    def pool(self) -> Optional[WorkerPool]:
        """The warm pool behind the engine's backend, if any."""
        return resolve_pool(self.engine.backend)

    def close(self) -> None:
        """Release the owned warm pool (idempotent; borrowed pools stay up)."""
        if self._owned_pool is not None:
            self._owned_pool.close()
            self._owned_pool = None

    def __enter__(self) -> "ShardAnalysisRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _run_merge(self, tasks: List[CrawlTask]) -> Dict[str, object]:
        """Run shard map tasks and merge partials in shard order."""
        merged: Dict[str, object] = {}
        for outcome in self.engine.run(tasks):
            if not outcome.ok:
                raise RuntimeError(f"shard analysis {outcome.key!r} failed: {outcome.error}")
            # Reduce: merge shard partials in shard (submission) order.
            for name, accumulator in outcome.result.items():
                if name in merged:
                    merged[name].merge(accumulator)
                else:
                    merged[name] = accumulator
        return merged

    def extract_descriptions(self) -> List[DataDescription]:
        """Extract every data description, shard-parallel, in global order.

        One map task per GPT shard collects the shard's first-occurrence
        Actions keyed by ``(gpt discovery index, action position)``; the
        reduce keeps the globally smallest key per Action and sorts.  The
        result is the exact list ``extract_descriptions(corpus)`` would
        return for the materialized discovery-order corpus — without ever
        materializing it.
        """
        tasks = [
            CrawlTask(
                key=f"extract-{index:05d}",
                fn=_map_extract_shard,
                args=(str(self.store.root), index),
            )
            for index in range(self.store.n_shards)
        ]
        best: Dict[str, Tuple[Tuple[int, int], List[Tuple[str, str]]]] = {}
        for outcome in self.engine.run(tasks):
            if not outcome.ok:
                raise RuntimeError(
                    f"description extraction {outcome.key!r} failed: {outcome.error}"
                )
            for gpt_index, position, action_id, pairs in outcome.result:
                key = (gpt_index, position)
                current = best.get(action_id)
                if current is None or key < current[0]:
                    best[action_id] = (key, pairs)
        descriptions: List[DataDescription] = []
        for action_id, (_, pairs) in sorted(best.items(), key=lambda item: item[1][0]):
            for name, text in pairs:
                descriptions.append(
                    DataDescription(action_id=action_id, parameter_name=name, text=text)
                )
        return descriptions

    def classify(
        self,
        taxonomy: DataTaxonomy,
        llm: object,
        fewshot_store: object,
        config: object,
        descriptions: Optional[Sequence[DataDescription]] = None,
    ) -> ClassificationResult:
        """Shard-partitioned classification of the store's descriptions.

        The global (discovery-order) description list is cut into chunks of
        ``CLASSIFY_CHUNK_BATCHES`` classifier batches and classified as map
        tasks; chunk labels concatenate in submission order.  Because chunk
        boundaries are batch boundaries and the classifier inputs are fixed
        shared state (broadcast once on a warm process pool), the result is
        byte-identical to ``classify_many`` over the whole list — at any
        backend, worker count, or shard count.
        """
        if descriptions is None:
            descriptions = self.extract_descriptions()
        result = ClassificationResult()
        if not descriptions:
            return result
        chunk_size = max(1, int(getattr(config, "batch_size", 8))) * CLASSIFY_CHUNK_BATCHES
        chunks = [
            list(descriptions[start : start + chunk_size])
            for start in range(0, len(descriptions), chunk_size)
        ]
        spec = {
            "taxonomy": taxonomy,
            "llm": llm,
            "fewshot_store": fewshot_store,
            "config": config,
        }
        pool = self.pool
        if pool is not None and pool.is_process:
            pool.broadcast(STREAM_CLASSIFY_KEY, spec)
            tasks = [
                CrawlTask(
                    key=f"classify-{index:05d}", fn=_classify_chunk_shared, args=(chunk,)
                )
                for index, chunk in enumerate(chunks)
            ]
        else:
            tasks = [
                CrawlTask(
                    key=f"classify-{index:05d}", fn=_classify_chunk, args=(spec, chunk)
                )
                for index, chunk in enumerate(chunks)
            ]
        for outcome in self.engine.run(tasks):
            if not outcome.ok:
                raise RuntimeError(
                    f"classification chunk {outcome.key!r} failed: {outcome.error}"
                )
            result.labels.extend(outcome.result)
        return result

    def _fetch_normalized_texts(self, urls: Sequence[str]) -> Dict[str, str]:
        """Re-read (only) the requested policy texts, normalized.

        Touches just the shards the URLs hash to — the near-duplicate
        verification's memory is O(candidate texts), not O(policy corpus).
        """
        wanted = set(urls)
        shards = {shard_index(url, self.store.n_shards) for url in wanted}
        texts: Dict[str, str] = {}
        for shard in sorted(shards):
            for result in self.store.iter_shard_policies(shard):
                if result.url in wanted and result.text is not None:
                    texts[result.url] = normalize_policy_text(result.text)
        return texts

    def run(
        self,
        names: Optional[Sequence[str]] = None,
        classification: Optional[ClassificationResult] = None,
        taxonomy: Optional[DataTaxonomy] = None,
        party_index: Optional[ActionPartyIndex] = None,
        llm: Optional[object] = None,
        single_pass_policy: bool = False,
        near_duplicate_method: str = "auto",
        action_catalog: Optional[ActionCatalogAccumulator] = None,
    ) -> Dict[str, object]:
        """Compute the requested analyses in one pass per record kind.

        GPT-record analyses (and the Action catalog, when a policy analysis
        needs it) share a single pass over the GPT shards; ``disclosure``
        and ``policy_duplicates`` then share a single pass over the policy
        shards.  Returns analysis objects keyed by name (plus ``"party"``
        whenever a party rollup was built or supplied, and
        ``"action_catalog"`` whenever one was built or passed in — hand it
        back via ``action_catalog`` on a later call to skip re-scanning the
        GPT shards).  Requesting a classification-dependent analysis
        without ``classification`` — or ``disclosure`` without
        ``llm``/``taxonomy`` — raises.
        """
        requested = list(names if names is not None else STREAMABLE_ANALYSES)
        unknown = [name for name in requested if name not in STREAMABLE_ANALYSES + ("party",)]
        if unknown:
            raise ValueError(f"unknown streaming analyses: {', '.join(sorted(unknown))}")
        needs_classification = [
            name for name in requested
            if name in CLASSIFIED_STREAM_ANALYSES or name == "disclosure"
        ]
        if needs_classification and classification is None:
            raise ValueError(
                "classification required for: " + ", ".join(sorted(needs_classification))
            )
        if "disclosure" in requested and (llm is None or taxonomy is None):
            raise ValueError("disclosure requires an llm and a taxonomy")

        policy_names = [name for name in requested if name in POLICY_STREAM_ANALYSES]
        gpt_names = [name for name in requested if name not in POLICY_STREAM_ANALYSES]
        factory_names = list(gpt_names)
        if policy_names and action_catalog is None:
            factory_names.append("action_catalog")

        collected = None
        offending = None
        if classification is not None:
            collected = classification.action_data_types()
            if "prohibited" in requested:
                offending = find_offending_actions(classification, taxonomy)
        include_party = party_index is None

        # GPT-record map: one task per shard, fanned out on the backend.
        pool = self.pool
        use_broadcast = pool is not None and pool.is_process
        merged: Dict[str, object] = {}
        if _accumulator_factories(factory_names, collected, offending, include_party):
            if use_broadcast:
                pool.broadcast(
                    STREAM_GPT_KEY,
                    {
                        "root": str(self.store.root),
                        "names": tuple(factory_names),
                        "collected": collected,
                        "offending": offending,
                        "include_party": include_party,
                    },
                )
                tasks = [
                    CrawlTask(
                        key=f"shard-{index:05d}",
                        fn=_map_gpt_shard_shared,
                        args=(index,),
                    )
                    for index in range(self.store.n_shards)
                ]
            else:
                tasks = [
                    CrawlTask(
                        key=f"shard-{index:05d}",
                        fn=_map_gpt_shard,
                        args=(
                            str(self.store.root),
                            index,
                            tuple(factory_names),
                            collected,
                            offending,
                            include_party,
                        ),
                    )
                    for index in range(self.store.n_shards)
                ]
            merged = self._run_merge(tasks)
        catalog: Optional[ActionCatalogAccumulator] = (
            merged.pop("action_catalog", None) or action_catalog
        )

        # Policy-record map: duplicates profile + disclosure framework run.
        if policy_names:
            disclosure_specs: Optional[List[Dict[str, object]]] = None
            if "disclosure" in policy_names:
                # Shard-slice the URL → Actions join so each task carries
                # only the entries its policy shard can encounter.
                url_actions: List[Dict[str, List]] = [
                    {} for _ in range(self.store.n_shards)
                ]
                for action_id in catalog.actions:
                    url, _domain, title = catalog.actions[action_id]
                    collected_types = collected.get(action_id, [])
                    if not url or not collected_types:
                        continue
                    shard = shard_index(url, self.store.n_shards)
                    url_actions[shard].setdefault(url, []).append(
                        (action_id, collected_types, title)
                    )
                disclosure_specs = [
                    {
                        "taxonomy": taxonomy,
                        "llm": llm,
                        "single_pass": single_pass_policy,
                        "url_actions": url_actions[index],
                    }
                    for index in range(self.store.n_shards)
                ]
            if use_broadcast:
                pool.broadcast(
                    STREAM_POLICY_KEY,
                    {
                        "root": str(self.store.root),
                        "want_duplicates": "policy_duplicates" in policy_names,
                        "disclosure_specs": disclosure_specs,
                    },
                )
                tasks = [
                    CrawlTask(
                        key=f"policies-{index:05d}",
                        fn=_map_policy_shard_shared,
                        args=(index,),
                    )
                    for index in range(self.store.n_shards)
                ]
            else:
                tasks = [
                    CrawlTask(
                        key=f"policies-{index:05d}",
                        fn=_map_policy_shard,
                        args=(
                            str(self.store.root),
                            index,
                            "policy_duplicates" in policy_names,
                            disclosure_specs[index] if disclosure_specs else None,
                        ),
                    )
                    for index in range(self.store.n_shards)
                ]
            merged.update(self._run_merge(tasks))

        # Finalize with the shared corpus-level context.
        results: Dict[str, object] = {}
        if party_index is None and "party" in merged:
            party_index = merged["party"].finalize()
        if party_index is not None:
            results["party"] = party_index
        if catalog is not None:
            results["action_catalog"] = catalog
        manifest = self.store.manifest
        if "crawl_stats" in merged:
            results["crawl_stats"] = merged["crawl_stats"].finalize(
                store_counts=manifest.store_counts,
                unresolved_gpt_ids=manifest.unresolved_gpt_ids,
                available_policy_urls=self.store.available_policy_urls(),
            )
        if "tool_usage" in merged:
            results["tool_usage"] = merged["tool_usage"].finalize(party_index)
        if "multi_action" in merged:
            results["multi_action"] = merged["multi_action"].finalize()
        if "cooccurrence" in merged:
            results["cooccurrence"] = merged["cooccurrence"].finalize()
        if "collection" in merged:
            results["collection"] = merged["collection"].finalize(party_index)
        if "prohibited" in merged:
            results["prohibited"] = merged["prohibited"].finalize()
        if "prevalence" in merged:
            results["prevalence"] = merged["prevalence"].finalize(classification, party_index)
        if "disclosure" in merged:
            results["disclosure"] = merged["disclosure"].finalize()
        if "policy_duplicates" in merged:
            action_policy_urls = {
                action_id: row[0]
                for action_id, row in catalog.actions.items()
                if row[0]
            }
            action_domains = {
                action_id: row[1] for action_id, row in catalog.actions.items()
            }
            results["policy_duplicates"] = finalize_duplicate_report(
                action_policy_urls,
                action_domains,
                merged["policy_duplicates"].profiles,
                self._fetch_normalized_texts,
                near_duplicate_method=near_duplicate_method,
            )
        if "coverage" in requested:
            # Coverage streams classification labels, not GPT records; fold
            # it inline (the accumulator still supports chunked merging).
            coverage = CoverageAccumulator()
            for label in classification.labels:
                coverage.update(label)
            results["coverage"] = coverage.finalize()
        return results


def analyze_shards(
    store: ShardedCorpusStore,
    names: Optional[Sequence[str]] = None,
    workers: int = 0,
    classification: Optional[ClassificationResult] = None,
    taxonomy: Optional[DataTaxonomy] = None,
    party_index: Optional[ActionPartyIndex] = None,
    backend: Union[str, ExecutionBackend, None] = None,
    llm: Optional[object] = None,
    single_pass_policy: bool = False,
    near_duplicate_method: str = "auto",
) -> Dict[str, object]:
    """Convenience wrapper: build a runner and compute analyses in one pass.

    A ``backend="process"`` runner owns a warm pool for the duration of the
    call; the ``with`` block releases its workers on the way out.  Pass a
    :class:`~repro.exec.WorkerPool` (or handle) instead to keep workers
    warm across calls.
    """
    with ShardAnalysisRunner(store, workers=workers, backend=backend) as runner:
        return runner.run(
            names,
            classification=classification,
            taxonomy=taxonomy,
            party_index=party_index,
            llm=llm,
            single_pass_policy=single_pass_policy,
            near_duplicate_method=near_duplicate_method,
        )


def classify_shards(
    store: ShardedCorpusStore,
    taxonomy: DataTaxonomy,
    llm: object,
    fewshot_store: object,
    config: object,
    workers: int = 0,
    backend: Union[str, ExecutionBackend, None] = None,
    descriptions: Optional[Sequence[DataDescription]] = None,
) -> ClassificationResult:
    """Convenience wrapper: shard-partitioned classification in one call.

    Extraction (when ``descriptions`` is not supplied) and classification
    run on the same runner/backend; see :meth:`ShardAnalysisRunner.classify`
    for the byte-identity argument.
    """
    with ShardAnalysisRunner(store, workers=workers, backend=backend) as runner:
        return runner.classify(
            taxonomy, llm, fewshot_store, config, descriptions=descriptions
        )
