"""Shard-parallel streaming analysis over a sharded corpus store.

The in-memory analyzers (``analyze_crawl_stats`` … ``analyze_cooccurrence``)
assume the whole :class:`~repro.crawler.corpus.CrawlCorpus` is resident.  At
100k-GPT scale the corpus lives in a
:class:`~repro.io.shards.ShardedCorpusStore` instead, and this module runs
the same measurements as a **map-reduce** over its shards:

* **map** — one task per shard, scheduled on the PR-2
  :class:`~repro.crawler.engine.CrawlEngine` worker pool, streams the
  shard's GPT records through a fresh set of accumulator objects
  (``CrawlStatsAccumulator``, ``ToolUsageAccumulator``, …), holding one
  record at a time;
* **reduce** — shard partials are merged (``accumulator.merge``) in shard
  order, then finalized with the shared context (the classification
  rollups, the party index, the shard manifest's corpus metadata).

Because every accumulator's ``finalize`` is order-canonical and the map
tasks are pure per-shard folds, the output is **byte-identical** to running
the single-pass analyzers on the materialized corpus — at any shard count
and any worker count.  That invariant is what lets the measurement suite
switch between the in-memory and sharded paths freely, and it is asserted
by ``tests/analysis/test_streaming.py`` and the determinism matrix.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence

from repro.analysis.collection import CollectionAccumulator
from repro.analysis.cooccurrence import CooccurrenceAccumulator
from repro.analysis.coverage import CoverageAccumulator
from repro.analysis.crawlstats import CrawlStatsAccumulator
from repro.analysis.multiaction import MultiActionAccumulator
from repro.analysis.party import ActionPartyAccumulator, ActionPartyIndex
from repro.analysis.prevalence import PrevalenceAccumulator
from repro.analysis.prohibited import ProhibitedAccumulator, find_offending_actions
from repro.analysis.tools import ToolUsageAccumulator
from repro.classification.results import ClassificationResult
from repro.crawler.engine import CrawlEngine, CrawlTask
from repro.io.shards import ShardedCorpusStore
from repro.taxonomy.schema import DataTaxonomy

#: Analyses computable by streaming GPT records alone.
CORPUS_STREAM_ANALYSES = (
    "crawl_stats",
    "tool_usage",
    "multi_action",
    "cooccurrence",
)

#: Analyses that additionally need the classification result.
CLASSIFIED_STREAM_ANALYSES = (
    "collection",
    "coverage",
    "prohibited",
    "prevalence",
)

#: Everything this engine can compute (disclosure and policy-duplicate
#: analyses consume the policy report / policy texts, not GPT records, and
#: stay on the single-pass path).
STREAMABLE_ANALYSES = CORPUS_STREAM_ANALYSES + CLASSIFIED_STREAM_ANALYSES


def _accumulator_factories(
    names: Sequence[str],
    classification: Optional[ClassificationResult],
    taxonomy: Optional[DataTaxonomy],
) -> Dict[str, Callable[[], object]]:
    """Per-shard accumulator factories for the requested analyses.

    The party accumulator rides along whenever any analysis needs the
    first-/third-party rollup.  Classification rollups are computed once
    here and shared (read-only) by every shard worker.
    """
    factories: Dict[str, Callable[[], object]] = {}
    if {"tool_usage", "collection", "prevalence", "party"} & set(names):
        factories["party"] = ActionPartyAccumulator
    if "crawl_stats" in names:
        factories["crawl_stats"] = CrawlStatsAccumulator
    if "tool_usage" in names:
        factories["tool_usage"] = ToolUsageAccumulator
    if "multi_action" in names:
        factories["multi_action"] = MultiActionAccumulator
    if "cooccurrence" in names:
        factories["cooccurrence"] = CooccurrenceAccumulator
    if classification is not None:
        collected = classification.action_data_types()
        if "collection" in names:
            factories["collection"] = lambda: CollectionAccumulator(collected)
        if "prohibited" in names:
            offending = find_offending_actions(classification, taxonomy)
            factories["prohibited"] = lambda: ProhibitedAccumulator(offending, collected)
        if "prevalence" in names:
            factories["prevalence"] = PrevalenceAccumulator
    return factories


class ShardAnalysisRunner:
    """Runs streaming analyses shard-parallel on the crawl engine pool.

    Parameters
    ----------
    store:
        The sharded corpus to analyze.
    workers:
        Worker-pool size for shard tasks (``<= 1`` streams shards
        sequentially).  Results are identical at any worker count.
    """

    def __init__(self, store: ShardedCorpusStore, workers: int = 0) -> None:
        self.store = store
        self.workers = workers
        self.engine = CrawlEngine(workers=workers)

    # ------------------------------------------------------------------
    def _map_shard(
        self, index: int, factories: Mapping[str, Callable[[], object]]
    ) -> Dict[str, object]:
        """Fold one shard's GPT stream through fresh accumulators."""
        accumulators = {name: factory() for name, factory in factories.items()}
        for gpt in self.store.iter_shard_gpts(index):
            for accumulator in accumulators.values():
                accumulator.update(gpt)
        return accumulators

    def run(
        self,
        names: Optional[Sequence[str]] = None,
        classification: Optional[ClassificationResult] = None,
        taxonomy: Optional[DataTaxonomy] = None,
        party_index: Optional[ActionPartyIndex] = None,
    ) -> Dict[str, object]:
        """Compute the requested analyses in **one** pass over the shards.

        Returns analysis objects keyed by name (plus ``"party"`` whenever a
        party rollup was built or supplied).  Requesting a
        classification-dependent analysis without ``classification`` raises.
        """
        requested = list(names if names is not None else STREAMABLE_ANALYSES)
        unknown = [name for name in requested if name not in STREAMABLE_ANALYSES + ("party",)]
        if unknown:
            raise ValueError(f"unknown streaming analyses: {', '.join(sorted(unknown))}")
        needs_classification = [
            name for name in requested if name in CLASSIFIED_STREAM_ANALYSES
        ]
        if needs_classification and classification is None:
            raise ValueError(
                "classification required for: " + ", ".join(sorted(needs_classification))
            )

        factories = _accumulator_factories(requested, classification, taxonomy)
        if party_index is not None:
            factories.pop("party", None)

        # Map: one task per shard, fanned out on the engine's worker pool.
        # Outcomes come back in submission (= shard) order.
        merged: Dict[str, object] = {}
        if factories:
            tasks = [
                CrawlTask(
                    key=f"shard-{index:05d}",
                    fn=lambda i=index: self._map_shard(i, factories),
                )
                for index in range(self.store.n_shards)
            ]
            for outcome in self.engine.run(tasks):
                if not outcome.ok:
                    raise RuntimeError(f"shard analysis {outcome.key!r} failed: {outcome.error}")
                # Reduce: merge shard partials in shard order.
                for name, accumulator in outcome.result.items():
                    if name in merged:
                        merged[name].merge(accumulator)
                    else:
                        merged[name] = accumulator

        # Finalize with the shared corpus-level context.
        results: Dict[str, object] = {}
        if party_index is None and "party" in merged:
            party_index = merged["party"].finalize()
        if party_index is not None:
            results["party"] = party_index
        manifest = self.store.manifest
        if "crawl_stats" in merged:
            results["crawl_stats"] = merged["crawl_stats"].finalize(
                store_counts=manifest.store_counts,
                unresolved_gpt_ids=manifest.unresolved_gpt_ids,
                available_policy_urls=self.store.available_policy_urls(),
            )
        if "tool_usage" in merged:
            results["tool_usage"] = merged["tool_usage"].finalize(party_index)
        if "multi_action" in merged:
            results["multi_action"] = merged["multi_action"].finalize()
        if "cooccurrence" in merged:
            results["cooccurrence"] = merged["cooccurrence"].finalize()
        if "collection" in merged:
            results["collection"] = merged["collection"].finalize(party_index)
        if "prohibited" in merged:
            results["prohibited"] = merged["prohibited"].finalize()
        if "prevalence" in merged:
            results["prevalence"] = merged["prevalence"].finalize(classification, party_index)
        if "coverage" in requested:
            # Coverage streams classification labels, not GPT records; fold
            # it inline (the accumulator still supports chunked merging).
            coverage = CoverageAccumulator()
            for label in classification.labels:
                coverage.update(label)
            results["coverage"] = coverage.finalize()
        return results


def analyze_shards(
    store: ShardedCorpusStore,
    names: Optional[Sequence[str]] = None,
    workers: int = 0,
    classification: Optional[ClassificationResult] = None,
    taxonomy: Optional[DataTaxonomy] = None,
    party_index: Optional[ActionPartyIndex] = None,
) -> Dict[str, object]:
    """Convenience wrapper: build a runner and compute analyses in one pass."""
    return ShardAnalysisRunner(store, workers=workers).run(
        names, classification=classification, taxonomy=taxonomy, party_index=party_index
    )
