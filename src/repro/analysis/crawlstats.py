"""Crawl statistics (Table 1 and Section 4.1.1 crawl numbers)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.crawler.corpus import CrawlCorpus, CrawledGPT


@dataclass
class CrawlStatsAnalysis:
    """Per-store and corpus-wide crawl statistics."""

    per_store_counts: Dict[str, int] = field(default_factory=dict)
    total_unique_gpts: int = 0
    n_unique_actions: int = 0
    n_action_gpts: int = 0
    n_unresolved_identifiers: int = 0
    policy_availability: float = 0.0

    def sorted_store_counts(self) -> List[Tuple[str, int]]:
        """Store counts sorted descending, as Table 1 presents them."""
        return sorted(self.per_store_counts.items(), key=lambda item: (-item[1], item[0]))

    @property
    def action_gpt_share(self) -> float:
        """Fraction of crawled GPTs that embed Actions."""
        if not self.total_unique_gpts:
            return 0.0
        return self.n_action_gpts / self.total_unique_gpts


class CrawlStatsAccumulator:
    """Streaming builder of :class:`CrawlStatsAnalysis`.

    Per-GPT state is reduced to counters and id sets (memory is O(#unique
    Actions), not O(corpus)); corpus-level inputs — store counts, unresolved
    identifiers, which policy URLs resolved — arrive at :meth:`finalize`
    because they live in the shard manifest / policy shards rather than in
    GPT records.
    """

    def __init__(self) -> None:
        self.n_gpts = 0
        self.n_action_gpts = 0
        #: action id → its ``legal_info_url`` (first occurrence; duplicate
        #: embeddings of an Action carry identical specifications).
        self.action_legal_urls: Dict[str, Optional[str]] = {}

    def update(self, gpt: CrawledGPT) -> None:
        """Fold one GPT record into the counters."""
        self.n_gpts += 1
        if gpt.has_actions:
            self.n_action_gpts += 1
        for action in gpt.actions:
            self.action_legal_urls.setdefault(action.action_id, action.legal_info_url)

    def merge(self, other: "CrawlStatsAccumulator") -> None:
        """Fold another shard's partial counters into this one."""
        self.n_gpts += other.n_gpts
        self.n_action_gpts += other.n_action_gpts
        for action_id, url in other.action_legal_urls.items():
            self.action_legal_urls.setdefault(action_id, url)

    def finalize(
        self,
        store_counts: Dict[str, int],
        unresolved_gpt_ids: List[str],
        available_policy_urls: Set[str],
    ) -> CrawlStatsAnalysis:
        """Combine streamed counters with corpus-level metadata."""
        with_policy_url = [url for url in self.action_legal_urls.values() if url]
        available = sum(1 for url in with_policy_url if url in available_policy_urls)
        return CrawlStatsAnalysis(
            per_store_counts=dict(store_counts),
            total_unique_gpts=self.n_gpts,
            n_unique_actions=len(self.action_legal_urls),
            n_action_gpts=self.n_action_gpts,
            n_unresolved_identifiers=len(unresolved_gpt_ids),
            policy_availability=available / len(with_policy_url) if with_policy_url else 0.0,
        )


def analyze_crawl_stats(corpus: CrawlCorpus) -> CrawlStatsAnalysis:
    """Compute Table 1-style crawl statistics for a corpus."""
    accumulator = CrawlStatsAccumulator()
    for gpt in corpus.iter_gpts():
        accumulator.update(gpt)
    available = {
        url for url, result in corpus.policies.items() if result.ok and result.text is not None
    }
    return accumulator.finalize(
        store_counts=corpus.store_counts,
        unresolved_gpt_ids=corpus.unresolved_gpt_ids,
        available_policy_urls=available,
    )
