"""Crawl statistics (Table 1 and Section 4.1.1 crawl numbers)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.crawler.corpus import CrawlCorpus


@dataclass
class CrawlStatsAnalysis:
    """Per-store and corpus-wide crawl statistics."""

    per_store_counts: Dict[str, int] = field(default_factory=dict)
    total_unique_gpts: int = 0
    n_unique_actions: int = 0
    n_action_gpts: int = 0
    n_unresolved_identifiers: int = 0
    policy_availability: float = 0.0

    def sorted_store_counts(self) -> List[Tuple[str, int]]:
        """Store counts sorted descending, as Table 1 presents them."""
        return sorted(self.per_store_counts.items(), key=lambda item: (-item[1], item[0]))

    @property
    def action_gpt_share(self) -> float:
        """Fraction of crawled GPTs that embed Actions."""
        if not self.total_unique_gpts:
            return 0.0
        return self.n_action_gpts / self.total_unique_gpts


def analyze_crawl_stats(corpus: CrawlCorpus) -> CrawlStatsAnalysis:
    """Compute Table 1-style crawl statistics for a corpus."""
    return CrawlStatsAnalysis(
        per_store_counts=dict(corpus.store_counts),
        total_unique_gpts=corpus.total_unique_gpts(),
        n_unique_actions=corpus.n_unique_actions(),
        n_action_gpts=len(corpus.action_embedding_gpts()),
        n_unresolved_identifiers=len(corpus.unresolved_gpt_ids),
        policy_availability=corpus.policy_availability(),
    )
