"""Data-collection trend analysis (Table 4, Figure 7, Section 4.2.1).

Given the classification result, measures which data types are collected by
first- and third-party Actions, how many distinct data items each Action
collects, and the headline statistics the paper reports (≈50% of Actions
collect 5+ items, ≈20% collect 10+, third-party Actions collect ≈6% more on
average).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.party import ActionPartyIndex, build_party_index
from repro.classification.results import ClassificationResult
from repro.io import CorpusSource


@dataclass(frozen=True)
class DataTypeCollectionRow:
    """One row of Table 4."""

    category: str
    data_type: str
    first_party_share: float
    third_party_share: float
    gpt_share: float

    def as_tuple(self) -> Tuple[str, str, float, float, float]:
        """The row as a plain tuple (for table rendering)."""
        return (
            self.category,
            self.data_type,
            self.first_party_share,
            self.third_party_share,
            self.gpt_share,
        )


@dataclass
class CollectionAnalysis:
    """Corpus-wide data-collection statistics."""

    #: Distinct data items per Action id.
    items_per_action: Dict[str, int] = field(default_factory=dict)
    #: Action id → party ("first"/"third").
    action_party: Dict[str, str] = field(default_factory=dict)
    #: Table 4 rows (all observed data types).
    rows: List[DataTypeCollectionRow] = field(default_factory=list)
    #: Fraction of Action-embedding GPTs collecting data per category.
    category_gpt_shares: Dict[str, float] = field(default_factory=dict)
    n_action_gpts: int = 0

    # ------------------------------------------------------------------
    def item_counts(self, party: Optional[str] = None) -> List[int]:
        """Distinct item counts per Action, optionally filtered by party."""
        counts = []
        for action_id, count in self.items_per_action.items():
            if party is not None and self.action_party.get(action_id) != party:
                continue
            counts.append(count)
        return counts

    def share_with_at_least(self, threshold: int, party: Optional[str] = None) -> float:
        """Fraction of Actions collecting at least ``threshold`` data items."""
        counts = self.item_counts(party)
        if not counts:
            return 0.0
        return sum(1 for count in counts if count >= threshold) / len(counts)

    def mean_items(self, party: Optional[str] = None) -> float:
        """Mean number of distinct data items per Action."""
        counts = self.item_counts(party)
        return float(np.mean(counts)) if counts else 0.0

    def third_party_excess(self) -> float:
        """Relative excess of third- over first-party mean item counts.

        The paper reports third-party Actions collecting 6.03% more data on
        average (Section 4.2.1).
        """
        first = self.mean_items("first")
        third = self.mean_items("third")
        if first <= 0:
            return 0.0
        return (third - first) / first

    def item_count_cdf(self, party: Optional[str] = None) -> List[Tuple[int, float]]:
        """The CDF plotted in Figure 7 as ``(count, fraction ≤ count)`` points."""
        counts = sorted(self.item_counts(party))
        if not counts:
            return []
        total = len(counts)
        cdf: List[Tuple[int, float]] = []
        for threshold in range(0, max(counts) + 1):
            cdf.append((threshold, sum(1 for count in counts if count <= threshold) / total))
        return cdf

    def top_rows(self, min_gpt_share: float = 0.001) -> List[DataTypeCollectionRow]:
        """Rows whose GPT share clears the paper's 0.1% frequency threshold."""
        return [row for row in self.rows if row.gpt_share >= min_gpt_share]

    def row_for(self, category: str, data_type: str) -> Optional[DataTypeCollectionRow]:
        """Look up one Table 4 row."""
        for row in self.rows:
            if row.category == category and row.data_type == data_type:
                return row
        return None

    def n_categories_observed(self) -> int:
        """Number of distinct categories observed in the corpus."""
        return len({row.category for row in self.rows})

    def n_types_observed(self) -> int:
        """Number of distinct data types observed in the corpus."""
        return len({(row.category, row.data_type) for row in self.rows})


class CollectionAccumulator:
    """Streaming builder of the per-GPT half of :class:`CollectionAnalysis`.

    ``collected_by_action`` (the classification rollup) is a fixed lookup
    shared by every shard worker; the accumulator itself only keeps type /
    category counters and the set of Action ids seen, so memory is bounded
    by the number of distinct Actions and data types, never by the corpus.
    :meth:`finalize` is order-canonical (sorted key iteration), making
    sharded and unsharded runs byte-identical.
    """

    def __init__(self, collected_by_action: Dict[str, List[Tuple[str, str]]]) -> None:
        self.collected_by_action = collected_by_action
        self.n_action_gpts = 0
        self.gpt_counts: Counter = Counter()
        self.category_gpt_counts: Counter = Counter()
        self.seen_action_ids: set = set()

    def update(self, gpt) -> None:
        """Fold one GPT's collected-type footprint into the counters."""
        if not gpt.has_actions:
            return
        self.n_action_gpts += 1
        gpt_types = set()
        gpt_categories = set()
        for action in gpt.actions:
            self.seen_action_ids.add(action.action_id)
            for key in self.collected_by_action.get(action.action_id, []):
                gpt_types.add(key)
                gpt_categories.add(key[0])
        for key in gpt_types:
            self.gpt_counts[key] += 1
        for category in gpt_categories:
            self.category_gpt_counts[category] += 1

    def merge(self, other: "CollectionAccumulator") -> None:
        """Fold another shard's partial counters into this one."""
        self.n_action_gpts += other.n_action_gpts
        self.gpt_counts.update(other.gpt_counts)
        self.category_gpt_counts.update(other.category_gpt_counts)
        self.seen_action_ids.update(other.seen_action_ids)

    def finalize(self, party_index: ActionPartyIndex) -> CollectionAnalysis:
        """Combine the streamed counters with the action-level rollups."""
        analysis = CollectionAnalysis()
        collected_by_action = self.collected_by_action
        for action_id, types in collected_by_action.items():
            analysis.items_per_action[action_id] = len(types)
            analysis.action_party[action_id] = party_index.party_of_action(action_id)

        # Actions that appear in the corpus but whose descriptions all fell to
        # ``Other`` still count as Actions collecting zero classified items.
        for action_id in sorted(self.seen_action_ids):
            analysis.items_per_action.setdefault(action_id, 0)
            analysis.action_party.setdefault(action_id, party_index.party_of_action(action_id))

        first_actions = [a for a, party in analysis.action_party.items() if party == "first"]
        third_actions = [a for a, party in analysis.action_party.items() if party == "third"]
        analysis.n_action_gpts = self.n_action_gpts

        # Per-type collection shares (action-level: no GPT iteration needed).
        first_counts: Counter = Counter()
        third_counts: Counter = Counter()
        for action_id, types in collected_by_action.items():
            target = (
                first_counts if analysis.action_party.get(action_id) == "first" else third_counts
            )
            for key in types:
                target[key] += 1

        observed_types = set(first_counts) | set(third_counts) | set(self.gpt_counts)
        n_first = max(1, len(first_actions))
        n_third = max(1, len(third_actions))
        n_gpts = max(1, self.n_action_gpts)
        rows = []
        for category, data_type in sorted(observed_types):
            rows.append(
                DataTypeCollectionRow(
                    category=category,
                    data_type=data_type,
                    first_party_share=first_counts[(category, data_type)] / n_first,
                    third_party_share=third_counts[(category, data_type)] / n_third,
                    gpt_share=self.gpt_counts[(category, data_type)] / n_gpts,
                )
            )
        rows.sort(key=lambda row: -row.gpt_share)
        analysis.rows = rows
        analysis.category_gpt_shares = {
            category: self.category_gpt_counts[category] / n_gpts
            for category in sorted(self.category_gpt_counts)
        }
        return analysis


def analyze_collection(
    corpus: CorpusSource,
    classification: ClassificationResult,
    party_index: Optional[ActionPartyIndex] = None,
) -> CollectionAnalysis:
    """Compute Table 4 / Figure 7 statistics from a classified corpus."""
    party_index = party_index or build_party_index(corpus)
    accumulator = CollectionAccumulator(classification.action_data_types())
    for gpt in corpus.iter_records():
        accumulator.update(gpt)
    return accumulator.finalize(party_index)
