"""Prevalent third-party Action analysis (Table 5, Section 4.3).

Identifies Actions embedded by many GPTs, together with their functionality,
how many data types they collect, examples of the collected data, and the
fraction of Action-embedding GPTs that embed them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.party import ActionPartyIndex, build_party_index
from repro.classification.results import ClassificationResult
from repro.crawler.corpus import CrawlCorpus


@dataclass(frozen=True)
class PrevalentActionRow:
    """One row of Table 5."""

    action_id: str
    name: str
    functionality: str
    n_data_types: int
    example_data_types: Tuple[str, ...]
    gpt_share: float
    n_gpts: int


@dataclass
class PrevalenceAnalysis:
    """Third-party Actions ranked by the share of GPTs embedding them."""

    rows: List[PrevalentActionRow] = field(default_factory=list)
    n_action_gpts: int = 0

    def top(self, n: int = 15) -> List[PrevalentActionRow]:
        """The ``n`` most widely embedded third-party Actions."""
        return self.rows[:n]

    def row_by_name(self, name: str) -> Optional[PrevalentActionRow]:
        """Find a row by (case-insensitive) Action name substring."""
        wanted = name.lower()
        for row in self.rows:
            if wanted in row.name.lower():
                return row
        return None


def analyze_prevalence(
    corpus: CrawlCorpus,
    classification: ClassificationResult,
    party_index: Optional[ActionPartyIndex] = None,
    min_gpts: int = 2,
    third_party_only: bool = True,
) -> PrevalenceAnalysis:
    """Compute Table 5 from a classified corpus.

    Only Actions embedded by at least ``min_gpts`` GPTs are reported; by
    default only third-party Actions are listed (as in the paper).
    """
    party_index = party_index or build_party_index(corpus)
    analysis = PrevalenceAnalysis()
    action_gpts = corpus.action_embedding_gpts()
    analysis.n_action_gpts = len(action_gpts)
    if not action_gpts:
        return analysis

    embedding_counts: Dict[str, int] = {}
    for gpt in action_gpts:
        for action_id in {action.action_id for action in gpt.actions}:
            embedding_counts[action_id] = embedding_counts.get(action_id, 0) + 1

    collected_by_action = classification.action_data_types()
    actions = corpus.unique_actions()
    rows: List[PrevalentActionRow] = []
    for action_id, count in embedding_counts.items():
        if count < min_gpts:
            continue
        if third_party_only and party_index.party_of_action(action_id) != "third":
            continue
        action = actions.get(action_id)
        if action is None:
            continue
        collected = collected_by_action.get(action_id, [])
        rows.append(
            PrevalentActionRow(
                action_id=action_id,
                name=action.title,
                functionality=action.functionality or "Unknown",
                n_data_types=len(collected),
                example_data_types=tuple(data_type for _, data_type in collected[:3]),
                gpt_share=count / len(action_gpts),
                n_gpts=count,
            )
        )
    rows.sort(key=lambda row: (-row.gpt_share, row.name))
    analysis.rows = rows
    return analysis
