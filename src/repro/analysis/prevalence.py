"""Prevalent third-party Action analysis (Table 5, Section 4.3).

Identifies Actions embedded by many GPTs, together with their functionality,
how many data types they collect, examples of the collected data, and the
fraction of Action-embedding GPTs that embed them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.party import ActionPartyIndex, build_party_index
from repro.classification.results import ClassificationResult
from repro.io import CorpusSource


@dataclass(frozen=True)
class PrevalentActionRow:
    """One row of Table 5."""

    action_id: str
    name: str
    functionality: str
    n_data_types: int
    example_data_types: Tuple[str, ...]
    gpt_share: float
    n_gpts: int


@dataclass
class PrevalenceAnalysis:
    """Third-party Actions ranked by the share of GPTs embedding them."""

    rows: List[PrevalentActionRow] = field(default_factory=list)
    n_action_gpts: int = 0

    def top(self, n: int = 15) -> List[PrevalentActionRow]:
        """The ``n`` most widely embedded third-party Actions."""
        return self.rows[:n]

    def row_by_name(self, name: str) -> Optional[PrevalentActionRow]:
        """Find a row by (case-insensitive) Action name substring."""
        wanted = name.lower()
        for row in self.rows:
            if wanted in row.name.lower():
                return row
        return None


class PrevalenceAccumulator:
    """Streaming builder of :class:`PrevalenceAnalysis`.

    Keeps per-Action embedding counts and a light ``action_id → (title,
    functionality)`` registry — never a GPT record — so memory is bounded
    by the number of distinct Actions.  :meth:`finalize` iterates sorted
    ids and sorts rows with a full tiebreak, making sharded and unsharded
    runs byte-identical.
    """

    def __init__(self) -> None:
        self.n_action_gpts = 0
        self.embedding_counts: Dict[str, int] = {}
        #: action id → (title, functionality), first occurrence wins
        #: (duplicate embeddings carry identical specifications).
        self.action_info: Dict[str, Tuple[str, str]] = {}

    def update(self, gpt) -> None:
        """Fold one GPT's Action embeddings into the counts."""
        if not gpt.has_actions:
            return
        self.n_action_gpts += 1
        seen = set()
        for action in gpt.actions:
            self.action_info.setdefault(action.action_id, (action.title, action.functionality))
            if action.action_id not in seen:
                seen.add(action.action_id)
                self.embedding_counts[action.action_id] = (
                    self.embedding_counts.get(action.action_id, 0) + 1
                )

    def merge(self, other: "PrevalenceAccumulator") -> None:
        """Fold another shard's partial counts into this one."""
        self.n_action_gpts += other.n_action_gpts
        for action_id, count in other.embedding_counts.items():
            self.embedding_counts[action_id] = self.embedding_counts.get(action_id, 0) + count
        for action_id, info in other.action_info.items():
            self.action_info.setdefault(action_id, info)

    def finalize(
        self,
        classification: ClassificationResult,
        party_index: ActionPartyIndex,
        min_gpts: int = 2,
        third_party_only: bool = True,
    ) -> PrevalenceAnalysis:
        """Rank the accumulated Actions into Table 5."""
        analysis = PrevalenceAnalysis()
        analysis.n_action_gpts = self.n_action_gpts
        if not self.n_action_gpts:
            return analysis

        collected_by_action = classification.action_data_types()
        rows: List[PrevalentActionRow] = []
        for action_id in sorted(self.embedding_counts):
            count = self.embedding_counts[action_id]
            if count < min_gpts:
                continue
            if third_party_only and party_index.party_of_action(action_id) != "third":
                continue
            title, functionality = self.action_info[action_id]
            collected = collected_by_action.get(action_id, [])
            rows.append(
                PrevalentActionRow(
                    action_id=action_id,
                    name=title,
                    functionality=functionality or "Unknown",
                    n_data_types=len(collected),
                    example_data_types=tuple(data_type for _, data_type in collected[:3]),
                    gpt_share=count / self.n_action_gpts,
                    n_gpts=count,
                )
            )
        rows.sort(key=lambda row: (-row.gpt_share, row.name, row.action_id))
        analysis.rows = rows
        return analysis


def analyze_prevalence(
    corpus: CorpusSource,
    classification: ClassificationResult,
    party_index: Optional[ActionPartyIndex] = None,
    min_gpts: int = 2,
    third_party_only: bool = True,
) -> PrevalenceAnalysis:
    """Compute Table 5 from a classified corpus.

    Only Actions embedded by at least ``min_gpts`` GPTs are reported; by
    default only third-party Actions are listed (as in the paper).
    """
    party_index = party_index or build_party_index(corpus)
    accumulator = PrevalenceAccumulator()
    for gpt in corpus.iter_records():
        accumulator.update(gpt)
    return accumulator.finalize(
        classification, party_index, min_gpts=min_gpts, third_party_only=third_party_only
    )
