"""Prohibited-data collection analysis (Section 4.2.2).

OpenAI's usage policies forbid collecting sensitive credentials such as API
keys and passwords; the paper finds 9.1% of Action-embedding GPTs include
Actions that collect security credentials.  This analysis flags every GPT and
Action collecting prohibited or sensitive data types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.classification.results import ClassificationResult
from repro.crawler.corpus import CrawlCorpus
from repro.taxonomy.builtin import PROHIBITED_CATEGORIES
from repro.taxonomy.schema import DataTaxonomy


@dataclass
class ProhibitedDataAnalysis:
    """Who collects data that platform policy prohibits."""

    #: GPT ids embedding at least one Action that collects prohibited data.
    offending_gpts: List[str] = field(default_factory=list)
    #: Action ids collecting prohibited data and the offending types.
    offending_actions: Dict[str, List[Tuple[str, str]]] = field(default_factory=dict)
    #: GPT ids embedding Actions that collect health data (case study).
    health_collecting_gpts: List[str] = field(default_factory=list)
    n_action_gpts: int = 0

    @property
    def offending_gpt_share(self) -> float:
        """Fraction of Action-embedding GPTs collecting prohibited data."""
        if not self.n_action_gpts:
            return 0.0
        return len(self.offending_gpts) / self.n_action_gpts

    @property
    def health_gpt_share(self) -> float:
        """Fraction of Action-embedding GPTs collecting health data."""
        if not self.n_action_gpts:
            return 0.0
        return len(self.health_collecting_gpts) / self.n_action_gpts


def analyze_prohibited(
    corpus: CrawlCorpus,
    classification: ClassificationResult,
    taxonomy: Optional[DataTaxonomy] = None,
    prohibited_categories: Tuple[str, ...] = PROHIBITED_CATEGORIES,
) -> ProhibitedDataAnalysis:
    """Find GPTs and Actions collecting prohibited (and health) data."""
    analysis = ProhibitedDataAnalysis()
    collected_by_action = classification.action_data_types()

    prohibited_types: Set[Tuple[str, str]] = set()
    if taxonomy is not None:
        prohibited_types = {data_type.key for data_type in taxonomy.prohibited_types()}

    def is_prohibited(key: Tuple[str, str]) -> bool:
        if key in prohibited_types:
            return True
        return key[0] in prohibited_categories

    for action_id, types in collected_by_action.items():
        offending = [key for key in types if is_prohibited(key)]
        if offending:
            analysis.offending_actions[action_id] = offending

    action_gpts = corpus.action_embedding_gpts()
    analysis.n_action_gpts = len(action_gpts)
    for gpt in action_gpts:
        action_ids = {action.action_id for action in gpt.actions}
        if action_ids & set(analysis.offending_actions):
            analysis.offending_gpts.append(gpt.gpt_id)
        collects_health = any(
            key[0] == "Health information"
            for action_id in action_ids
            for key in collected_by_action.get(action_id, [])
        )
        if collects_health:
            analysis.health_collecting_gpts.append(gpt.gpt_id)
    return analysis
