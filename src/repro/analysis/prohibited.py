"""Prohibited-data collection analysis (Section 4.2.2).

OpenAI's usage policies forbid collecting sensitive credentials such as API
keys and passwords; the paper finds 9.1% of Action-embedding GPTs include
Actions that collect security credentials.  This analysis flags every GPT and
Action collecting prohibited or sensitive data types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.classification.results import ClassificationResult
from repro.io import CorpusSource
from repro.taxonomy.builtin import PROHIBITED_CATEGORIES
from repro.taxonomy.schema import DataTaxonomy


@dataclass
class ProhibitedDataAnalysis:
    """Who collects data that platform policy prohibits."""

    #: GPT ids embedding at least one Action that collects prohibited data.
    offending_gpts: List[str] = field(default_factory=list)
    #: Action ids collecting prohibited data and the offending types.
    offending_actions: Dict[str, List[Tuple[str, str]]] = field(default_factory=dict)
    #: GPT ids embedding Actions that collect health data (case study).
    health_collecting_gpts: List[str] = field(default_factory=list)
    n_action_gpts: int = 0

    @property
    def offending_gpt_share(self) -> float:
        """Fraction of Action-embedding GPTs collecting prohibited data."""
        if not self.n_action_gpts:
            return 0.0
        return len(self.offending_gpts) / self.n_action_gpts

    @property
    def health_gpt_share(self) -> float:
        """Fraction of Action-embedding GPTs collecting health data."""
        if not self.n_action_gpts:
            return 0.0
        return len(self.health_collecting_gpts) / self.n_action_gpts


def find_offending_actions(
    classification: ClassificationResult,
    taxonomy: Optional[DataTaxonomy] = None,
    prohibited_categories: Tuple[str, ...] = PROHIBITED_CATEGORIES,
) -> Dict[str, List[Tuple[str, str]]]:
    """Action id → offending ``(category, type)`` pairs (action-level rollup)."""
    prohibited_types: Set[Tuple[str, str]] = set()
    if taxonomy is not None:
        prohibited_types = {data_type.key for data_type in taxonomy.prohibited_types()}

    def is_prohibited(key: Tuple[str, str]) -> bool:
        if key in prohibited_types:
            return True
        return key[0] in prohibited_categories

    offending_actions: Dict[str, List[Tuple[str, str]]] = {}
    for action_id, types in classification.action_data_types().items():
        offending = [key for key in types if is_prohibited(key)]
        if offending:
            offending_actions[action_id] = offending
    return offending_actions


class ProhibitedAccumulator:
    """Streaming builder of :class:`ProhibitedDataAnalysis`.

    The action-level rollups (which Actions offend, which collect health
    data) are fixed lookups computed once from the classification; the
    accumulator only collects the ids of GPTs touching them, so memory is
    bounded by the number of flagged GPTs.  :meth:`finalize` sorts the id
    lists, making sharded and unsharded runs byte-identical.
    """

    def __init__(
        self,
        offending_actions: Dict[str, List[Tuple[str, str]]],
        collected_by_action: Dict[str, List[Tuple[str, str]]],
    ) -> None:
        self.offending_actions = offending_actions
        self._offending_ids = set(offending_actions)
        self._health_ids = {
            action_id
            for action_id, types in collected_by_action.items()
            if any(key[0] == "Health information" for key in types)
        }
        self.n_action_gpts = 0
        self.offending_gpts: List[str] = []
        self.health_collecting_gpts: List[str] = []

    def update(self, gpt) -> None:
        """Check one GPT's Actions against the flagged-action rollups."""
        if not gpt.has_actions:
            return
        self.n_action_gpts += 1
        action_ids = {action.action_id for action in gpt.actions}
        if action_ids & self._offending_ids:
            self.offending_gpts.append(gpt.gpt_id)
        if action_ids & self._health_ids:
            self.health_collecting_gpts.append(gpt.gpt_id)

    def merge(self, other: "ProhibitedAccumulator") -> None:
        """Fold another shard's partial id lists into this one."""
        self.n_action_gpts += other.n_action_gpts
        self.offending_gpts.extend(other.offending_gpts)
        self.health_collecting_gpts.extend(other.health_collecting_gpts)

    def finalize(self) -> ProhibitedDataAnalysis:
        """Emit the analysis with canonically ordered GPT id lists."""
        return ProhibitedDataAnalysis(
            offending_gpts=sorted(self.offending_gpts),
            offending_actions=dict(self.offending_actions),
            health_collecting_gpts=sorted(self.health_collecting_gpts),
            n_action_gpts=self.n_action_gpts,
        )


def analyze_prohibited(
    corpus: CorpusSource,
    classification: ClassificationResult,
    taxonomy: Optional[DataTaxonomy] = None,
    prohibited_categories: Tuple[str, ...] = PROHIBITED_CATEGORIES,
) -> ProhibitedDataAnalysis:
    """Find GPTs and Actions collecting prohibited (and health) data."""
    accumulator = ProhibitedAccumulator(
        find_offending_actions(classification, taxonomy, prohibited_categories),
        classification.action_data_types(),
    )
    for gpt in corpus.iter_records():
        accumulator.update(gpt)
    return accumulator.finalize()
