"""Measurement analyses over a classified crawl corpus.

Each module reproduces one slice of the paper's evaluation (Section 4 and 5):
crawl statistics (Table 1), tool usage (Table 3), data-collection trends
(Table 4, Figure 7), taxonomy coverage (Figure 3), prohibited-data collection
(Section 4.2.2), prevalent third-party Actions (Table 5), multi-Action GPTs
and the co-occurrence graph (Section 4.4, Figure 8), and disclosure
consistency (Figures 9–12, Table 7).  :class:`MeasurementSuite` runs the whole
pipeline once and exposes every analysis from a single object.

Every corpus-driven analyzer is built on a streaming *accumulator*
(``update``/``merge``/``finalize``) so the same measurement runs either as a
single pass over an in-memory corpus or shard-parallel over a
:class:`~repro.io.shards.ShardedCorpusStore`
(:mod:`repro.analysis.streaming`), with byte-identical results.
"""

from repro.analysis.party import ActionPartyIndex, build_party_index
from repro.analysis.crawlstats import CrawlStatsAnalysis, analyze_crawl_stats
from repro.analysis.tools import ToolUsageAnalysis, analyze_tool_usage
from repro.analysis.collection import (
    CollectionAnalysis,
    DataTypeCollectionRow,
    analyze_collection,
)
from repro.analysis.coverage import CoverageAnalysis, analyze_coverage
from repro.analysis.prohibited import ProhibitedDataAnalysis, analyze_prohibited
from repro.analysis.prevalence import PrevalentActionRow, PrevalenceAnalysis, analyze_prevalence
from repro.analysis.multiaction import MultiActionAnalysis, analyze_multi_action
from repro.analysis.cooccurrence import CooccurrenceAnalysis, analyze_cooccurrence
from repro.analysis.disclosure import (
    DisclosureAnalysis,
    analyze_disclosure,
)
from repro.analysis.streaming import (
    STREAMABLE_ANALYSES,
    ShardAnalysisRunner,
    analyze_shards,
)
from repro.analysis.suite import MeasurementSuite

__all__ = [
    "ActionPartyIndex",
    "build_party_index",
    "STREAMABLE_ANALYSES",
    "ShardAnalysisRunner",
    "analyze_shards",
    "CrawlStatsAnalysis",
    "analyze_crawl_stats",
    "ToolUsageAnalysis",
    "analyze_tool_usage",
    "CollectionAnalysis",
    "DataTypeCollectionRow",
    "analyze_collection",
    "CoverageAnalysis",
    "analyze_coverage",
    "ProhibitedDataAnalysis",
    "analyze_prohibited",
    "PrevalentActionRow",
    "PrevalenceAnalysis",
    "analyze_prevalence",
    "MultiActionAnalysis",
    "analyze_multi_action",
    "CooccurrenceAnalysis",
    "analyze_cooccurrence",
    "DisclosureAnalysis",
    "analyze_disclosure",
    "MeasurementSuite",
]
