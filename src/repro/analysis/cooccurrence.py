"""Action co-occurrence graph analysis (Figure 8, Section 4.4.2).

Builds an undirected weighted graph whose nodes are Actions and whose edges
connect Actions that co-occur inside the same GPT; edge weights count the
number of GPTs in which the pair co-occurs.  The paper analyzes weighted
degrees, the largest connected component, and which Actions co-occur most
often with the advertising/analytics services.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.io import CorpusSource


@dataclass
class CooccurrenceAnalysis:
    """The co-occurrence graph and derived statistics."""

    graph: nx.Graph = field(default_factory=nx.Graph)
    #: Action id → human-readable name (for labelling prominent nodes).
    names: Dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of Actions appearing in at least one co-occurrence."""
        return self.graph.number_of_nodes()

    @property
    def n_edges(self) -> int:
        """Number of distinct co-occurring Action pairs."""
        return self.graph.number_of_edges()

    def weighted_degree(self, action_id: str) -> int:
        """Weighted degree (sum of co-occurrence counts) of an Action."""
        if action_id not in self.graph:
            return 0
        return int(self.graph.degree(action_id, weight="weight"))

    def degree(self, action_id: str) -> int:
        """Unweighted degree (number of distinct partners) of an Action."""
        if action_id not in self.graph:
            return 0
        return int(self.graph.degree(action_id))

    def top_by_weighted_degree(self, n: int = 10) -> List[Tuple[str, str, int]]:
        """The ``n`` Actions with the highest weighted degree."""
        ranked = sorted(
            ((node, self.weighted_degree(node)) for node in self.graph.nodes),
            key=lambda item: -item[1],
        )
        return [
            (action_id, self.names.get(action_id, action_id), weight)
            for action_id, weight in ranked[:n]
        ]

    def largest_component(self) -> nx.Graph:
        """The largest connected component (the subgraph Figure 8 plots)."""
        if self.graph.number_of_nodes() == 0:
            return nx.Graph()
        components = list(nx.connected_components(self.graph))
        largest = max(components, key=len)
        return self.graph.subgraph(largest).copy()

    def cooccurrence_count(self, action_a: str, action_b: str) -> int:
        """In how many GPTs two Actions co-occur."""
        if self.graph.has_edge(action_a, action_b):
            return int(self.graph[action_a][action_b]["weight"])
        return 0

    def partners_of(self, action_id: str) -> List[Tuple[str, str, int]]:
        """Partners of an Action sorted by co-occurrence weight."""
        if action_id not in self.graph:
            return []
        partners = [
            (neighbor, self.names.get(neighbor, neighbor), int(self.graph[action_id][neighbor]["weight"]))
            for neighbor in self.graph.neighbors(action_id)
        ]
        partners.sort(key=lambda item: -item[2])
        return partners

    def find_by_name(self, name: str) -> Optional[str]:
        """Find an Action id by (case-insensitive) name substring."""
        wanted = name.lower()
        for action_id, action_name in self.names.items():
            if wanted in action_name.lower():
                return action_id
        return None


class CooccurrenceAccumulator:
    """Streaming builder of :class:`CooccurrenceAnalysis`.

    Accumulates edge weights as a plain ``(a, b) → count`` map (O(#pairs))
    and materializes the graph only at :meth:`finalize`, inserting edges in
    sorted order so sharded and unsharded runs build identical graphs.
    """

    def __init__(self) -> None:
        #: action id → title, first occurrence wins (titles are identical
        #: across embeddings of the same Action).
        self.names: Dict[str, str] = {}
        self.edge_weights: Dict[Tuple[str, str], int] = {}

    def update(self, gpt) -> None:
        """Fold one GPT's Action pairs into the edge weights."""
        for action in gpt.actions:
            self.names.setdefault(action.action_id, action.title)
        action_ids = sorted({action.action_id for action in gpt.actions})
        if len(action_ids) < 2:
            return
        for index, action_a in enumerate(action_ids):
            for action_b in action_ids[index + 1:]:
                key = (action_a, action_b)
                self.edge_weights[key] = self.edge_weights.get(key, 0) + 1

    def merge(self, other: "CooccurrenceAccumulator") -> None:
        """Fold another shard's partial edge weights into this one."""
        for action_id, title in other.names.items():
            self.names.setdefault(action_id, title)
        for key, weight in other.edge_weights.items():
            self.edge_weights[key] = self.edge_weights.get(key, 0) + weight

    def finalize(self) -> CooccurrenceAnalysis:
        """Materialize the graph (edges inserted in canonical order)."""
        analysis = CooccurrenceAnalysis()
        for action_id in sorted(self.names):
            analysis.names[action_id] = self.names[action_id]
        for (action_a, action_b) in sorted(self.edge_weights):
            analysis.graph.add_edge(
                action_a, action_b, weight=self.edge_weights[(action_a, action_b)]
            )
        return analysis


def analyze_cooccurrence(corpus: CorpusSource) -> CooccurrenceAnalysis:
    """Build the Action co-occurrence graph for a corpus."""
    accumulator = CooccurrenceAccumulator()
    for gpt in corpus.iter_records():
        accumulator.update(gpt)
    return accumulator.finalize()
