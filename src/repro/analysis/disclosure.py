"""Disclosure-consistency analysis (Figures 9–12, Table 7, Section 5.2).

Aggregates the privacy-policy framework's output into:

* per-category and per-data-type label distributions (Figures 9 and 10);
* the per-Action CDF of label fractions (Figure 11);
* per-Action consistency versus collected-item count with the Spearman
  correlation the paper reports (Figure 12);
* the Actions with five or more clearly disclosed data types (Table 7) and the
  share of Actions whose whole data collection is consistent (Section 5.2.3).

:class:`DisclosureAccumulator` is the streaming core: per-Action analyses
(:class:`~repro.policy.framework.ActionPolicyAnalysis`) fold in one at a
time — in **any** order — and :meth:`~DisclosureAccumulator.finalize` emits
an order-canonical :class:`DisclosureAnalysis` (actions, categories, and
data types iterate sorted, ties broken by id).  That is what lets the
shard-partitioned policy analyzer (:mod:`repro.analysis.streaming`) compute
disclosure over policy shards, where Actions arrive in shard order, and
still match the in-memory path byte for byte: :func:`analyze_disclosure`
runs on the same accumulator, so both paths share one canonical ordering.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.crawler.corpus import CrawlCorpus
from repro.policy.framework import PolicyConsistencyReport
from repro.policy.labels import ConsistencyLabel

#: Label order used for rendering distributions.
LABEL_ORDER: Tuple[ConsistencyLabel, ...] = (
    ConsistencyLabel.CLEAR,
    ConsistencyLabel.VAGUE,
    ConsistencyLabel.AMBIGUOUS,
    ConsistencyLabel.INCORRECT,
    ConsistencyLabel.OMITTED,
)


@dataclass(frozen=True)
class ConsistentActionRow:
    """One row of Table 7 (Actions with many consistent disclosures)."""

    action_id: str
    name: str
    clear: int
    vague: int
    total: int


@dataclass
class DisclosureAnalysis:
    """Aggregated disclosure-consistency measurements."""

    #: Category → label → fraction (rows of the Figure 9 heat map).
    category_distributions: Dict[str, Dict[ConsistencyLabel, float]] = field(default_factory=dict)
    #: ``(category, type)`` → label → count (Figure 10, for prevalent types).
    type_label_counts: Dict[Tuple[str, str], Dict[ConsistencyLabel, int]] = field(default_factory=dict)
    #: Per-Action fraction of each label (Figure 11).
    action_label_fractions: Dict[str, Dict[ConsistencyLabel, float]] = field(default_factory=dict)
    #: Per-Action (item count, consistency fraction) pairs (Figure 12).
    consistency_vs_items: List[Tuple[int, float]] = field(default_factory=list)
    #: Table 7 rows.
    consistent_actions: List[ConsistentActionRow] = field(default_factory=list)
    n_actions_analyzed: int = 0
    fully_consistent_share: float = 0.0
    majority_consistent_share: float = 0.0

    # ------------------------------------------------------------------
    def overall_distribution(self) -> Dict[ConsistencyLabel, float]:
        """Corpus-wide fraction of each label."""
        counts: Counter = Counter()
        for label_counts in self.type_label_counts.values():
            for label, count in label_counts.items():
                counts[label] += count
        total = sum(counts.values())
        if not total:
            return {label: 0.0 for label in LABEL_ORDER}
        return {label: counts[label] / total for label in LABEL_ORDER}

    def omitted_share(self, category: Optional[str] = None) -> float:
        """Fraction of omitted disclosures overall or for one category."""
        if category is None:
            return self.overall_distribution()[ConsistencyLabel.OMITTED]
        return self.category_distributions.get(category, {}).get(ConsistencyLabel.OMITTED, 0.0)

    def prevalent_type_rows(
        self, min_occurrences: int = 20
    ) -> List[Tuple[Tuple[str, str], Dict[ConsistencyLabel, int], int]]:
        """Figure 10 rows: data types with at least ``min_occurrences`` disclosures."""
        rows = []
        for key, counts in self.type_label_counts.items():
            total = sum(counts.values())
            if total >= min_occurrences:
                rows.append((key, counts, total))
        rows.sort(key=lambda row: -row[2])
        return rows

    def label_fraction_cdf(self, label: ConsistencyLabel) -> List[Tuple[float, float]]:
        """Figure 11's CDF of per-Action fractions for one label."""
        fractions = sorted(
            fractions_by_label.get(label, 0.0)
            for fractions_by_label in self.action_label_fractions.values()
        )
        if not fractions:
            return []
        total = len(fractions)
        return [
            (fraction, (index + 1) / total) for index, fraction in enumerate(fractions)
        ]

    def spearman_consistency_vs_items(self) -> float:
        """Spearman correlation between item count and consistency (Figure 12)."""
        if len(self.consistency_vs_items) < 3:
            return 0.0
        items = [count for count, _ in self.consistency_vs_items]
        consistency = [fraction for _, fraction in self.consistency_vs_items]
        if len(set(items)) < 2 or len(set(consistency)) < 2:
            return 0.0
        coefficient, _ = scipy_stats.spearmanr(items, consistency)
        return float(coefficient) if not np.isnan(coefficient) else 0.0

    def top_consistent_actions(self, min_clear: int = 5) -> List[ConsistentActionRow]:
        """Table 7: Actions with at least ``min_clear`` consistent disclosures."""
        return [
            row for row in self.consistent_actions if (row.clear + row.vague) >= min_clear
        ]


class DisclosureAccumulator:
    """Streaming, order-insensitive builder of :class:`DisclosureAnalysis`.

    Holds one compact row per analyzed Action (label counts, item count,
    consistency fraction) plus global per-category / per-type counters —
    never the per-sentence results, and never the policy report.  ``update``
    order does not matter: :meth:`finalize` iterates actions, categories,
    and data types in sorted order and breaks the Table 7 ranking's ties by
    action id, so any shard partitioning of the update stream produces the
    same analysis bytes.
    """

    def __init__(self) -> None:
        #: action id → (name, label counts, n_types, consistency fraction,
        #: fully-consistent flag); one analyzed Action each.
        self._actions: Dict[str, Tuple[str, Counter, int, float, bool]] = {}
        self._category_counts: Dict[str, Counter] = {}
        self._type_counts: Dict[Tuple[str, str], Counter] = {}

    def update(self, action_analysis, name: Optional[str] = None) -> None:
        """Fold one Action's policy analysis in (skips unavailable policies)."""
        if not action_analysis.policy_available:
            return
        label_counter: Counter = Counter()
        for result in action_analysis.results:
            label_counter[result.final_label] += 1
            self._category_counts.setdefault(result.category, Counter())[
                result.final_label
            ] += 1
            self._type_counts.setdefault(
                (result.category, result.data_type), Counter()
            )[result.final_label] += 1
        self._actions[action_analysis.action_id] = (
            name if name is not None else action_analysis.action_id,
            label_counter,
            action_analysis.n_types,
            action_analysis.consistency_fraction(),
            action_analysis.is_fully_consistent(),
        )

    def merge(self, other: "DisclosureAccumulator") -> None:
        """Fold another shard's partial state into this one.

        Shards partition the Action set, so per-action rows never collide;
        category and type counters sum.
        """
        self._actions.update(other._actions)
        for category, counts in other._category_counts.items():
            self._category_counts.setdefault(category, Counter()).update(counts)
        for key, counts in other._type_counts.items():
            self._type_counts.setdefault(key, Counter()).update(counts)

    def finalize(self) -> DisclosureAnalysis:
        """Emit the order-canonical analysis (see class docstring)."""
        analysis = DisclosureAnalysis()
        analysis.n_actions_analyzed = len(self._actions)
        fully_consistent = 0
        majority_consistent = 0
        for action_id in sorted(self._actions):
            name, label_counter, n_types, consistency, fully = self._actions[action_id]
            total = sum(label_counter.values())
            if not total:
                continue
            analysis.action_label_fractions[action_id] = {
                label: label_counter[label] / total for label in LABEL_ORDER
            }
            analysis.consistency_vs_items.append((n_types, consistency))
            if fully:
                fully_consistent += 1
            if consistency > 0.5:
                majority_consistent += 1
            analysis.consistent_actions.append(
                ConsistentActionRow(
                    action_id=action_id,
                    name=name,
                    clear=label_counter[ConsistencyLabel.CLEAR],
                    vague=label_counter[ConsistencyLabel.VAGUE],
                    total=total,
                )
            )
        for category in sorted(self._category_counts):
            counts = self._category_counts[category]
            total = sum(counts.values())
            analysis.category_distributions[category] = {
                label: counts[label] / total for label in LABEL_ORDER
            }
        for key in sorted(self._type_counts):
            counts = self._type_counts[key]
            analysis.type_label_counts[key] = {
                label: counts[label] for label in LABEL_ORDER
            }
        if self._actions:
            analysis.fully_consistent_share = fully_consistent / len(self._actions)
            analysis.majority_consistent_share = majority_consistent / len(self._actions)
        # Stable sort over action-id-sorted rows: ties rank by action id,
        # identically for the in-memory and shard-streamed paths.
        analysis.consistent_actions.sort(key=lambda row: -(row.clear + row.vague))
        return analysis


def analyze_disclosure(
    report: PolicyConsistencyReport,
    corpus: Optional[CrawlCorpus] = None,
) -> DisclosureAnalysis:
    """Aggregate a policy-consistency report into the paper's disclosure metrics.

    Runs on :class:`DisclosureAccumulator`, so the output is byte-identical
    to streaming the same per-Action analyses over policy shards.
    """
    action_names: Dict[str, str] = {}
    if corpus is not None:
        action_names = {
            action_id: action.title for action_id, action in corpus.unique_actions().items()
        }
    accumulator = DisclosureAccumulator()
    for action_analysis in report.actions_with_policies():
        accumulator.update(
            action_analysis, action_names.get(action_analysis.action_id)
        )
    return accumulator.finalize()
