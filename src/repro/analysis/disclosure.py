"""Disclosure-consistency analysis (Figures 9–12, Table 7, Section 5.2).

Aggregates the privacy-policy framework's output into:

* per-category and per-data-type label distributions (Figures 9 and 10);
* the per-Action CDF of label fractions (Figure 11);
* per-Action consistency versus collected-item count with the Spearman
  correlation the paper reports (Figure 12);
* the Actions with five or more clearly disclosed data types (Table 7) and the
  share of Actions whose whole data collection is consistent (Section 5.2.3).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.crawler.corpus import CrawlCorpus
from repro.policy.framework import PolicyConsistencyReport
from repro.policy.labels import ConsistencyLabel

#: Label order used for rendering distributions.
LABEL_ORDER: Tuple[ConsistencyLabel, ...] = (
    ConsistencyLabel.CLEAR,
    ConsistencyLabel.VAGUE,
    ConsistencyLabel.AMBIGUOUS,
    ConsistencyLabel.INCORRECT,
    ConsistencyLabel.OMITTED,
)


@dataclass(frozen=True)
class ConsistentActionRow:
    """One row of Table 7 (Actions with many consistent disclosures)."""

    action_id: str
    name: str
    clear: int
    vague: int
    total: int


@dataclass
class DisclosureAnalysis:
    """Aggregated disclosure-consistency measurements."""

    #: Category → label → fraction (rows of the Figure 9 heat map).
    category_distributions: Dict[str, Dict[ConsistencyLabel, float]] = field(default_factory=dict)
    #: ``(category, type)`` → label → count (Figure 10, for prevalent types).
    type_label_counts: Dict[Tuple[str, str], Dict[ConsistencyLabel, int]] = field(default_factory=dict)
    #: Per-Action fraction of each label (Figure 11).
    action_label_fractions: Dict[str, Dict[ConsistencyLabel, float]] = field(default_factory=dict)
    #: Per-Action (item count, consistency fraction) pairs (Figure 12).
    consistency_vs_items: List[Tuple[int, float]] = field(default_factory=list)
    #: Table 7 rows.
    consistent_actions: List[ConsistentActionRow] = field(default_factory=list)
    n_actions_analyzed: int = 0
    fully_consistent_share: float = 0.0
    majority_consistent_share: float = 0.0

    # ------------------------------------------------------------------
    def overall_distribution(self) -> Dict[ConsistencyLabel, float]:
        """Corpus-wide fraction of each label."""
        counts: Counter = Counter()
        for label_counts in self.type_label_counts.values():
            for label, count in label_counts.items():
                counts[label] += count
        total = sum(counts.values())
        if not total:
            return {label: 0.0 for label in LABEL_ORDER}
        return {label: counts[label] / total for label in LABEL_ORDER}

    def omitted_share(self, category: Optional[str] = None) -> float:
        """Fraction of omitted disclosures overall or for one category."""
        if category is None:
            return self.overall_distribution()[ConsistencyLabel.OMITTED]
        return self.category_distributions.get(category, {}).get(ConsistencyLabel.OMITTED, 0.0)

    def prevalent_type_rows(
        self, min_occurrences: int = 20
    ) -> List[Tuple[Tuple[str, str], Dict[ConsistencyLabel, int], int]]:
        """Figure 10 rows: data types with at least ``min_occurrences`` disclosures."""
        rows = []
        for key, counts in self.type_label_counts.items():
            total = sum(counts.values())
            if total >= min_occurrences:
                rows.append((key, counts, total))
        rows.sort(key=lambda row: -row[2])
        return rows

    def label_fraction_cdf(self, label: ConsistencyLabel) -> List[Tuple[float, float]]:
        """Figure 11's CDF of per-Action fractions for one label."""
        fractions = sorted(
            fractions_by_label.get(label, 0.0)
            for fractions_by_label in self.action_label_fractions.values()
        )
        if not fractions:
            return []
        total = len(fractions)
        return [
            (fraction, (index + 1) / total) for index, fraction in enumerate(fractions)
        ]

    def spearman_consistency_vs_items(self) -> float:
        """Spearman correlation between item count and consistency (Figure 12)."""
        if len(self.consistency_vs_items) < 3:
            return 0.0
        items = [count for count, _ in self.consistency_vs_items]
        consistency = [fraction for _, fraction in self.consistency_vs_items]
        if len(set(items)) < 2 or len(set(consistency)) < 2:
            return 0.0
        coefficient, _ = scipy_stats.spearmanr(items, consistency)
        return float(coefficient) if not np.isnan(coefficient) else 0.0

    def top_consistent_actions(self, min_clear: int = 5) -> List[ConsistentActionRow]:
        """Table 7: Actions with at least ``min_clear`` consistent disclosures."""
        return [
            row for row in self.consistent_actions if (row.clear + row.vague) >= min_clear
        ]


def analyze_disclosure(
    report: PolicyConsistencyReport,
    corpus: Optional[CrawlCorpus] = None,
) -> DisclosureAnalysis:
    """Aggregate a policy-consistency report into the paper's disclosure metrics."""
    analysis = DisclosureAnalysis()
    action_names: Dict[str, str] = {}
    if corpus is not None:
        action_names = {
            action_id: action.title for action_id, action in corpus.unique_actions().items()
        }

    category_counts: Dict[str, Counter] = {}
    analyses = report.actions_with_policies()
    analysis.n_actions_analyzed = len(analyses)
    fully_consistent = 0
    majority_consistent = 0

    for action_analysis in analyses:
        label_counter: Counter = Counter()
        for result in action_analysis.results:
            label_counter[result.final_label] += 1
            category_counts.setdefault(result.category, Counter())[result.final_label] += 1
            type_counts = analysis.type_label_counts.setdefault(
                (result.category, result.data_type), {label: 0 for label in LABEL_ORDER}
            )
            type_counts[result.final_label] += 1
        total = sum(label_counter.values())
        if total:
            analysis.action_label_fractions[action_analysis.action_id] = {
                label: label_counter[label] / total for label in LABEL_ORDER
            }
            analysis.consistency_vs_items.append(
                (action_analysis.n_types, action_analysis.consistency_fraction())
            )
            if action_analysis.is_fully_consistent():
                fully_consistent += 1
            if action_analysis.consistency_fraction() > 0.5:
                majority_consistent += 1
            analysis.consistent_actions.append(
                ConsistentActionRow(
                    action_id=action_analysis.action_id,
                    name=action_names.get(action_analysis.action_id, action_analysis.action_id),
                    clear=label_counter[ConsistencyLabel.CLEAR],
                    vague=label_counter[ConsistencyLabel.VAGUE],
                    total=total,
                )
            )

    for category, counts in category_counts.items():
        total = sum(counts.values())
        analysis.category_distributions[category] = {
            label: counts[label] / total for label in LABEL_ORDER
        }
    if analyses:
        analysis.fully_consistent_share = fully_consistent / len(analyses)
        analysis.majority_consistent_share = majority_consistent / len(analyses)
    analysis.consistent_actions.sort(key=lambda row: -(row.clear + row.vague))
    return analysis
