"""Tool usage analysis (Table 3).

Measures built-in tool adoption across GPTs (Web Browser, DALL-E, Code
Interpreter, Knowledge) plus Action adoption, and splits Actions into first-
and third-party.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.party import ActionPartyIndex, build_party_index
from repro.crawler.corpus import CrawlCorpus

#: Manifest tool-type strings and the display names Table 3 uses.
TOOL_DISPLAY_NAMES: Dict[str, str] = {
    "browser": "Web Browser",
    "dalle": "DALLE",
    "code_interpreter": "Code Interpreter",
    "knowledge": "Knowledge (Files)",
    "action": "Actions",
}


@dataclass
class ToolUsageAnalysis:
    """Adoption of each tool across GPTs and the Action first/third split."""

    n_gpts: int = 0
    tool_shares: Dict[str, float] = field(default_factory=dict)
    any_tool_share: float = 0.0
    online_service_share: float = 0.0
    first_party_action_share: float = 0.0
    third_party_action_share: float = 0.0

    def share(self, tool: str) -> float:
        """Adoption share of one tool (by manifest key)."""
        return self.tool_shares.get(tool, 0.0)


def analyze_tool_usage(
    corpus: CrawlCorpus,
    party_index: Optional[ActionPartyIndex] = None,
) -> ToolUsageAnalysis:
    """Compute Table 3 for a corpus."""
    party_index = party_index or build_party_index(corpus)
    analysis = ToolUsageAnalysis(n_gpts=len(corpus.gpts))
    if not corpus.gpts:
        return analysis

    counters = {key: 0 for key in TOOL_DISPLAY_NAMES}
    any_tool = 0
    online = 0
    for gpt in corpus.iter_gpts():
        has_any = False
        uses_online = False
        for key in ("browser", "dalle", "code_interpreter", "knowledge"):
            if gpt.has_tool(key):
                counters[key] += 1
                has_any = True
                if key == "browser":
                    uses_online = True
        if gpt.has_actions:
            counters["action"] += 1
            has_any = True
            uses_online = True
        if has_any:
            any_tool += 1
        if uses_online:
            online += 1

    analysis.tool_shares = {key: count / analysis.n_gpts for key, count in counters.items()}
    analysis.any_tool_share = any_tool / analysis.n_gpts
    analysis.online_service_share = online / analysis.n_gpts

    first, third = party_index.actions_by_party()
    total_actions = len(first) + len(third)
    if total_actions:
        analysis.first_party_action_share = len(first) / total_actions
        analysis.third_party_action_share = len(third) / total_actions
    return analysis
