"""Tool usage analysis (Table 3).

Measures built-in tool adoption across GPTs (Web Browser, DALL-E, Code
Interpreter, Knowledge) plus Action adoption, and splits Actions into first-
and third-party.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.party import ActionPartyIndex, build_party_index
from repro.io import CorpusSource

#: Manifest tool-type strings and the display names Table 3 uses.
TOOL_DISPLAY_NAMES: Dict[str, str] = {
    "browser": "Web Browser",
    "dalle": "DALLE",
    "code_interpreter": "Code Interpreter",
    "knowledge": "Knowledge (Files)",
    "action": "Actions",
}


@dataclass
class ToolUsageAnalysis:
    """Adoption of each tool across GPTs and the Action first/third split."""

    n_gpts: int = 0
    tool_shares: Dict[str, float] = field(default_factory=dict)
    any_tool_share: float = 0.0
    online_service_share: float = 0.0
    first_party_action_share: float = 0.0
    third_party_action_share: float = 0.0

    def share(self, tool: str) -> float:
        """Adoption share of one tool (by manifest key)."""
        return self.tool_shares.get(tool, 0.0)


class ToolUsageAccumulator:
    """Streaming builder of :class:`ToolUsageAnalysis` (O(1) state per GPT)."""

    def __init__(self) -> None:
        self.n_gpts = 0
        self.counters: Dict[str, int] = {key: 0 for key in TOOL_DISPLAY_NAMES}
        self.any_tool = 0
        self.online = 0

    def update(self, gpt) -> None:
        """Fold one GPT's tool adoption into the counters."""
        self.n_gpts += 1
        has_any = False
        uses_online = False
        for key in ("browser", "dalle", "code_interpreter", "knowledge"):
            if gpt.has_tool(key):
                self.counters[key] += 1
                has_any = True
                if key == "browser":
                    uses_online = True
        if gpt.has_actions:
            self.counters["action"] += 1
            has_any = True
            uses_online = True
        if has_any:
            self.any_tool += 1
        if uses_online:
            self.online += 1

    def merge(self, other: "ToolUsageAccumulator") -> None:
        """Fold another shard's partial counters into this one."""
        self.n_gpts += other.n_gpts
        for key, count in other.counters.items():
            self.counters[key] = self.counters.get(key, 0) + count
        self.any_tool += other.any_tool
        self.online += other.online

    def finalize(self, party_index: ActionPartyIndex) -> ToolUsageAnalysis:
        """Combine the counters with the party rollup into Table 3."""
        analysis = ToolUsageAnalysis(n_gpts=self.n_gpts)
        if not self.n_gpts:
            return analysis
        analysis.tool_shares = {
            key: count / self.n_gpts for key, count in self.counters.items()
        }
        analysis.any_tool_share = self.any_tool / self.n_gpts
        analysis.online_service_share = self.online / self.n_gpts

        first, third = party_index.actions_by_party()
        total_actions = len(first) + len(third)
        if total_actions:
            analysis.first_party_action_share = len(first) / total_actions
            analysis.third_party_action_share = len(third) / total_actions
        return analysis


def analyze_tool_usage(
    corpus: CorpusSource,
    party_index: Optional[ActionPartyIndex] = None,
) -> ToolUsageAnalysis:
    """Compute Table 3 for a corpus."""
    party_index = party_index or build_party_index(corpus)
    accumulator = ToolUsageAccumulator()
    for gpt in corpus.iter_records():
        accumulator.update(gpt)
    return accumulator.finalize(party_index)
