"""First-/third-party attribution of Actions within GPTs.

An Action embedded in a GPT is third-party when the registrable domain of its
API server differs from the registrable domain of the GPT vendor (the author's
declared website, falling back to the manifest's vendor domain) — Section
4.1.1, footnote 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crawler.corpus import CrawledGPT
from repro.io import CorpusSource
from repro.web.thirdparty import ThirdPartyClassifier


@dataclass
class ActionPartyIndex:
    """Attribution of every (GPT, Action) embedding and per-Action rollups."""

    #: ``(gpt_id, action_id)`` → ``"first"`` or ``"third"``.
    embedding_party: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: Action id → party, rolled up across embeddings ("third" wins on mixes,
    #: since an Action reused by unrelated GPTs is a third-party service).
    action_party: Dict[str, str] = field(default_factory=dict)

    def party_of_embedding(self, gpt_id: str, action_id: str) -> str:
        """Party of one embedding (defaults to third when unknown)."""
        return self.embedding_party.get((gpt_id, action_id), "third")

    def party_of_action(self, action_id: str) -> str:
        """Rolled-up party of an Action."""
        return self.action_party.get(action_id, "third")

    def actions_by_party(self) -> Tuple[List[str], List[str]]:
        """Return ``(first_party_action_ids, third_party_action_ids)``."""
        first = [action for action, party in self.action_party.items() if party == "first"]
        third = [action for action, party in self.action_party.items() if party == "third"]
        return first, third

    def third_party_share(self) -> float:
        """Fraction of Actions attributed to third parties."""
        if not self.action_party:
            return 0.0
        third = sum(1 for party in self.action_party.values() if party == "third")
        return third / len(self.action_party)


def _vendor_url(gpt: CrawledGPT) -> Optional[str]:
    if gpt.author_website:
        return gpt.author_website
    if gpt.vendor_domain:
        return f"https://{gpt.vendor_domain}"
    return None


class ActionPartyAccumulator:
    """Streaming builder of an :class:`ActionPartyIndex`.

    Holds only per-embedding attributions and per-Action tallies — never a
    GPT record — so shard-parallel map-reduce over a
    :class:`~repro.io.shards.ShardedCorpusStore` stays memory-bounded.
    :meth:`finalize` emits identical output for any update order or merge
    partitioning (keys are sorted), which is what makes the sharded and
    unsharded analysis paths byte-identical.
    """

    def __init__(self, classifier: Optional[ThirdPartyClassifier] = None) -> None:
        self.classifier = classifier or ThirdPartyClassifier()
        self.embedding_party: Dict[Tuple[str, str], str] = {}
        self._counts: Dict[str, Dict[str, int]] = {}

    def update(self, gpt: CrawledGPT) -> None:
        """Attribute every Action embedding of one GPT."""
        vendor = _vendor_url(gpt)
        for action in gpt.actions:
            third = self.classifier.is_third_party(action.server_url, vendor)
            party = "third" if third else "first"
            self.embedding_party[(gpt.gpt_id, action.action_id)] = party
            self._counts.setdefault(action.action_id, {"first": 0, "third": 0})[party] += 1

    def merge(self, other: "ActionPartyAccumulator") -> None:
        """Fold another shard's partial attributions into this one."""
        self.embedding_party.update(other.embedding_party)
        for action_id, tally in other._counts.items():
            target = self._counts.setdefault(action_id, {"first": 0, "third": 0})
            target["first"] += tally["first"]
            target["third"] += tally["third"]

    def finalize(self) -> ActionPartyIndex:
        """Roll embeddings up into per-Action parties (order-canonical)."""
        index = ActionPartyIndex()
        for key in sorted(self.embedding_party):
            index.embedding_party[key] = self.embedding_party[key]
        for action_id in sorted(self._counts):
            # An Action that is first-party in every GPT embedding it is a
            # first-party Action; any cross-vendor reuse makes it third-party.
            index.action_party[action_id] = (
                "first" if self._counts[action_id]["third"] == 0 else "third"
            )
        return index


def build_party_index(
    corpus: CorpusSource,
    classifier: Optional[ThirdPartyClassifier] = None,
) -> ActionPartyIndex:
    """Attribute every Action embedding in a corpus to first or third party."""
    accumulator = ActionPartyAccumulator(classifier)
    for gpt in corpus.iter_records():
        accumulator.update(gpt)
    return accumulator.finalize()
