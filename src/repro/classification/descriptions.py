"""Extraction and sampling of Action data descriptions."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.crawler.corpus import CrawlCorpus
from repro.ecosystem.models import GroundTruth
from repro.llm.fewshot import FewShotExample
from repro.taxonomy.schema import OTHER_CATEGORY, OTHER_TYPE


@dataclass(frozen=True)
class DataDescription:
    """One natural-language data description extracted from an Action."""

    action_id: str
    parameter_name: str
    text: str

    @property
    def key(self) -> Tuple[str, str]:
        """Unique ``(action id, parameter name)`` key."""
        return (self.action_id, self.parameter_name)


def extract_descriptions(corpus: CrawlCorpus) -> List[DataDescription]:
    """Extract every data description from every unique Action in a corpus.

    Descriptions are taken per unique Action (not per GPT embedding), matching
    the paper's unit of analysis for data collection.
    """
    descriptions: List[DataDescription] = []
    for action in corpus.unique_actions().values():
        for (name, _), text in zip(action.parameters, action.data_descriptions()):
            descriptions.append(
                DataDescription(action_id=action.action_id, parameter_name=name, text=text)
            )
    return descriptions


def sample_descriptions(
    descriptions: Sequence[DataDescription],
    n: int,
    seed: int = 0,
) -> List[DataDescription]:
    """Randomly sample ``n`` descriptions (without replacement)."""
    if n <= 0:
        raise ValueError("n must be positive")
    rng = random.Random(seed)
    if n >= len(descriptions):
        return list(descriptions)
    return rng.sample(list(descriptions), k=n)


def label_with_ground_truth(
    descriptions: Iterable[DataDescription],
    ground_truth: GroundTruth,
) -> List[FewShotExample]:
    """Label sampled descriptions with the generator ground truth.

    This plays the role of the paper's manual coding of the 1K seed set
    (Section 3.2.2): the human coders are assumed to produce correct labels, so
    the generator's ground truth stands in for their consensus.  Descriptions
    without ground truth (e.g. dead parameters) are labelled ``Other``.
    """
    examples: List[FewShotExample] = []
    for description in descriptions:
        label = ground_truth.label_for(description.action_id, description.parameter_name)
        if label is None:
            category, data_type = OTHER_CATEGORY, OTHER_TYPE
        else:
            category, data_type = label
        examples.append(
            FewShotExample(
                description=description.text, category=category, data_type=data_type
            )
        )
    return examples


def descriptions_by_action(
    descriptions: Iterable[DataDescription],
) -> Dict[str, List[DataDescription]]:
    """Group descriptions by their Action id."""
    grouped: Dict[str, List[DataDescription]] = {}
    for description in descriptions:
        grouped.setdefault(description.action_id, []).append(description)
    return grouped
