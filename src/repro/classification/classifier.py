"""The in-context-learning data-description classifier (Section 3.2.3).

For every data description the classifier:

1. retrieves the top-``k`` most relevant labelled examples from the few-shot
   store by sentence-embedding similarity;
2. renders the Code 3 classification prompt containing the taxonomy, the
   retrieved examples, and the description;
3. asks the LLM for the higher-level data category, then (second phase) for
   the lower-level data type within that category;
4. validates the answer against the taxonomy, falling back to ``Other`` for
   anything the LLM invents.

Setting ``two_phase=False`` collapses both phases into a single prompt (the
ablation studied in ``benchmarks/test_bench_ablation_twophase.py``); setting
``use_fewshot=False`` drops the retrieved examples (the zero-shot ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.classification.descriptions import DataDescription
from repro.classification.results import ClassificationResult, DescriptionLabel
from repro.crawler.corpus import CrawlCorpus
from repro.llm import prompts
from repro.llm.base import LLMClient
from repro.llm.fewshot import FewShotExample, FewShotStore
from repro.taxonomy.schema import DataTaxonomy, OTHER_CATEGORY, OTHER_TYPE


@dataclass
class ClassifierConfig:
    """Tunable knobs of the classifier."""

    fewshot_k: int = 5
    two_phase: bool = True
    use_fewshot: bool = True
    batch_size: int = 8

    def __post_init__(self) -> None:
        if self.fewshot_k <= 0:
            raise ValueError("fewshot_k must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")


class DataCollectionClassifier:
    """Classifies Action data descriptions into the data taxonomy."""

    def __init__(
        self,
        taxonomy: DataTaxonomy,
        llm: LLMClient,
        fewshot_store: Optional[FewShotStore] = None,
        config: Optional[ClassifierConfig] = None,
    ) -> None:
        self.taxonomy = taxonomy
        self.llm = llm
        self.fewshot_store = fewshot_store or FewShotStore()
        self.config = config or ClassifierConfig()

    # ------------------------------------------------------------------
    # Few-shot management
    # ------------------------------------------------------------------
    def add_examples(self, examples: Sequence[FewShotExample]) -> None:
        """Add labelled examples to the few-shot store."""
        self.fewshot_store.add_many(examples)

    @staticmethod
    def _example_dicts(retrieved: Sequence[FewShotExample]) -> List[Dict[str, str]]:
        return [
            {
                "description": example.description,
                "category": example.category,
                "data_type": example.data_type,
            }
            for example in retrieved
        ]

    def _examples_payload(self, text: str) -> List[Dict[str, str]]:
        if not self.config.use_fewshot or len(self.fewshot_store) == 0:
            return []
        return self._example_dicts(
            self.fewshot_store.retrieve(text, k=self.config.fewshot_k)
        )

    def _examples_payload_many(self, texts: Sequence[str]) -> List[List[Dict[str, str]]]:
        """Bulk retrieval: one batched embedding query covers every text."""
        if not self.config.use_fewshot or len(self.fewshot_store) == 0:
            return [[] for _ in texts]
        batched = self.fewshot_store.retrieve_many(texts, k=self.config.fewshot_k)
        return [self._example_dicts(retrieved) for retrieved in batched]

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def classify_text(self, text: str) -> Tuple[str, str]:
        """Classify one free-text description to ``(category, type)``."""
        examples = self._examples_payload(text)
        entities = [{"name_and_description": text, "examples": []}]
        if not self.config.two_phase:
            return self._classify_single_phase(entities, examples)[0]
        return self._classify_two_phase(entities, examples)[0]

    def classify(self, description: DataDescription) -> DescriptionLabel:
        """Classify one :class:`DataDescription`."""
        category, data_type = self.classify_text(description.text)
        return DescriptionLabel(
            action_id=description.action_id,
            parameter_name=description.parameter_name,
            text=description.text,
            category=category,
            data_type=data_type,
        )

    def classify_many(self, descriptions: Sequence[DataDescription]) -> ClassificationResult:
        """Classify a batch of descriptions (batched prompts)."""
        result = ClassificationResult()
        batch_size = self.config.batch_size
        for start in range(0, len(descriptions), batch_size):
            batch = descriptions[start:start + batch_size]
            # Retrieval is per description (one batched index query for the
            # whole batch); the batch shares the union of the retrieved
            # examples, mirroring the dynamic few-shot selection of
            # Section 3.2.3.
            example_pool: List[Dict[str, str]] = []
            seen = set()
            retrieved_per_description = self._examples_payload_many(
                [description.text for description in batch]
            )
            for retrieved in retrieved_per_description:
                for example in retrieved:
                    key = example["description"]
                    if key not in seen:
                        seen.add(key)
                        example_pool.append(example)
            entities = [
                {"name_and_description": description.text, "examples": []}
                for description in batch
            ]
            if self.config.two_phase:
                labels = self._classify_two_phase(entities, example_pool)
            else:
                labels = self._classify_single_phase(entities, example_pool)
            for description, (category, data_type) in zip(batch, labels):
                result.add(
                    DescriptionLabel(
                        action_id=description.action_id,
                        parameter_name=description.parameter_name,
                        text=description.text,
                        category=category,
                        data_type=data_type,
                    )
                )
        return result

    def classify_corpus(self, corpus: CrawlCorpus) -> ClassificationResult:
        """Extract and classify every data description in a crawled corpus."""
        from repro.classification.descriptions import extract_descriptions

        return self.classify_many(extract_descriptions(corpus))

    # ------------------------------------------------------------------
    # Prompt round-trips
    # ------------------------------------------------------------------
    def _classify_single_phase(
        self,
        entities: List[Dict[str, object]],
        examples: List[Dict[str, str]],
    ) -> List[Tuple[str, str]]:
        prompt = prompts.render_classification_prompt(
            self.taxonomy, entities, examples, phase="full"
        )
        response = self.llm.complete_text("You are a data classification assistant.", prompt)
        parsed = prompts.parse_json_response(response)
        return self._validate(parsed, expected=len(entities))

    def _classify_two_phase(
        self,
        entities: List[Dict[str, object]],
        examples: List[Dict[str, str]],
    ) -> List[Tuple[str, str]]:
        # Phase 1: category.
        category_prompt = prompts.render_classification_prompt(
            self.taxonomy, entities, examples, phase="category"
        )
        category_response = prompts.parse_json_response(
            self.llm.complete_text("You are a data classification assistant.", category_prompt)
        )
        categories = [
            str(item.get("category", OTHER_CATEGORY))
            for item in category_response.get("classifications", [])
        ]
        while len(categories) < len(entities):
            categories.append(OTHER_CATEGORY)

        # Phase 2: type within the predicted category (grouped per category).
        results: List[Optional[Tuple[str, str]]] = [None] * len(entities)
        by_category: Dict[str, List[int]] = {}
        for index, category in enumerate(categories):
            if not self.taxonomy.has_category(category) or category == OTHER_CATEGORY:
                results[index] = (OTHER_CATEGORY, OTHER_TYPE)
                continue
            by_category.setdefault(category, []).append(index)

        for category, indices in by_category.items():
            type_prompt = prompts.render_classification_prompt(
                self.taxonomy,
                [entities[index] for index in indices],
                examples,
                phase="type",
                category=category,
            )
            type_response = prompts.parse_json_response(
                self.llm.complete_text("You are a data classification assistant.", type_prompt)
            )
            labels = self._validate(type_response, expected=len(indices), category_hint=category)
            for index, label in zip(indices, labels):
                results[index] = label

        return [result if result is not None else (OTHER_CATEGORY, OTHER_TYPE) for result in results]

    def _validate(
        self,
        parsed: Dict[str, object],
        expected: int,
        category_hint: Optional[str] = None,
    ) -> List[Tuple[str, str]]:
        """Validate LLM output against the taxonomy; unknown labels become Other."""
        labels: List[Tuple[str, str]] = []
        classifications = parsed.get("classifications", [])
        if not isinstance(classifications, list):
            classifications = []
        for item in classifications:
            category = str(item.get("category", OTHER_CATEGORY)) if isinstance(item, dict) else OTHER_CATEGORY
            data_type = str(item.get("data_type", OTHER_TYPE)) if isinstance(item, dict) else OTHER_TYPE
            if category_hint is not None:
                category = category_hint
            if category == OTHER_CATEGORY or data_type == OTHER_TYPE:
                labels.append((OTHER_CATEGORY, OTHER_TYPE))
                continue
            resolved = self.taxonomy.get_type(category, data_type)
            if resolved is None:
                # The LLM may answer with a type from the wrong category; try to
                # recover it by name before giving up.
                fallback = self.taxonomy.find_type(data_type)
                if fallback is not None:
                    labels.append(fallback.key)
                else:
                    labels.append((OTHER_CATEGORY, OTHER_TYPE))
            else:
                labels.append(resolved.key)
        while len(labels) < expected:
            labels.append((OTHER_CATEGORY, OTHER_TYPE))
        return labels[:expected]
