"""Data-collection classification framework (Section 3.2).

The framework maps the natural-language data descriptions found in Action
specifications onto the data taxonomy:

* :mod:`repro.classification.descriptions` — extract data descriptions from a
  crawled corpus and sample labelling/evaluation sets;
* :mod:`repro.classification.classifier` — the in-context-learning classifier
  (few-shot retrieval + two-phase category→type prediction via an LLM);
* :mod:`repro.classification.results` — result containers;
* :mod:`repro.classification.other_handler` — the semi-automated taxonomy
  extension pass for descriptions labelled ``Other`` (Section 3.2.4);
* :mod:`repro.classification.evaluation` — accuracy evaluation and mistake
  analysis (Section 4.1.2).
"""

from repro.classification.descriptions import (
    DataDescription,
    extract_descriptions,
    sample_descriptions,
    label_with_ground_truth,
)
from repro.classification.results import ClassificationResult, DescriptionLabel
from repro.classification.classifier import DataCollectionClassifier
from repro.classification.other_handler import OtherDescriptionHandler
from repro.classification.evaluation import ClassifierEvaluation, MistakeAnalysis, evaluate_classifier

__all__ = [
    "DataDescription",
    "extract_descriptions",
    "sample_descriptions",
    "label_with_ground_truth",
    "ClassificationResult",
    "DescriptionLabel",
    "DataCollectionClassifier",
    "OtherDescriptionHandler",
    "ClassifierEvaluation",
    "MistakeAnalysis",
    "evaluate_classifier",
]
