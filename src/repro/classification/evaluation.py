"""Classifier accuracy evaluation and mistake analysis (Section 4.1.2).

The paper evaluates its classifier on (i) the 1K manually labelled seed set
and (ii) a 5% random sample reviewed by three human coders, reporting ≈91–93%
accuracy for categories and data types.  Here the gold labels come either from
the seed examples or from generator ground truth, and the same accuracy and
mistake breakdowns are computed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple

from repro.classification.classifier import DataCollectionClassifier
from repro.classification.descriptions import DataDescription
from repro.classification.results import DescriptionLabel
from repro.ecosystem.models import GroundTruth
from repro.llm.fewshot import FewShotExample


@dataclass
class MistakeAnalysis:
    """Breakdown of classification errors by their cause."""

    total_errors: int = 0
    empty_description_errors: int = 0
    short_description_errors: int = 0
    multi_topic_errors: int = 0
    other_confusions: int = 0

    def rates(self) -> Dict[str, float]:
        """Each cause as a fraction of all errors."""
        if self.total_errors == 0:
            return {
                "empty_description": 0.0,
                "short_description": 0.0,
                "multi_topic": 0.0,
                "other_confusion": 0.0,
            }
        return {
            "empty_description": self.empty_description_errors / self.total_errors,
            "short_description": self.short_description_errors / self.total_errors,
            "multi_topic": self.multi_topic_errors / self.total_errors,
            "other_confusion": self.other_confusions / self.total_errors,
        }


@dataclass
class ClassifierEvaluation:
    """Accuracy of one classifier run against gold labels."""

    n_evaluated: int
    category_correct: int
    type_correct: int
    mistakes: MistakeAnalysis = field(default_factory=MistakeAnalysis)
    confusion: Counter = field(default_factory=Counter)

    @property
    def category_accuracy(self) -> float:
        """Fraction of descriptions with the correct category."""
        return self.category_correct / self.n_evaluated if self.n_evaluated else 0.0

    @property
    def type_accuracy(self) -> float:
        """Fraction of descriptions with the correct data type."""
        return self.type_correct / self.n_evaluated if self.n_evaluated else 0.0

    def summary(self) -> str:
        """Human-readable accuracy summary."""
        return (
            f"category accuracy {self.category_accuracy:.2%}, "
            f"type accuracy {self.type_accuracy:.2%} over {self.n_evaluated} descriptions"
        )


def _is_empty_like(text: str) -> bool:
    stripped = text.strip().lower()
    if ":" in stripped:
        stripped = stripped.split(":", 1)[1].strip()
    return stripped in ("", "null", "none", "n/a", "-")


def evaluate_predictions(
    predictions: Sequence[DescriptionLabel],
    gold: Mapping[Tuple[str, str], Tuple[str, str]],
) -> ClassifierEvaluation:
    """Score predictions against gold ``(category, type)`` labels.

    ``gold`` is keyed by ``(action id, parameter name)``.
    """
    n_evaluated = 0
    category_correct = 0
    type_correct = 0
    mistakes = MistakeAnalysis()
    confusion: Counter = Counter()
    for prediction in predictions:
        key = (prediction.action_id, prediction.parameter_name)
        if key not in gold:
            continue
        gold_category, gold_type = gold[key]
        n_evaluated += 1
        if prediction.category == gold_category:
            category_correct += 1
        if prediction.category == gold_category and prediction.data_type == gold_type:
            type_correct += 1
        else:
            mistakes.total_errors += 1
            confusion[((gold_category, gold_type), prediction.label)] += 1
            if _is_empty_like(prediction.text):
                mistakes.empty_description_errors += 1
            elif len(prediction.text.split()) <= 2:
                mistakes.short_description_errors += 1
            elif "otherwise" in prediction.text.lower() or ", or " in prediction.text.lower():
                mistakes.multi_topic_errors += 1
            elif prediction.is_other:
                mistakes.other_confusions += 1
    return ClassifierEvaluation(
        n_evaluated=n_evaluated,
        category_correct=category_correct,
        type_correct=type_correct,
        mistakes=mistakes,
        confusion=confusion,
    )


def gold_from_examples(
    descriptions: Sequence[DataDescription],
    examples: Sequence[FewShotExample],
) -> Dict[Tuple[str, str], Tuple[str, str]]:
    """Build a gold-label mapping by aligning descriptions with labelled examples."""
    gold: Dict[Tuple[str, str], Tuple[str, str]] = {}
    by_text: Dict[str, Tuple[str, str]] = {
        example.description: (example.category, example.data_type) for example in examples
    }
    for description in descriptions:
        if description.text in by_text:
            gold[description.key] = by_text[description.text]
    return gold


def gold_from_ground_truth(
    descriptions: Sequence[DataDescription],
    ground_truth: GroundTruth,
) -> Dict[Tuple[str, str], Tuple[str, str]]:
    """Build a gold-label mapping from generator ground truth."""
    gold: Dict[Tuple[str, str], Tuple[str, str]] = {}
    for description in descriptions:
        label = ground_truth.label_for(description.action_id, description.parameter_name)
        if label is not None:
            gold[description.key] = label
    return gold


def evaluate_classifier(
    classifier: DataCollectionClassifier,
    descriptions: Sequence[DataDescription],
    ground_truth: GroundTruth,
) -> ClassifierEvaluation:
    """Classify ``descriptions`` and score them against generator ground truth."""
    result = classifier.classify_many(list(descriptions))
    gold = gold_from_ground_truth(descriptions, ground_truth)
    return evaluate_predictions(result.labels, gold)
