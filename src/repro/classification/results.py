"""Result containers for the classification framework."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.taxonomy.schema import OTHER_CATEGORY, OTHER_TYPE


@dataclass(frozen=True)
class DescriptionLabel:
    """The predicted label for one data description."""

    action_id: str
    parameter_name: str
    text: str
    category: str
    data_type: str

    @property
    def is_other(self) -> bool:
        """Whether the description could not be mapped to the taxonomy."""
        return self.category == OTHER_CATEGORY or self.data_type == OTHER_TYPE

    @property
    def label(self) -> Tuple[str, str]:
        """The ``(category, data type)`` pair."""
        return (self.category, self.data_type)


@dataclass
class ClassificationResult:
    """All predictions of one classification run."""

    labels: List[DescriptionLabel] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.labels)

    # ------------------------------------------------------------------
    def add(self, label: DescriptionLabel) -> None:
        """Append one prediction."""
        self.labels.append(label)

    def by_action(self) -> Dict[str, List[DescriptionLabel]]:
        """Group predictions by Action id."""
        grouped: Dict[str, List[DescriptionLabel]] = {}
        for label in self.labels:
            grouped.setdefault(label.action_id, []).append(label)
        return grouped

    def action_data_types(self, include_other: bool = False) -> Dict[str, List[Tuple[str, str]]]:
        """Distinct ``(category, type)`` pairs collected by each Action."""
        collected: Dict[str, List[Tuple[str, str]]] = {}
        for label in self.labels:
            if label.is_other and not include_other:
                continue
            bucket = collected.setdefault(label.action_id, [])
            if label.label not in bucket:
                bucket.append(label.label)
        return collected

    def other_rate(self) -> float:
        """Fraction of descriptions labelled ``Other``."""
        if not self.labels:
            return 0.0
        return sum(1 for label in self.labels if label.is_other) / len(self.labels)

    def other_descriptions(self) -> List[DescriptionLabel]:
        """The descriptions labelled ``Other`` (inputs to the refinement pass)."""
        return [label for label in self.labels if label.is_other]

    def type_counts(self) -> Counter:
        """How many descriptions were assigned to each ``(category, type)``."""
        return Counter(label.label for label in self.labels if not label.is_other)

    def category_counts(self) -> Counter:
        """How many descriptions were assigned to each category."""
        return Counter(label.category for label in self.labels if not label.is_other)

    def distinct_categories(self) -> Set[str]:
        """Categories observed in the predictions (excluding ``Other``)."""
        return {label.category for label in self.labels if not label.is_other}

    def distinct_types(self) -> Set[Tuple[str, str]]:
        """``(category, type)`` pairs observed in the predictions."""
        return {label.label for label in self.labels if not label.is_other}

    def lookup(self, action_id: str, parameter_name: str) -> Optional[DescriptionLabel]:
        """Find the prediction for one specific parameter."""
        for label in self.labels:
            if label.action_id == action_id and label.parameter_name == parameter_name:
                return label
        return None

    def merge(self, other: "ClassificationResult") -> "ClassificationResult":
        """Combine two results (later predictions win for duplicate keys)."""
        merged: Dict[Tuple[str, str], DescriptionLabel] = {
            (label.action_id, label.parameter_name): label for label in self.labels
        }
        for label in other.labels:
            merged[(label.action_id, label.parameter_name)] = label
        return ClassificationResult(labels=list(merged.values()))
