"""Handling of descriptions labelled ``Other`` (Section 3.2.4).

After the first classification pass, a substantial fraction of descriptions is
labelled ``Other``.  The handler asks a (stronger) LLM, via the Code 4 prompt,
whether each unmatched description is already covered, deserves a new data
type, should be combined with others, or should be deprecated; applies the
accepted proposals to the taxonomy through
:class:`~repro.taxonomy.refinement.TaxonomyRefiner`; and re-classifies the
``Other`` descriptions against the extended taxonomy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.classification.classifier import ClassifierConfig, DataCollectionClassifier
from repro.classification.results import ClassificationResult
from repro.classification.descriptions import DataDescription
from repro.llm import prompts
from repro.llm.base import LLMClient
from repro.llm.fewshot import FewShotStore
from repro.taxonomy.refinement import (
    RefinementAction,
    RefinementDecision,
    RefinementReport,
    TaxonomyRefiner,
)
from repro.taxonomy.schema import DataTaxonomy, DataType


def build_refinement_decider(
    llm: LLMClient, taxonomy: DataTaxonomy
) -> Callable[[str, int], RefinementDecision]:
    """Build a :class:`TaxonomyRefiner` decider backed by the Code 4 prompt."""

    def decider(description: str, amount: int) -> RefinementDecision:
        prompt = prompts.render_refinement_prompt(
            taxonomy,
            [{"name_and_description": description, "amount_appears": amount}],
        )
        response = prompts.parse_json_response(
            llm.complete_text("You are a data taxonomy expert.", prompt)
        )
        decisions = response.get("decisions", [])
        if not decisions or not isinstance(decisions, list):
            return RefinementDecision(description=description, action=RefinementAction.DEPRECATE)
        entry = decisions[0] if isinstance(decisions[0], dict) else {}
        action_name = str(entry.get("action", "Deprecate")).capitalize()
        try:
            action = RefinementAction(action_name)
        except ValueError:
            action = RefinementAction.DEPRECATE
        return RefinementDecision(
            description=description,
            action=action,
            category=str(entry.get("category", "")),
            data_type=str(entry.get("data_type", "")),
            type_description=str(entry.get("description", "")),
        )

    return decider


@dataclass
class OtherHandlingOutcome:
    """Result of one ``Other``-handling pass."""

    extended_taxonomy: DataTaxonomy
    refinement_report: RefinementReport
    reclassified: ClassificationResult
    residual_other_rate: float


class OtherDescriptionHandler:
    """Runs the taxonomy-extension loop over ``Other``-labelled descriptions."""

    def __init__(
        self,
        taxonomy: DataTaxonomy,
        llm: LLMClient,
        reviewer: Optional[Callable[[List[DataType]], List[DataType]]] = None,
    ) -> None:
        self.taxonomy = taxonomy
        self.llm = llm
        self.reviewer = reviewer

    def handle(
        self,
        result: ClassificationResult,
        fewshot_store: Optional[FewShotStore] = None,
    ) -> OtherHandlingOutcome:
        """Extend the taxonomy from ``Other`` descriptions and re-classify them."""
        other_labels = result.other_descriptions()
        descriptions = [label.text for label in other_labels]
        decider = build_refinement_decider(self.llm, self.taxonomy)
        refiner = TaxonomyRefiner(self.taxonomy, decider, reviewer=self.reviewer)
        extended, report = refiner.refine(descriptions)

        # Re-classify the previously unmatched descriptions against the
        # extended taxonomy.
        classifier = DataCollectionClassifier(
            taxonomy=extended,
            llm=self.llm,
            fewshot_store=fewshot_store or FewShotStore(),
            config=ClassifierConfig(two_phase=False),
        )
        to_reclassify = [
            DataDescription(
                action_id=label.action_id,
                parameter_name=label.parameter_name,
                text=label.text,
            )
            for label in other_labels
        ]
        reclassified = classifier.classify_many(to_reclassify)
        residual = reclassified.other_rate() * (len(other_labels) / max(1, len(result)))
        return OtherHandlingOutcome(
            extended_taxonomy=extended,
            refinement_report=report,
            reclassified=reclassified,
            residual_other_rate=residual,
        )

    def apply(self, result: ClassificationResult, outcome: OtherHandlingOutcome) -> ClassificationResult:
        """Merge reclassified ``Other`` descriptions back into the full result."""
        return result.merge(outcome.reclassified)
