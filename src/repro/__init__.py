"""Reproduction of "An In-Depth Investigation of Data Collection in LLM App Ecosystems".

This package reimplements, end to end, the measurement pipeline of the IMC 2025
paper on OpenAI's GPT (LLM app) ecosystem:

* a synthetic but paper-calibrated GPT ecosystem (manifests, Action OpenAPI
  specifications, privacy policies, GPT stores) — :mod:`repro.ecosystem`;
* a store crawler over a simulated HTTP layer — :mod:`repro.crawler`;
* an in-context-learning data-description classifier backed by a simulated
  LLM — :mod:`repro.classification` and :mod:`repro.llm`;
* a privacy-policy consistency framework — :mod:`repro.policy`;
* measurement analyses and report generation for every table and figure of the
  paper's evaluation — :mod:`repro.analysis`, :mod:`repro.reporting`, and
  :mod:`repro.experiments`.

Quickstart
----------

>>> from repro import EcosystemConfig, EcosystemGenerator, CrawlPipeline
>>> config = EcosystemConfig.paper_calibrated(n_gpts=500, seed=7)
>>> ecosystem = EcosystemGenerator(config).generate()
>>> corpus = CrawlPipeline.from_ecosystem(ecosystem).run()
>>> len(corpus.gpts) > 0
True
"""

from repro._version import __version__
from repro.taxonomy import DataCategory, DataTaxonomy, DataType, load_builtin_taxonomy
from repro.ecosystem import EcosystemConfig, EcosystemGenerator, SyntheticEcosystem
from repro.crawler import CrawlCorpus, CrawlPipeline
from repro.llm import SimulatedLLM
from repro.classification import DataCollectionClassifier, ClassificationResult
from repro.policy import (
    ConsistencyLabel,
    PrivacyPolicyAnalyzer,
    PolicyConsistencyReport,
)
from repro.analysis import MeasurementSuite

__all__ = [
    "__version__",
    "DataCategory",
    "DataTaxonomy",
    "DataType",
    "load_builtin_taxonomy",
    "EcosystemConfig",
    "EcosystemGenerator",
    "SyntheticEcosystem",
    "CrawlCorpus",
    "CrawlPipeline",
    "SimulatedLLM",
    "DataCollectionClassifier",
    "ClassificationResult",
    "ConsistencyLabel",
    "PrivacyPolicyAnalyzer",
    "PolicyConsistencyReport",
    "MeasurementSuite",
]
