"""Rule-based sentence segmentation.

Used by the privacy-policy analysis framework (Section 3.3, step one) to split
policy documents into individual sentences before collection-statement
extraction.  The splitter handles common abbreviations, decimal numbers,
URLs/emails, and list-style policy formatting (bullets and numbered clauses).
"""

from __future__ import annotations

import re
from typing import List

#: Common abbreviations that should not terminate a sentence.
_ABBREVIATIONS = {
    "e.g", "i.e", "etc", "mr", "mrs", "ms", "dr", "prof", "inc", "ltd", "llc",
    "corp", "co", "vs", "no", "art", "sec", "para", "fig", "est", "dept",
    "approx", "u.s", "u.k",
}

_SENTENCE_END_RE = re.compile(r"([.!?])(\s+|$)")
_BULLET_RE = re.compile(r"^\s*(?:[-*•]|\(?\d{1,2}[.)])\s+")
_URL_GUARD_RE = re.compile(r"(https?://\S+|www\.\S+|\S+@\S+\.\S+)")


def _protect(text: str) -> str:
    """Replace dots inside URLs/emails with a placeholder so they survive splitting."""
    return _URL_GUARD_RE.sub(lambda match: match.group(0).replace(".", "․"), text)


def _restore(text: str) -> str:
    return text.replace("․", ".")


def split_sentences(text: str) -> List[str]:
    """Split a document into sentences.

    Paragraph breaks and bullet items always start a new sentence; within a
    paragraph, ``.``, ``!``, and ``?`` terminate a sentence unless the period
    belongs to a known abbreviation, an initial, or a decimal number.
    """
    if not text or not text.strip():
        return []

    sentences: List[str] = []
    for raw_block in re.split(r"\n\s*\n|\r\n\s*\r\n", text):
        for raw_line in raw_block.splitlines():
            line = raw_line.strip()
            if not line:
                continue
            line = _BULLET_RE.sub("", line)
            sentences.extend(_split_block(line))
    return [sentence for sentence in sentences if sentence]


def _split_block(block: str) -> List[str]:
    protected = _protect(block)
    sentences: List[str] = []
    start = 0
    for match in _SENTENCE_END_RE.finditer(protected):
        end = match.end(1)
        candidate = protected[start:end].strip()
        if not candidate:
            start = match.end()
            continue
        if match.group(1) == "." and _ends_with_non_terminal(candidate):
            continue
        sentences.append(_restore(candidate))
        start = match.end()
    tail = protected[start:].strip()
    if tail:
        sentences.append(_restore(tail))
    return sentences


def _ends_with_non_terminal(candidate: str) -> bool:
    """Whether a candidate sentence ends in an abbreviation, initial, or number."""
    body = candidate[:-1]  # strip the period
    last_word = body.rsplit(None, 1)[-1].lower() if body.split() else ""
    last_word = last_word.strip("(),;:")
    if last_word in _ABBREVIATIONS:
        return True
    if len(last_word) == 1 and last_word.isalpha():
        return True
    # Decimal numbers like "3." followed by digits are handled at match time:
    # if the character just before the period is a digit and the next token is
    # a digit, it is most likely "3.5" style.
    return bool(re.search(r"\d$", body)) and bool(re.match(r"^\d", candidate[len(candidate):] or ""))
