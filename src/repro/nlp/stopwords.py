"""A compact English stopword list used by embeddings and keyword matching."""

from __future__ import annotations

from typing import Iterable, List, Set

STOPWORDS: Set[str] = {
    "a", "an", "the", "and", "or", "but", "if", "then", "else", "when", "while",
    "of", "at", "by", "for", "with", "about", "against", "between", "into",
    "through", "during", "before", "after", "above", "below", "to", "from",
    "up", "down", "in", "out", "on", "off", "over", "under", "again", "further",
    "is", "are", "was", "were", "be", "been", "being", "am", "do", "does", "did",
    "doing", "have", "has", "had", "having", "will", "would", "shall", "should",
    "can", "could", "may", "might", "must", "this", "that", "these", "those",
    "i", "me", "my", "we", "our", "ours", "you", "your", "yours", "he", "him",
    "his", "she", "her", "hers", "it", "its", "they", "them", "their", "theirs",
    "what", "which", "who", "whom", "whose", "as", "such", "than", "too", "very",
    "so", "not", "no", "nor", "only", "own", "same", "some", "any", "all",
    "both", "each", "few", "more", "most", "other", "also", "etc", "eg", "ie",
    "per", "via", "please", "required", "optional", "must", "e.g", "i.e",
}


def remove_stopwords(tokens: Iterable[str]) -> List[str]:
    """Filter stopwords out of a token list."""
    return [token for token in tokens if token not in STOPWORDS]
