"""Word tokenization and text normalization."""

from __future__ import annotations

import re
import unicodedata
from typing import List, Tuple

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:[._'-][a-z0-9]+)*")
_WHITESPACE_RE = re.compile(r"\s+")


def normalize_text(text: str) -> str:
    """Normalize text for matching: NFKD fold, lower-case, collapse whitespace."""
    if not text:
        return ""
    if text.isascii():
        # NFKD folding and combining-character stripping are identity maps on
        # ASCII, and scanning every character for combining marks dominates
        # the hot paths — skip straight to case folding.
        folded = text.lower()
    else:
        folded = unicodedata.normalize("NFKD", text)
        folded = "".join(ch for ch in folded if not unicodedata.combining(ch))
        folded = folded.lower()
    return _WHITESPACE_RE.sub(" ", folded).strip()


def tokenize(text: str) -> List[str]:
    """Tokenize text into lower-case word tokens.

    Tokens keep internal dots/underscores/hyphens (so ``conversation_context``
    and ``e-mail`` survive as single tokens, which matters for keyword
    matching against Action parameter names).
    """
    return _TOKEN_RE.findall(normalize_text(text))


def tokenize_normalized(normalized: str) -> List[str]:
    """Tokenize text that already went through :func:`normalize_text`.

    Hot-path variant for callers (e.g. the hashed embedder) that normalize a
    text once and derive both word tokens and character n-grams from it,
    avoiding a second Unicode normalization pass.
    """
    return _TOKEN_RE.findall(normalized)


def word_ngrams(tokens: List[str], n: int) -> List[Tuple[str, ...]]:
    """All word n-grams of a token list (empty when too short)."""
    if n <= 0:
        raise ValueError("n must be positive")
    if len(tokens) < n:
        return []
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def char_ngrams(text: str, n: int = 3) -> List[str]:
    """Character n-grams of the normalized text (used for fuzzy matching)."""
    return char_ngrams_normalized(normalize_text(text), n)


def char_ngrams_normalized(normalized: str, n: int = 3) -> List[str]:
    """Character n-grams of text that already went through :func:`normalize_text`."""
    if n <= 0:
        raise ValueError("n must be positive")
    joined = normalized.replace(" ", "_")
    if len(joined) < n:
        return [joined] if joined else []
    return [joined[i : i + n] for i in range(len(joined) - n + 1)]
