"""Similarity measures: cosine, Euclidean, Jaccard, and shingle near-duplicates.

Jaccard similarity over word shingles is used to find near-duplicate privacy
policies (Section 5.1.1: policies with a Jaccard similarity above 95% are
near-duplicates), following the Mining of Massive Datasets treatment the paper
cites.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.nlp.tokenization import tokenize


def cosine_similarity(vector_a: np.ndarray, vector_b: np.ndarray) -> float:
    """Cosine similarity between two vectors (0 when either is zero)."""
    norm_a = float(np.linalg.norm(vector_a))
    norm_b = float(np.linalg.norm(vector_b))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return float(np.dot(vector_a, vector_b) / (norm_a * norm_b))


def euclidean_distance(vector_a: np.ndarray, vector_b: np.ndarray) -> float:
    """Euclidean distance between two vectors."""
    return float(np.linalg.norm(np.asarray(vector_a) - np.asarray(vector_b)))


def jaccard_similarity(set_a: Iterable[object], set_b: Iterable[object]) -> float:
    """Jaccard similarity of two collections (1.0 when both are empty)."""
    a = set(set_a)
    b = set(set_b)
    if not a and not b:
        return 1.0
    union = a | b
    if not union:
        return 1.0
    return len(a & b) / len(union)


def shingle_set(text: str, k: int = 5) -> FrozenSet[Tuple[str, ...]]:
    """The set of word ``k``-shingles of a text.

    Texts shorter than ``k`` words yield a single shingle containing all their
    words, so short boilerplate policies still compare meaningfully.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    tokens = tokenize(text)
    if not tokens:
        return frozenset()
    if len(tokens) < k:
        return frozenset({tuple(tokens)})
    return frozenset(tuple(tokens[i : i + k]) for i in range(len(tokens) - k + 1))


def text_jaccard(text_a: str, text_b: str, k: int = 5) -> float:
    """Jaccard similarity between the shingle sets of two texts."""
    return jaccard_similarity(shingle_set(text_a, k), shingle_set(text_b, k))


def near_duplicates(
    texts: Sequence[str],
    threshold: float = 0.95,
    k: int = 5,
) -> List[Tuple[int, int, float]]:
    """Find pairs of near-duplicate texts.

    Returns ``(index_a, index_b, similarity)`` for every pair whose shingle
    Jaccard similarity is at least ``threshold``.  Exact duplicates are
    included (similarity 1.0).  A cheap length-band prefilter keeps the
    pairwise comparison tractable for corpus-scale inputs.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    shingles = [shingle_set(text, k) for text in texts]
    sizes = [len(s) for s in shingles]
    pairs: List[Tuple[int, int, float]] = []
    for i in range(len(texts)):
        if not shingles[i]:
            continue
        for j in range(i + 1, len(texts)):
            if not shingles[j]:
                continue
            smaller, larger = sorted((sizes[i], sizes[j]))
            if larger > 0 and smaller / larger < threshold:
                # Even perfect containment cannot reach the threshold.
                continue
            similarity = jaccard_similarity(shingles[i], shingles[j])
            if similarity >= threshold:
                pairs.append((i, j, similarity))
    return pairs


def duplicate_groups(texts: Sequence[str]) -> Dict[str, List[int]]:
    """Group exactly identical texts (after whitespace normalization).

    Returns a mapping from the normalized text to the indices holding it, for
    groups of size at least two.
    """
    groups: Dict[str, List[int]] = {}
    for index, text in enumerate(texts):
        key = " ".join(text.split())
        groups.setdefault(key, []).append(index)
    return {key: indices for key, indices in groups.items() if len(indices) > 1}
