"""Similarity measures: cosine, Euclidean, Jaccard, and shingle near-duplicates.

Jaccard similarity over word shingles is used to find near-duplicate privacy
policies (Section 5.1.1: policies with a Jaccard similarity above 95% are
near-duplicates), following the Mining of Massive Datasets treatment the paper
cites.  At corpus scale, candidate pairs come from MinHash–LSH banding
(:mod:`repro.nlp.minhash`) and only candidates are verified exactly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

import numpy as np

from repro.nlp.tokenization import tokenize


def cosine_similarity(vector_a: np.ndarray, vector_b: np.ndarray) -> float:
    """Cosine similarity between two vectors (0 when either is zero)."""
    norm_a = float(np.linalg.norm(vector_a))
    norm_b = float(np.linalg.norm(vector_b))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return float(np.dot(vector_a, vector_b) / (norm_a * norm_b))


def euclidean_distance(vector_a: np.ndarray, vector_b: np.ndarray) -> float:
    """Euclidean distance between two vectors."""
    return float(np.linalg.norm(np.asarray(vector_a) - np.asarray(vector_b)))


def jaccard_similarity(set_a: Iterable[object], set_b: Iterable[object]) -> float:
    """Jaccard similarity of two collections (1.0 when both are empty)."""
    a = set(set_a)
    b = set(set_b)
    if not a and not b:
        return 1.0
    union = a | b
    if not union:
        return 1.0
    return len(a & b) / len(union)


def shingle_set(text: str, k: int = 5) -> FrozenSet[Tuple[str, ...]]:
    """The set of word ``k``-shingles of a text.

    Texts shorter than ``k`` words yield a single shingle containing all their
    words, so short boilerplate policies still compare meaningfully.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    return _shingles_from_tokens(tokenize(text), k)


def _shingles_from_tokens(tokens: Sequence[str], k: int) -> FrozenSet[Tuple[str, ...]]:
    if not tokens:
        return frozenset()
    if len(tokens) < k:
        return frozenset({tuple(tokens)})
    return frozenset(tuple(tokens[i : i + k]) for i in range(len(tokens) - k + 1))


def text_jaccard(text_a: str, text_b: str, k: int = 5) -> float:
    """Jaccard similarity between the shingle sets of two texts."""
    return jaccard_similarity(shingle_set(text_a, k), shingle_set(text_b, k))


#: Below this corpus size the O(n²) scan beats MinHash signature setup.
#: Shared with the streaming duplicate-policy analysis, whose "auto"
#: method must flip to LSH at exactly the same size to stay equivalent.
LSH_MIN_TEXTS = 128
_LSH_MIN_TEXTS = LSH_MIN_TEXTS

#: Default word-shingle width for near-duplicate detection (shared with
#: the streaming duplicate-policy analysis for the same reason).
DEFAULT_SHINGLE_K = 5


def near_duplicates(
    texts: Sequence[str],
    threshold: float = 0.95,
    k: int = DEFAULT_SHINGLE_K,
    method: str = "auto",
) -> List[Tuple[int, int, float]]:
    """Find pairs of near-duplicate texts.

    Returns ``(index_a, index_b, similarity)`` for every pair whose shingle
    Jaccard similarity is at least ``threshold``.  Exact duplicates are
    included (similarity 1.0).

    ``method`` selects the candidate-generation strategy:

    * ``"exact"`` — compare every pair (with a cheap shingle-count band
      prefilter), O(n²).
    * ``"lsh"`` — MinHash signatures + LSH banding (:mod:`repro.nlp.minhash`)
      generate candidate pairs in near-linear time; every candidate is then
      verified with exact Jaccard over the original shingle sets.  Reported
      pairs match the exact scan with overwhelming probability (per-pair
      miss probability at the threshold below 1e-9; provably identical at
      threshold 1.0) and never include false positives.
    * ``"auto"`` (default) — exact below ``128`` texts, LSH above.

    Thresholds too low for LSH's miss guarantee (below ~0.15 with the
    default 128 permutations) always use the exact scan, whatever the
    requested method.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    if method not in ("auto", "exact", "lsh"):
        raise ValueError(f"unknown method: {method!r}")
    if k <= 0:
        raise ValueError("k must be positive")
    from repro.nlp.minhash import lsh_supports_threshold

    token_lists = [tokenize(text) for text in texts]
    if (
        method == "exact"
        or (method == "auto" and len(texts) < _LSH_MIN_TEXTS)
        or not lsh_supports_threshold(threshold)
    ):
        shingles = [_shingles_from_tokens(tokens, k) for tokens in token_lists]
        return _near_duplicates_exact(shingles, threshold)
    return _near_duplicates_lsh(token_lists, threshold, k)


def _near_duplicates_exact(
    shingles: Sequence[FrozenSet[Tuple[str, ...]]],
    threshold: float,
) -> List[Tuple[int, int, float]]:
    """Brute-force pairwise scan with a shingle-count band prefilter."""
    sizes = [len(s) for s in shingles]
    pairs: List[Tuple[int, int, float]] = []
    for i in range(len(shingles)):
        if not shingles[i]:
            continue
        for j in range(i + 1, len(shingles)):
            if not shingles[j]:
                continue
            smaller, larger = sorted((sizes[i], sizes[j]))
            if larger > 0 and smaller / larger < threshold:
                # Even perfect containment cannot reach the threshold.
                continue
            similarity = jaccard_similarity(shingles[i], shingles[j])
            if similarity >= threshold:
                pairs.append((i, j, similarity))
    return pairs


def _near_duplicates_lsh(
    token_lists: Sequence[Sequence[str]],
    threshold: float,
    k: int,
) -> List[Tuple[int, int, float]]:
    """LSH candidate generation + exact Jaccard verification.

    Shingle hashing runs vectorized over the token lists (per-token hashes
    memoized across the corpus); candidates then get verified with exact
    Jaccard over the real shingle sets, so the result matches the exact
    scan with overwhelming probability (per-pair miss probability at the
    threshold below 1e-9; provably identical at threshold 1.0).  The tuple
    shingle sets are materialized lazily — only for documents that appear
    in a candidate pair, typically a small fraction of the corpus.
    """
    from repro.nlp.minhash import minhash_candidate_pairs

    candidates = minhash_candidate_pairs(token_lists, k, threshold)
    shingle_memo: Dict[int, FrozenSet[Tuple[str, ...]]] = {}

    def shingles_of(index: int) -> FrozenSet[Tuple[str, ...]]:
        shingles = shingle_memo.get(index)
        if shingles is None:
            shingles = shingle_memo[index] = _shingles_from_tokens(token_lists[index], k)
        return shingles

    pairs: List[Tuple[int, int, float]] = []
    for i, j in sorted(candidates):
        shingles_a = shingles_of(i)
        shingles_b = shingles_of(j)
        smaller, larger = sorted((len(shingles_a), len(shingles_b)))
        if larger > 0 and smaller / larger < threshold:
            continue
        similarity = jaccard_similarity(shingles_a, shingles_b)
        if similarity >= threshold:
            pairs.append((i, j, similarity))
    return pairs


def duplicate_groups(texts: Sequence[str]) -> Dict[str, List[int]]:
    """Group exactly identical texts (after whitespace normalization).

    Returns a mapping from the normalized text to the indices holding it, for
    groups of size at least two.
    """
    groups: Dict[str, List[int]] = {}
    for index, text in enumerate(texts):
        key = " ".join(text.split())
        groups.setdefault(key, []).append(index)
    return {key: indices for key, indices in groups.items() if len(indices) > 1}
