"""Hashed sentence embeddings and a nearest-neighbour index.

The paper uses Sentence-BERT embeddings with Euclidean distance to retrieve
the top-5 most relevant few-shot examples for a data description
(Section 3.2.3).  Offline we replace SBERT with a deterministic hashed
bag-of-features embedding: word tokens (stopword-filtered, sub-linearly
weighted) plus character trigrams are hashed into a fixed-dimension vector and
L2-normalized.  This preserves the property the framework relies on —
semantically/lexically similar descriptions land close together — while
staying dependency-free and reproducible.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nlp.stopwords import remove_stopwords
from repro.nlp.tokenization import char_ngrams, normalize_text, tokenize


def _stable_hash(token: str) -> int:
    """A stable (process-independent) 64-bit hash of a token."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


@dataclass
class SentenceEmbedder:
    """Embeds short texts into fixed-dimension hashed feature vectors.

    Parameters
    ----------
    dimensions:
        Size of the embedding vector.
    char_ngram_size:
        Size of the character n-grams mixed into the representation (set to 0
        to disable character features).
    char_weight:
        Relative weight of character n-gram features versus word features.
    use_stopwords:
        Whether to drop stopwords before hashing word tokens.
    """

    dimensions: int = 512
    char_ngram_size: int = 3
    char_weight: float = 0.5
    use_stopwords: bool = True

    def __post_init__(self) -> None:
        if self.dimensions <= 0:
            raise ValueError("dimensions must be positive")

    # ------------------------------------------------------------------
    def features(self, text: str) -> Dict[str, float]:
        """Extract weighted features (word tokens + char n-grams) from text."""
        tokens = tokenize(text)
        if self.use_stopwords:
            content_tokens = remove_stopwords(tokens)
            if content_tokens:
                tokens = content_tokens
        weights: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for token in tokens:
            counts[token] = counts.get(token, 0) + 1
        for token, count in counts.items():
            weights[f"w:{token}"] = 1.0 + math.log(count)
        if self.char_ngram_size > 0:
            grams = char_ngrams(text, self.char_ngram_size)
            gram_counts: Dict[str, int] = {}
            for gram in grams:
                gram_counts[gram] = gram_counts.get(gram, 0) + 1
            for gram, count in gram_counts.items():
                weights[f"c:{gram}"] = self.char_weight * (1.0 + math.log(count))
        return weights

    def embed(self, text: str) -> np.ndarray:
        """Embed a single text into a unit-length vector."""
        vector = np.zeros(self.dimensions, dtype=np.float64)
        for feature, weight in self.features(text).items():
            hashed = _stable_hash(feature)
            index = hashed % self.dimensions
            sign = 1.0 if (hashed >> 63) & 1 == 0 else -1.0
            vector[index] += sign * weight
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        return vector

    def embed_many(self, texts: Sequence[str]) -> np.ndarray:
        """Embed a batch of texts into a ``(len(texts), dimensions)`` matrix."""
        if not texts:
            return np.zeros((0, self.dimensions), dtype=np.float64)
        return np.vstack([self.embed(text) for text in texts])


@dataclass
class _IndexedItem:
    text: str
    payload: object
    vector: np.ndarray


class EmbeddingIndex:
    """A brute-force nearest-neighbour index over embedded texts.

    Supports Euclidean-distance retrieval as used for few-shot example
    selection (smaller distance ⇒ higher semantic similarity).
    """

    def __init__(self, embedder: Optional[SentenceEmbedder] = None) -> None:
        self.embedder = embedder or SentenceEmbedder()
        self._items: List[_IndexedItem] = []
        self._matrix: Optional[np.ndarray] = None

    def add(self, text: str, payload: object = None) -> None:
        """Add a text (with an arbitrary payload) to the index."""
        vector = self.embedder.embed(text)
        self._items.append(_IndexedItem(text=text, payload=payload, vector=vector))
        self._matrix = None

    def add_many(self, items: Sequence[Tuple[str, object]]) -> None:
        """Add many ``(text, payload)`` pairs."""
        for text, payload in items:
            self.add(text, payload)

    def __len__(self) -> int:
        return len(self._items)

    def _ensure_matrix(self) -> np.ndarray:
        if self._matrix is None:
            if not self._items:
                self._matrix = np.zeros((0, self.embedder.dimensions), dtype=np.float64)
            else:
                self._matrix = np.vstack([item.vector for item in self._items])
        return self._matrix

    def query(self, text: str, k: int = 5) -> List[Tuple[str, object, float]]:
        """Return the ``k`` nearest items as ``(text, payload, distance)`` tuples."""
        if k <= 0:
            raise ValueError("k must be positive")
        if not self._items:
            return []
        matrix = self._ensure_matrix()
        vector = self.embedder.embed(text)
        differences = matrix - vector[np.newaxis, :]
        distances = np.sqrt(np.sum(differences * differences, axis=1))
        order = np.argsort(distances, kind="stable")[:k]
        return [
            (self._items[i].text, self._items[i].payload, float(distances[i]))
            for i in order
        ]

    def query_payloads(self, text: str, k: int = 5) -> List[object]:
        """Return only the payloads of the ``k`` nearest items."""
        return [payload for _, payload, _ in self.query(text, k)]
