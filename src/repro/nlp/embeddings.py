"""Hashed sentence embeddings and a nearest-neighbour index.

The paper uses Sentence-BERT embeddings with Euclidean distance to retrieve
the top-5 most relevant few-shot examples for a data description
(Section 3.2.3).  Offline we replace SBERT with a deterministic hashed
bag-of-features embedding: word tokens (stopword-filtered, sub-linearly
weighted) plus character trigrams are hashed into a fixed-dimension vector and
L2-normalized.  This preserves the property the framework relies on —
semantically/lexically similar descriptions land close together — while
staying dependency-free and reproducible.

The implementation is batch-first: :meth:`SentenceEmbedder.embed_many` builds
one ``(n_texts, dimensions)`` matrix with a single scatter-add instead of a
per-text Python loop, feature hashes are memoized in a process-wide bounded
cache, and :class:`EmbeddingIndex` grows its matrix incrementally and answers
whole batches of queries with one matrix product (:meth:`EmbeddingIndex.query_many`).

Word tokens and character n-grams are both derived from the *normalized* text
(one :func:`~repro.nlp.tokenization.normalize_text` pass per input).  Because
normalization is idempotent, the resulting features — and therefore the
embeddings — are identical to the historical per-call normalization; the text
is simply normalized once instead of twice.
"""

from __future__ import annotations

import hashlib
import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nlp.stopwords import remove_stopwords
from repro.nlp.tokenization import (
    char_ngrams_normalized,
    normalize_text,
    tokenize_normalized,
)


def _stable_hash(token: str) -> int:
    """A stable (process-independent) 64-bit hash of a token."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class _BoundedFeatureCache:
    """A bounded ``feature -> (index, sign)`` cache for one dimensionality.

    Feature strings repeat heavily across a corpus (shared vocabulary, shared
    character trigrams), so memoizing the blake2b hash avoids the dominant
    per-feature cost.  Word tokens and character n-grams are kept in separate
    maps keyed by the *raw* token/gram, so cache hits skip building the
    namespaced ``w:``/``c:`` feature strings entirely.  Both maps are
    wholesale-cleared when their combined size reaches ``capacity`` — O(1)
    eviction with a bounded memory footprint, and the common corpora stay far
    below the bound.
    """

    __slots__ = ("dimensions", "capacity", "words", "grams")

    def __init__(self, dimensions: int, capacity: int = 1 << 20) -> None:
        self.dimensions = dimensions
        self.capacity = capacity
        self.words: Dict[str, Tuple[int, float]] = {}
        self.grams: Dict[str, Tuple[int, float]] = {}

    def __len__(self) -> int:
        return len(self.words) + len(self.grams)

    def _entry(self, feature: str) -> Tuple[int, float]:
        hashed = _stable_hash(feature)
        if len(self) >= self.capacity:
            self.words.clear()
            self.grams.clear()
        return (hashed % self.dimensions, 1.0 if (hashed >> 63) & 1 == 0 else -1.0)

    def word(self, token: str) -> Tuple[int, float]:
        entry = self.words.get(token)
        if entry is None:
            entry = self.words[token] = self._entry(f"w:{token}")
        return entry

    def gram(self, gram: str) -> Tuple[int, float]:
        entry = self.grams.get(gram)
        if entry is None:
            entry = self.grams[gram] = self._entry(f"c:{gram}")
        return entry


#: Process-wide caches, keyed by embedding dimensionality (the hashed index
#: depends on it).  All embedders with equal ``dimensions`` share one cache.
_FEATURE_CACHES: Dict[int, _BoundedFeatureCache] = {}


def _feature_cache(dimensions: int) -> _BoundedFeatureCache:
    cache = _FEATURE_CACHES.get(dimensions)
    if cache is None:
        cache = _FEATURE_CACHES[dimensions] = _BoundedFeatureCache(dimensions)
    return cache


@dataclass
class SentenceEmbedder:
    """Embeds short texts into fixed-dimension hashed feature vectors.

    Parameters
    ----------
    dimensions:
        Size of the embedding vector.
    char_ngram_size:
        Size of the character n-grams mixed into the representation (set to 0
        to disable character features).
    char_weight:
        Relative weight of character n-gram features versus word features.
    use_stopwords:
        Whether to drop stopwords before hashing word tokens.
    """

    dimensions: int = 512
    char_ngram_size: int = 3
    char_weight: float = 0.5
    use_stopwords: bool = True

    #: Bound of the per-instance text -> feature-array memo.  Data
    #: descriptions repeat heavily in real crawls (boilerplate parameter
    #: descriptions), so memoizing whole texts removes the extraction cost
    #: for every repeat.  Wholesale-cleared at capacity, like the feature
    #: cache.  Per instance because the arrays depend on every config knob.
    TEXT_CACHE_CAPACITY = 1 << 16

    def __post_init__(self) -> None:
        if self.dimensions <= 0:
            raise ValueError("dimensions must be positive")
        self._text_cache: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}

    def __setattr__(self, name: str, value: object) -> None:
        # Cached feature arrays depend on every config field; drop them when
        # a field is mutated after construction so one instance never mixes
        # two embedding spaces.
        if "_text_cache" in self.__dict__:
            self._text_cache.clear()
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    @staticmethod
    def _count_weight(count: int) -> float:
        """Sub-linear weight of a feature occurring ``count`` times."""
        return 1.0 if count == 1 else 1.0 + math.log(count)

    def _extract_counts(self, text: str) -> Tuple[Counter, Counter]:
        """Word-token and character-n-gram counts of a text.

        Both are computed on the normalized text (single normalization pass;
        the features are unchanged because normalization is idempotent).
        Single source of truth for :meth:`features` and the hashed hot path.
        """
        normalized = normalize_text(text)
        tokens = tokenize_normalized(normalized)
        if self.use_stopwords:
            content_tokens = remove_stopwords(tokens)
            if content_tokens:
                tokens = content_tokens
        gram_counts: Counter = Counter()
        if self.char_ngram_size > 0:
            gram_counts = Counter(char_ngrams_normalized(normalized, self.char_ngram_size))
        return Counter(tokens), gram_counts

    def features(self, text: str) -> Dict[str, float]:
        """Extract weighted features (word tokens + char n-grams) from text."""
        word_counts, gram_counts = self._extract_counts(text)
        weights: Dict[str, float] = {}
        for token, count in word_counts.items():
            weights[f"w:{token}"] = self._count_weight(count)
        for gram, count in gram_counts.items():
            weights[f"c:{gram}"] = self.char_weight * self._count_weight(count)
        return weights

    def _feature_arrays(self, text: str) -> Tuple[np.ndarray, np.ndarray]:
        """Hashed feature ``(indices, signed weights)`` arrays for one text.

        Fused feature extraction + cache lookup: produces exactly the hashed
        form of :meth:`features` (same values, same ordering) without
        materializing the namespaced feature strings on cache hits.  Whole
        texts are memoized too (callers must not mutate the returned arrays).
        """
        cached = self._text_cache.get(text)
        if cached is not None:
            return cached
        cache = _feature_cache(self.dimensions)
        word_counts, gram_counts = self._extract_counts(text)
        entries: List[Tuple[int, float]] = []
        values: List[float] = []
        count_weight = self._count_weight
        words_get = cache.words.get
        word_miss = cache.word
        for token, count in word_counts.items():
            entry = words_get(token)
            entries.append(entry if entry is not None else word_miss(token))
            values.append(count_weight(count))
        grams_get = cache.grams.get
        gram_miss = cache.gram
        char_weight = self.char_weight
        for gram, count in gram_counts.items():
            entry = grams_get(gram)
            entries.append(entry if entry is not None else gram_miss(gram))
            values.append(char_weight * count_weight(count))
        if entries:
            indices, signs = zip(*entries)
            result = (
                np.asarray(indices, dtype=np.intp),
                np.asarray(signs, dtype=np.float64) * np.asarray(values, dtype=np.float64),
            )
        else:
            result = (np.asarray([], dtype=np.intp), np.asarray([], dtype=np.float64))
        if len(self._text_cache) >= self.TEXT_CACHE_CAPACITY:
            self._text_cache.clear()
        self._text_cache[text] = result
        return result

    def embed(self, text: str) -> np.ndarray:
        """Embed a single text into a unit-length vector."""
        vector = np.zeros(self.dimensions, dtype=np.float64)
        indices, values = self._feature_arrays(text)
        np.add.at(vector, indices, values)
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        return vector

    def embed_many(self, texts: Sequence[str]) -> np.ndarray:
        """Embed a batch of texts into a ``(len(texts), dimensions)`` matrix.

        One scatter-add (``np.add.at``) over precomputed ``(row, column,
        weight)`` arrays builds the whole matrix; rows are then L2-normalized
        in one vectorized pass.  Results match per-text :meth:`embed` exactly.
        """
        matrix = np.zeros((len(texts), self.dimensions), dtype=np.float64)
        if not texts:
            return matrix
        arrays = [self._feature_arrays(text) for text in texts]
        lengths = np.fromiter(
            (indices.size for indices, _ in arrays), dtype=np.intp, count=len(arrays)
        )
        if lengths.sum():
            np.add.at(
                matrix,
                (
                    np.repeat(np.arange(len(texts), dtype=np.intp), lengths),
                    np.concatenate([indices for indices, _ in arrays]),
                ),
                np.concatenate([values for _, values in arrays]),
            )
        norms = np.linalg.norm(matrix, axis=1)
        nonzero = norms > 0
        matrix[nonzero] /= norms[nonzero, np.newaxis]
        return matrix


class EmbeddingIndex:
    """A brute-force nearest-neighbour index over embedded texts.

    Supports Euclidean-distance retrieval as used for few-shot example
    selection (smaller distance ⇒ higher semantic similarity).  Vectors are
    stored in a single capacity-doubling matrix (no rebuild on ``add``), and
    batched queries (:meth:`query_many`) compute every pairwise distance with
    one matrix product.
    """

    def __init__(self, embedder: Optional[SentenceEmbedder] = None) -> None:
        self.embedder = embedder or SentenceEmbedder()
        self._texts: List[str] = []
        self._payloads: List[object] = []
        self._matrix = np.zeros((0, self.embedder.dimensions), dtype=np.float64)
        self._sqnorms = np.zeros(0, dtype=np.float64)
        self._size = 0

    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        capacity = self._matrix.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(needed, capacity * 2, 8)
        matrix = np.zeros((new_capacity, self.embedder.dimensions), dtype=np.float64)
        matrix[: self._size] = self._matrix[: self._size]
        self._matrix = matrix
        sqnorms = np.zeros(new_capacity, dtype=np.float64)
        sqnorms[: self._size] = self._sqnorms[: self._size]
        self._sqnorms = sqnorms

    def add(self, text: str, payload: object = None) -> None:
        """Add a text (with an arbitrary payload) to the index."""
        vector = self.embedder.embed(text)
        self._reserve(1)
        self._matrix[self._size] = vector
        self._sqnorms[self._size] = float(vector @ vector)
        self._texts.append(text)
        self._payloads.append(payload)
        self._size += 1

    def add_many(self, items: Sequence[Tuple[str, object]]) -> None:
        """Add many ``(text, payload)`` pairs with one batched embedding pass."""
        if not items:
            return
        texts = [text for text, _ in items]
        vectors = self.embedder.embed_many(texts)
        self._reserve(len(items))
        self._matrix[self._size : self._size + len(items)] = vectors
        self._sqnorms[self._size : self._size + len(items)] = np.einsum(
            "ij,ij->i", vectors, vectors
        )
        self._texts.extend(texts)
        self._payloads.extend(payload for _, payload in items)
        self._size += len(items)

    def __len__(self) -> int:
        return self._size

    @property
    def vectors(self) -> np.ndarray:
        """A read-only view of the stored embedding matrix (``(len(self), dims)``).

        Writes must go through :meth:`add`/:meth:`add_many` so the cached
        squared norms stay consistent with the rows.
        """
        view = self._matrix[: self._size]
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    def _top_k(self, squared: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Indices and distances of the ``k`` smallest entries, ties by index.

        ``argpartition`` finds the k-th smallest value in O(n); the selection
        is then rebuilt as "everything strictly closer, plus the
        lowest-indexed entries at exactly the boundary value", so entries at
        tied distances (e.g. duplicate texts) are chosen by insertion order —
        matching a stable full sort.  Only the k winners are ordered
        (distance, then insertion index) and square-rooted.
        """
        if k < squared.size:
            boundary = squared[np.argpartition(squared, k - 1)[k - 1]]
            closer = np.flatnonzero(squared < boundary)
            ties = np.flatnonzero(squared == boundary)
            candidates = np.concatenate([closer, ties[: k - closer.size]])
        else:
            candidates = np.arange(squared.size)
        order = candidates[np.lexsort((candidates, squared[candidates]))]
        return order, np.sqrt(np.maximum(squared[order], 0.0))

    def query(self, text: str, k: int = 5) -> List[Tuple[str, object, float]]:
        """Return the ``k`` nearest items as ``(text, payload, distance)`` tuples."""
        if k <= 0:
            raise ValueError("k must be positive")
        if self._size == 0:
            return []
        vector = self.embedder.embed(text)
        squared = (
            self._sqnorms[: self._size]
            - 2.0 * (self._matrix[: self._size] @ vector)
            + float(vector @ vector)
        )
        order, distances = self._top_k(squared, k)
        return [
            (self._texts[i], self._payloads[i], float(distance))
            for i, distance in zip(order, distances)
        ]

    def query_many(
        self, texts: Sequence[str], k: int = 5
    ) -> List[List[Tuple[str, object, float]]]:
        """Batched :meth:`query`: one matrix product answers every text.

        Returns one result list per input text, matching what :meth:`query`
        returns for that text up to floating-point tie-breaking (items at
        bit-identical distances may swap ranks between the two code paths).
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if not texts:
            return []
        if self._size == 0:
            return [[] for _ in texts]
        queries = self.embedder.embed_many(texts)
        squared = (
            self._sqnorms[np.newaxis, : self._size]
            - 2.0 * (queries @ self._matrix[: self._size].T)
            + np.einsum("ij,ij->i", queries, queries)[:, np.newaxis]
        )
        results: List[List[Tuple[str, object, float]]] = []
        for row in squared:
            order, distances = self._top_k(row, k)
            results.append(
                [
                    (self._texts[i], self._payloads[i], float(distance))
                    for i, distance in zip(order, distances)
                ]
            )
        return results

    def query_payloads(self, text: str, k: int = 5) -> List[object]:
        """Return only the payloads of the ``k`` nearest items."""
        return [payload for _, payload, _ in self.query(text, k)]
