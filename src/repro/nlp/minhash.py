"""MinHash signatures and locality-sensitive hashing (LSH) banding.

The paper flags privacy policies with shingle Jaccard similarity above 95% as
near-duplicates (Section 5.1.1), citing the Mining of Massive Datasets
treatment.  This module implements the matching MMDS machinery so duplicate
detection scales past the O(n²) all-pairs comparison:

* :class:`MinHasher` turns a shingle set into a fixed-length signature of
  ``num_perm`` min-wise hashes drawn from the universal family
  ``h(x) = (a·x + b) mod p`` over the Mersenne prime ``p = 2³¹ − 1``.  Two
  sets agree on any one signature position with probability equal to their
  Jaccard similarity.
* :class:`LSHIndex` splits signatures into ``bands`` bands of ``rows`` rows
  and buckets documents by each band; documents sharing any bucket become
  candidate pairs.  A pair with similarity ``s`` is missed with probability
  ``(1 − s^rows)^bands``.
* :func:`choose_band_structure` picks the band layout whose miss probability
  at the target threshold is below a tolerance (default 1e−9), so LSH
  candidate generation followed by exact Jaccard verification returns the
  brute-force pair set in practice (and provably for threshold 1.0).

All hashing is stable across processes (blake2b for tokens, a rolling
polynomial over token hashes for shingles, and a seeded ``numpy`` PRNG for
the permutation coefficients), so results are reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

#: Mersenne prime 2³¹ − 1.  Shingle hashes and permutation coefficients stay
#: below it, so ``a·x + b`` fits comfortably in uint64 without overflow.
_MERSENNE_PRIME = np.uint64((1 << 31) - 1)

#: Signature value used for empty shingle sets: the maximum of the hash
#: range, so empty documents never collide with real content in any band.
_EMPTY_SLOT = np.uint64((1 << 31) - 1)

#: Default MinHash calibration.  Shared by every near-duplicate consumer
#: (:func:`repro.nlp.similarity.near_duplicates` and the streaming policy
#: profiles in :mod:`repro.policy.duplicates`) — signatures computed
#: anywhere band into the same candidate sets only while these agree, so
#: retune them HERE, never at a call site.
DEFAULT_NUM_PERM = 128
DEFAULT_MINHASH_SEED = 7


def hash_token(token: str) -> int:
    """A stable 31-bit hash of one word token (blake2b mod the prime)."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") % int(_MERSENNE_PRIME)


#: Multiplier of the rolling polynomial shingle hash (any odd constant below
#: the prime works; this is CPython's string-hash multiplier).
_ROLL_MULT = np.uint64(1000003)


def hash_token_shingles(
    tokens: Sequence[str],
    k: int,
    token_cache: Dict[str, int],
) -> np.ndarray:
    """Stable hashes of the word ``k``-shingles of a token list, vectorized.

    Equivalent in spirit to hashing each shingle tuple separately, but built
    from per-token hashes (memoized in ``token_cache`` across the corpus)
    combined with a rolling polynomial — ``k`` vector operations per document
    instead of one digest per shingle.  Token lists shorter than ``k`` hash
    their single all-tokens shingle, mirroring
    :func:`repro.nlp.similarity.shingle_set`.  Returns the deduplicated hash
    values (a set, like the shingle set itself).
    """
    if not tokens:
        return np.asarray([], dtype=np.uint64)
    hashes = np.empty(len(tokens), dtype=np.uint64)
    for position, token in enumerate(tokens):
        value = token_cache.get(token)
        if value is None:
            value = token_cache[token] = hash_token(token)
        hashes[position] = value
    window = min(k, len(tokens))
    n_shingles = len(tokens) - window + 1
    rolled = np.zeros(n_shingles, dtype=np.uint64)
    for offset in range(window):
        rolled = (rolled * _ROLL_MULT + hashes[offset : offset + n_shingles]) % _MERSENNE_PRIME
    return np.unique(rolled)


def lsh_supports_threshold(
    threshold: float, num_perm: int = DEFAULT_NUM_PERM, max_miss: float = 1e-9
) -> bool:
    """Whether any band layout meets the miss tolerance at this threshold.

    The loosest layout is one-row bands, missing a threshold-similarity pair
    with probability ``(1 − threshold)^num_perm`` — below ~0.15 (for 128
    permutations) even that exceeds the tolerance, and callers should use
    the exact scan instead.
    """
    if num_perm <= 0:
        raise ValueError("num_perm must be positive")
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    return (1.0 - threshold) ** num_perm <= max_miss


def choose_band_structure(
    num_perm: int, threshold: float, max_miss: float = 1e-9
) -> Tuple[int, int]:
    """Choose ``(bands, rows)`` for a similarity threshold.

    Picks the largest ``rows`` (fewest spurious candidates) whose miss
    probability ``(1 − threshold^rows)^bands`` at exactly the threshold stays
    below ``max_miss``; pairs above the threshold are missed even more
    rarely.  Raises :class:`ValueError` when no layout satisfies the
    tolerance (see :func:`lsh_supports_threshold`) rather than silently
    weakening the guarantee.
    """
    if not lsh_supports_threshold(threshold, num_perm=num_perm, max_miss=max_miss):
        raise ValueError(
            f"no band layout over {num_perm} permutations meets miss <= {max_miss} "
            f"at threshold {threshold}; use the exact scan for thresholds this low"
        )
    for rows in range(num_perm, 0, -1):
        bands = num_perm // rows
        miss = (1.0 - threshold**rows) ** bands
        if miss <= max_miss:
            return bands, rows
    raise AssertionError("unreachable: rows=1 satisfies any supported threshold")


@dataclass
class MinHasher:
    """Computes fixed-length MinHash signatures of hashed shingle sets."""

    num_perm: int = DEFAULT_NUM_PERM
    seed: int = DEFAULT_MINHASH_SEED
    _a: np.ndarray = field(init=False, repr=False, compare=False)
    _b: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.num_perm <= 0:
            raise ValueError("num_perm must be positive")
        rng = np.random.default_rng(self.seed)
        prime = int(_MERSENNE_PRIME)
        self._a = rng.integers(1, prime, size=self.num_perm, dtype=np.uint64)
        self._b = rng.integers(0, prime, size=self.num_perm, dtype=np.uint64)

    def signature(self, hashed_shingles: np.ndarray) -> np.ndarray:
        """The ``(num_perm,)`` signature of one hashed shingle set."""
        if hashed_shingles.size == 0:
            return np.full(self.num_perm, _EMPTY_SLOT, dtype=np.uint64)
        values = hashed_shingles.astype(np.uint64, copy=False)
        permuted = (
            self._a[:, np.newaxis] * values[np.newaxis, :] + self._b[:, np.newaxis]
        ) % _MERSENNE_PRIME
        return permuted.min(axis=1)



@dataclass
class LSHIndex:
    """Banded LSH over MinHash signatures, yielding candidate pairs."""

    bands: int
    rows: int

    def __post_init__(self) -> None:
        if self.bands <= 0 or self.rows <= 0:
            raise ValueError("bands and rows must be positive")

    def candidate_pairs(
        self,
        signatures: np.ndarray,
        active: Sequence[bool] | None = None,
    ) -> Set[Tuple[int, int]]:
        """All ``(i, j)`` pairs (``i < j``) sharing a bucket in any band.

        ``active`` masks out documents (e.g. empty shingle sets) that should
        never become candidates.
        """
        n_docs = signatures.shape[0]
        if self.bands * self.rows > signatures.shape[1]:
            raise ValueError("bands * rows exceeds the signature length")
        pairs: Set[Tuple[int, int]] = set()
        for band in range(self.bands):
            block = np.ascontiguousarray(
                signatures[:, band * self.rows : (band + 1) * self.rows]
            )
            buckets: Dict[bytes, List[int]] = {}
            for doc in range(n_docs):
                if active is not None and not active[doc]:
                    continue
                buckets.setdefault(block[doc].tobytes(), []).append(doc)
            for members in buckets.values():
                if len(members) < 2:
                    continue
                for first in range(len(members)):
                    for second in range(first + 1, len(members)):
                        pairs.add((members[first], members[second]))
        return pairs


def minhash_candidate_pairs(
    token_lists: Sequence[Sequence[str]],
    k: int,
    threshold: float,
    num_perm: int = DEFAULT_NUM_PERM,
    seed: int = DEFAULT_MINHASH_SEED,
    max_miss: float = 1e-9,
) -> Set[Tuple[int, int]]:
    """MinHash–LSH candidate pairs for a corpus of tokenized documents.

    Hashes the word ``k``-shingles of each token list
    (:func:`hash_token_shingles`), computes signatures, chooses a band
    layout for the threshold, and bands — one call.  The returned pairs are
    a superset of the true near-duplicate pairs with overwhelming
    probability (miss probability at the threshold below ``max_miss`` per
    pair); callers verify candidates with exact Jaccard.  Documents with no
    tokens never become candidates.
    """
    bands, rows = choose_band_structure(num_perm, threshold, max_miss=max_miss)
    hasher = MinHasher(num_perm=num_perm, seed=seed)
    token_cache: Dict[str, int] = {}
    signatures = np.empty((len(token_lists), hasher.num_perm), dtype=np.uint64)
    for row, tokens in enumerate(token_lists):
        signatures[row] = hasher.signature(hash_token_shingles(tokens, k, token_cache))
    active = [len(tokens) > 0 for tokens in token_lists]
    return LSHIndex(bands=bands, rows=rows).candidate_pairs(signatures, active=active)
