"""NLP substrate used by the classification and policy-analysis frameworks.

The paper relies on NLTK for sentence segmentation, Sentence-BERT for
embeddings, and Jaccard similarity for near-duplicate privacy-policy
detection.  This subpackage provides offline, dependency-free equivalents:

* :mod:`repro.nlp.tokenization` — word tokenization and normalization;
* :mod:`repro.nlp.segmentation` — rule-based sentence segmentation;
* :mod:`repro.nlp.stopwords` — an English stopword list;
* :mod:`repro.nlp.embeddings` — hashed bag-of-token / character n-gram
  sentence embeddings (batch-first, with a process-wide feature-hash cache);
* :mod:`repro.nlp.minhash` — MinHash signatures and LSH banding for
  near-linear near-duplicate candidate generation;
* :mod:`repro.nlp.similarity` — cosine / Euclidean / Jaccard similarity and
  shingle-based near-duplicate detection.
"""

from repro.nlp.tokenization import tokenize, normalize_text, word_ngrams, char_ngrams
from repro.nlp.segmentation import split_sentences
from repro.nlp.stopwords import STOPWORDS, remove_stopwords
from repro.nlp.embeddings import SentenceEmbedder, EmbeddingIndex
from repro.nlp.minhash import (
    LSHIndex,
    MinHasher,
    choose_band_structure,
    lsh_supports_threshold,
)
from repro.nlp.similarity import (
    cosine_similarity,
    euclidean_distance,
    jaccard_similarity,
    shingle_set,
    near_duplicates,
)

__all__ = [
    "tokenize",
    "normalize_text",
    "word_ngrams",
    "char_ngrams",
    "split_sentences",
    "STOPWORDS",
    "remove_stopwords",
    "SentenceEmbedder",
    "EmbeddingIndex",
    "MinHasher",
    "LSHIndex",
    "choose_band_structure",
    "lsh_supports_threshold",
    "cosine_similarity",
    "euclidean_distance",
    "jaccard_similarity",
    "shingle_set",
    "near_duplicates",
]
