"""The end-to-end privacy-policy analysis framework (Section 3.3).

:class:`PrivacyPolicyAnalyzer` ties the three steps together for a whole
corpus: for every Action that provides a reachable policy, segment the policy,
extract collection statements, and label the consistency of every data type
the classification framework says the Action collects.  A
``single_pass=True`` mode skips the extraction step and checks data types
against *all* sentences of the policy — the ablation studied in
``benchmarks/test_bench_ablation_policy_pipeline.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.classification.results import ClassificationResult
from repro.crawler.corpus import CrawlCorpus
from repro.llm.base import LLMClient
from repro.policy.consistency import ConsistencyChecker, DataTypeConsistency
from repro.policy.extraction import CollectionStatementExtractor, ExtractedStatements
from repro.policy.labels import ConsistencyLabel
from repro.taxonomy.schema import DataTaxonomy


@dataclass
class ActionPolicyAnalysis:
    """The consistency outcome for one Action."""

    action_id: str
    policy_url: Optional[str]
    policy_available: bool
    results: List[DataTypeConsistency] = field(default_factory=list)

    @property
    def n_types(self) -> int:
        """Number of collected data types analyzed for this Action."""
        return len(self.results)

    def label_counts(self) -> Dict[ConsistencyLabel, int]:
        """How many data types received each final label."""
        counts: Dict[ConsistencyLabel, int] = {label: 0 for label in ConsistencyLabel}
        for result in self.results:
            counts[result.final_label] += 1
        return counts

    def consistency_fraction(self) -> float:
        """Fraction of this Action's data types with a consistent disclosure."""
        if not self.results:
            return 0.0
        consistent = sum(1 for result in self.results if result.is_consistent)
        return consistent / len(self.results)

    def clear_count(self) -> int:
        """Number of data types with a clear disclosure."""
        return sum(1 for result in self.results if result.final_label is ConsistencyLabel.CLEAR)

    def is_fully_consistent(self) -> bool:
        """Whether every analyzed data type is consistently disclosed."""
        return bool(self.results) and all(result.is_consistent for result in self.results)


@dataclass
class PolicyConsistencyReport:
    """The consistency outcomes for all analyzed Actions."""

    analyses: Dict[str, ActionPolicyAnalysis] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.analyses)

    def add(self, analysis: ActionPolicyAnalysis) -> None:
        """Record one Action's analysis."""
        self.analyses[analysis.action_id] = analysis

    def actions_with_policies(self) -> List[ActionPolicyAnalysis]:
        """Analyses of Actions whose policy was reachable."""
        return [analysis for analysis in self.analyses.values() if analysis.policy_available]

    def all_results(self) -> List[Tuple[str, DataTypeConsistency]]:
        """Every (action id, data-type consistency) pair across Actions with policies."""
        pairs: List[Tuple[str, DataTypeConsistency]] = []
        for analysis in self.actions_with_policies():
            for result in analysis.results:
                pairs.append((analysis.action_id, result))
        return pairs

    def label_distribution(self) -> Dict[ConsistencyLabel, int]:
        """Corpus-wide distribution of final labels."""
        counts: Dict[ConsistencyLabel, int] = {label: 0 for label in ConsistencyLabel}
        for _, result in self.all_results():
            counts[result.final_label] += 1
        return counts


class PrivacyPolicyAnalyzer:
    """Runs the three-step policy-consistency framework over a corpus."""

    def __init__(
        self,
        taxonomy: DataTaxonomy,
        llm: LLMClient,
        single_pass: bool = False,
        extraction_batch_size: int = 40,
    ) -> None:
        self.taxonomy = taxonomy
        self.llm = llm
        self.single_pass = single_pass
        self.extractor = CollectionStatementExtractor(llm, batch_size=extraction_batch_size)
        self.checker = ConsistencyChecker(taxonomy, llm)

    # ------------------------------------------------------------------
    def analyze_policy(
        self,
        policy_text: str,
        collected_types: Sequence[Tuple[str, str]],
    ) -> List[DataTypeConsistency]:
        """Analyze one policy text against a list of collected data types."""
        if self.single_pass:
            sentences = self.extractor.segment(policy_text)
            statements = ExtractedStatements(
                sentences=sentences, collection_indices=list(range(len(sentences)))
            )
        else:
            statements = self.extractor.extract(policy_text)
        return self.checker.check_types(collected_types, statements)

    def analyze_action(
        self,
        action_id: str,
        policy_url: Optional[str],
        policy_text: Optional[str],
        collected_types: Sequence[Tuple[str, str]],
    ) -> ActionPolicyAnalysis:
        """Analyze one Action given its (possibly missing) policy text."""
        if policy_text is None:
            return ActionPolicyAnalysis(
                action_id=action_id,
                policy_url=policy_url,
                policy_available=False,
            )
        results = self.analyze_policy(policy_text, collected_types)
        return ActionPolicyAnalysis(
            action_id=action_id,
            policy_url=policy_url,
            policy_available=True,
            results=results,
        )

    def analyze_corpus(
        self,
        corpus: CrawlCorpus,
        classification: ClassificationResult,
    ) -> PolicyConsistencyReport:
        """Analyze every Action in a corpus that collects at least one data type."""
        report = PolicyConsistencyReport()
        collected_by_action = classification.action_data_types()
        for action_id, action in corpus.unique_actions().items():
            collected_types = collected_by_action.get(action_id, [])
            if not collected_types:
                continue
            policy_text = corpus.policy_text(action.legal_info_url)
            report.add(
                self.analyze_action(
                    action_id=action_id,
                    policy_url=action.legal_info_url,
                    policy_text=policy_text,
                    collected_types=collected_types,
                )
            )
        return report
