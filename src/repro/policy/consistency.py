"""Per-data-type consistency checking (framework step three, Code 6).

For every data type an Action collects, the checker passes the Action's
collection statements and the data type's description to the LLM, receives one
label per ``(sentence, data type)`` pair, and reduces them to the most precise
label using the precedence rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.llm import prompts
from repro.llm.base import LLMClient
from repro.policy.extraction import ExtractedStatements
from repro.policy.labels import ConsistencyLabel, most_precise_label
from repro.taxonomy.schema import DataTaxonomy

#: Example tuples included in the Code 6 prompt (Table 2 of the paper).
_CONSISTENCY_EXAMPLES: Tuple[Dict[str, str], ...] = (
    {
        "policy_text": "For example, we collect information ..., and a timestamp for the request.",
        "data_description": "End time of the query as unix timestamp.",
        "label": "CLEAR",
    },
    {
        "policy_text": "User Data that includes data about how you use our website and any online services.",
        "data_description": "Script to be produced",
        "label": "VAGUE",
    },
    {
        "policy_text": "We only collect user name and mailing address",
        "data_description": "Email address of the user",
        "label": "OMITTED",
    },
    {
        "policy_text": "We do not actively collect and store any personal data from users... "
                       "We use Your Personal data to provide and improve the Service.",
        "data_description": "Shopping category data",
        "label": "AMBIGUOUS",
    },
    {
        "policy_text": "We do not collect our customer's personal information or share it with "
                       "unaffiliated third parties.",
        "data_description": "User's level of fitness",
        "label": "INCORRECT",
    },
)


@dataclass
class DataTypeConsistency:
    """The consistency outcome for one (Action, data type) pair."""

    category: str
    data_type: str
    final_label: ConsistencyLabel
    sentence_labels: List[Tuple[int, ConsistencyLabel]] = field(default_factory=list)

    @property
    def is_consistent(self) -> bool:
        """Whether the final label is consistent (clear or vague)."""
        return self.final_label.is_consistent


class ConsistencyChecker:
    """Labels the disclosure consistency of collected data types."""

    def __init__(self, taxonomy: DataTaxonomy, llm: LLMClient) -> None:
        self.taxonomy = taxonomy
        self.llm = llm

    # ------------------------------------------------------------------
    def check_type(
        self,
        category: str,
        data_type: str,
        statements: ExtractedStatements,
    ) -> DataTypeConsistency:
        """Label one collected data type against a policy's collection statements."""
        collection = statements.collection_statements
        if not collection:
            return DataTypeConsistency(
                category=category,
                data_type=data_type,
                final_label=ConsistencyLabel.OMITTED,
            )
        resolved = self.taxonomy.get_type(category, data_type)
        description = resolved.description if resolved else ""
        prompt = prompts.render_consistency_prompt(
            data_entity={
                "category": category,
                "data_type": data_type,
                "description": description,
            },
            statements=[{"index": index, "text": text} for index, text in collection],
            examples=list(_CONSISTENCY_EXAMPLES),
        )
        response = prompts.parse_json_response(
            self.llm.complete_text("You are a privacy policy consistency checker.", prompt)
        )
        sentence_labels: List[Tuple[int, ConsistencyLabel]] = []
        for entry in response.get("labels", []):
            if not isinstance(entry, Mapping):
                continue
            try:
                index = int(entry.get("sentence_index", -1))
            except (TypeError, ValueError):
                continue
            label = ConsistencyLabel.from_string(str(entry.get("label", "omitted")))
            sentence_labels.append((index, label))
        final = most_precise_label(label for _, label in sentence_labels)
        return DataTypeConsistency(
            category=category,
            data_type=data_type,
            final_label=final,
            sentence_labels=sentence_labels,
        )

    def check_types(
        self,
        collected_types: Sequence[Tuple[str, str]],
        statements: ExtractedStatements,
    ) -> List[DataTypeConsistency]:
        """Label every collected data type of one Action."""
        return [
            self.check_type(category, data_type, statements)
            for category, data_type in collected_types
        ]
