"""Collection-statement extraction (framework step two, Code 5).

A privacy policy is first segmented into sentences; the sentences are then
passed (in batches) to the LLM, which returns the indices of sentences that
relate to data collection.  Keeping the original sentence indices lets the
later consistency step tie every label back to a specific sentence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.llm import prompts
from repro.llm.base import LLMClient
from repro.nlp.segmentation import split_sentences


@dataclass
class ExtractedStatements:
    """Sentences of a policy and which of them are collection statements."""

    sentences: List[str] = field(default_factory=list)
    collection_indices: List[int] = field(default_factory=list)

    @property
    def collection_statements(self) -> List[Tuple[int, str]]:
        """The collection-related sentences as ``(index, text)`` pairs."""
        return [
            (index, self.sentences[index])
            for index in self.collection_indices
            if 0 <= index < len(self.sentences)
        ]

    @property
    def n_sentences(self) -> int:
        """Number of sentences in the policy."""
        return len(self.sentences)

    @property
    def n_collection_statements(self) -> int:
        """Number of sentences identified as collection statements."""
        return len(self.collection_statements)


class CollectionStatementExtractor:
    """Segments a policy and extracts its data-collection statements."""

    def __init__(self, llm: LLMClient, batch_size: int = 40) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.llm = llm
        self.batch_size = batch_size

    def segment(self, policy_text: str) -> List[str]:
        """Split a policy document into sentences."""
        return split_sentences(policy_text)

    def extract(self, policy_text: str) -> ExtractedStatements:
        """Segment a policy and identify its collection statements."""
        sentences = self.segment(policy_text)
        result = ExtractedStatements(sentences=sentences)
        if not sentences:
            return result
        for start in range(0, len(sentences), self.batch_size):
            batch = sentences[start:start + self.batch_size]
            prompt = prompts.render_collection_extraction_prompt(batch)
            response = prompts.parse_json_response(
                self.llm.complete_text(
                    "You are a privacy policy data collection statement extractor.", prompt
                )
            )
            indices = response.get("collection_sentence_indices", [])
            if not isinstance(indices, list):
                continue
            for index in indices:
                try:
                    absolute = start + int(index)
                except (TypeError, ValueError):
                    continue
                if 0 <= absolute < len(sentences) and absolute not in result.collection_indices:
                    result.collection_indices.append(absolute)
        result.collection_indices.sort()
        return result
