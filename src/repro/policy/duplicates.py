"""Duplicate and near-duplicate privacy-policy analysis (Section 5.1.1, Table 6).

Many Actions point their ``legal_info_url`` at the same document.  The paper
groups policies that appear more than once, measures near-duplicates (Jaccard
similarity of word shingles above 95%), flags very short policies, and
manually triages what the duplicated documents contain (Table 6).  This module
reproduces all of that, with the manual triage replaced by content heuristics.
"""

from __future__ import annotations

import enum
import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.crawler.corpus import CrawlCorpus
from repro.nlp.similarity import near_duplicates
from repro.web.psl import registrable_domain
from repro.web.urls import url_host


class PolicyContentKind(str, enum.Enum):
    """What a duplicated privacy-policy document contains (Table 6 rows)."""

    EXTERNAL_SERVICE = "external_service"
    EMPTY = "empty"
    SAME_VENDOR = "same_vendor"
    JAVASCRIPT = "javascript"
    OPENAI_POLICY = "openai_policy"
    TRACKING_PIXEL = "tracking_pixel"
    OTHER = "other"


_EXTERNAL_SERVICE_DOMAINS = (
    "github.com", "docs.github.com", "policies.google.com", "google.com",
    "stripe.com", "microsoft.com", "aws.amazon.com", "cloudflare.com",
)

_JS_MARKERS = ("<script", "window.__", "document.getelementbyid", "enable javascript")

_PIXEL_MARKERS = ("gif89a", "\x89png")


def classify_policy_content(
    url: str,
    text: str,
    action_domains: Sequence[str] = (),
) -> PolicyContentKind:
    """Heuristically classify what a policy document contains.

    ``action_domains`` are the API domains of the Actions that reference this
    policy; if the policy is hosted on the same registrable domain as one of
    them (and shared across several Actions), it is a vendor-level policy.
    """
    stripped = (text or "").strip()
    lowered = stripped.lower()
    if not stripped:
        return PolicyContentKind.EMPTY
    if any(marker in lowered for marker in _PIXEL_MARKERS) or lowered.startswith("gif89a"):
        return PolicyContentKind.TRACKING_PIXEL
    if any(marker in lowered for marker in _JS_MARKERS) and "privacy" not in lowered[:200]:
        return PolicyContentKind.JAVASCRIPT
    if any(marker in lowered for marker in _JS_MARKERS) and len(re.sub(r"<[^>]+>", "", lowered)) < 200:
        return PolicyContentKind.JAVASCRIPT
    host = url_host(url)
    policy_domain = registrable_domain(host) if host else None
    if policy_domain == "openai.com" or "openai privacy policy" in lowered:
        return PolicyContentKind.OPENAI_POLICY
    if policy_domain and any(
        policy_domain == registrable_domain(external) for external in _EXTERNAL_SERVICE_DOMAINS
    ):
        return PolicyContentKind.EXTERNAL_SERVICE
    if policy_domain and action_domains:
        action_registrables = {registrable_domain(domain) for domain in action_domains if domain}
        if policy_domain in action_registrables:
            return PolicyContentKind.SAME_VENDOR
    return PolicyContentKind.OTHER


@dataclass
class DuplicatePolicyReport:
    """Corpus-level duplicate / near-duplicate policy statistics."""

    n_actions_with_policy_url: int = 0
    n_policies_fetched: int = 0
    availability: float = 0.0
    #: Fraction of fetched policy documents whose text is shared by more than
    #: one distinct Action.
    duplicate_share: float = 0.0
    #: Fraction of distinct policy texts that are near-duplicates of another.
    near_duplicate_share: float = 0.0
    #: Fraction of fetched policies shorter than 500 characters.
    short_share: float = 0.0
    #: Breakdown of what duplicated policies contain (Table 6).
    duplicate_content: Counter = field(default_factory=Counter)
    #: Groups of Action ids sharing an identical policy text.
    duplicate_groups: List[List[str]] = field(default_factory=list)

    def duplicate_content_fractions(self) -> Dict[str, float]:
        """Table 6 rows as fractions of duplicated policies."""
        total = sum(self.duplicate_content.values())
        if total == 0:
            return {}
        return {kind: count / total for kind, count in self.duplicate_content.most_common()}


def analyze_policy_corpus(
    corpus: CrawlCorpus,
    near_duplicate_threshold: float = 0.95,
    short_policy_chars: int = 500,
    min_duplicate_group: int = 2,
    near_duplicate_method: str = "auto",
) -> DuplicatePolicyReport:
    """Compute duplicate, near-duplicate, and short-policy statistics for a corpus.

    ``near_duplicate_method`` selects how near-duplicate candidate pairs are
    generated (see :func:`repro.nlp.similarity.near_duplicates`): ``"auto"``
    uses MinHash–LSH banding at corpus scale and the exact pairwise scan for
    small inputs.  LSH matches the exact pair set with overwhelming
    probability (per-pair miss probability below 1e-9 at the threshold).
    """
    report = DuplicatePolicyReport()
    actions = corpus.unique_actions()

    action_texts: Dict[str, str] = {}
    url_actions: Dict[str, List[str]] = {}
    for action_id, action in actions.items():
        if not action.legal_info_url:
            continue
        report.n_actions_with_policy_url += 1
        url_actions.setdefault(action.legal_info_url, []).append(action_id)
        text = corpus.policy_text(action.legal_info_url)
        if text is not None:
            action_texts[action_id] = text

    report.n_policies_fetched = len(action_texts)
    if report.n_actions_with_policy_url:
        report.availability = report.n_policies_fetched / report.n_actions_with_policy_url
    if not action_texts:
        return report

    # Exact duplicates: identical normalized text across distinct Actions.
    text_groups: Dict[str, List[str]] = {}
    for action_id, text in action_texts.items():
        key = " ".join(text.split())
        text_groups.setdefault(key, []).append(action_id)
    duplicated_actions = 0
    for key, members in text_groups.items():
        if len(members) >= min_duplicate_group:
            duplicated_actions += len(members)
            report.duplicate_groups.append(sorted(members))
            # Triage the duplicated content (Table 6).
            sample_action = members[0]
            url = actions[sample_action].legal_info_url or ""
            domains = [actions[member].domain for member in members]
            kind = classify_policy_content(url, action_texts[sample_action], domains)
            # Table 6 reports the share of *Actions* whose duplicated policy
            # holds each kind of content, so weight by group size.
            report.duplicate_content[kind.value] += len(members)
    report.duplicate_share = duplicated_actions / report.n_policies_fetched

    # Near-duplicates among distinct texts.
    distinct_texts = list(text_groups.keys())
    if len(distinct_texts) > 1:
        pairs = near_duplicates(
            distinct_texts,
            threshold=near_duplicate_threshold,
            method=near_duplicate_method,
        )
        near_duplicate_indices = set()
        for index_a, index_b, _ in pairs:
            near_duplicate_indices.add(index_a)
            near_duplicate_indices.add(index_b)
        report.near_duplicate_share = len(near_duplicate_indices) / len(distinct_texts)

    # Short policies.
    short = sum(1 for text in action_texts.values() if len(text) < short_policy_chars)
    report.short_share = short / report.n_policies_fetched
    return report
