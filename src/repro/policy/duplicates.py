"""Duplicate and near-duplicate privacy-policy analysis (Section 5.1.1, Table 6).

Many Actions point their ``legal_info_url`` at the same document.  The paper
groups policies that appear more than once, measures near-duplicates (Jaccard
similarity of word shingles above 95%), flags very short policies, and
manually triages what the duplicated documents contain (Table 6).  This module
reproduces all of that, with the manual triage replaced by content heuristics.

The analysis is built as a shardable map-reduce so it runs over a
:class:`~repro.io.shards.ShardedCorpusStore`'s policy shards without
materializing the corpus:

* **map** — :class:`PolicyProfileAccumulator` folds one policy fetch record
  at a time into a compact :class:`PolicyTextProfile`: a hash of the
  normalized text (exact-duplicate key), the character count (short-policy
  check), a MinHash signature over the text's word shingles
  (:mod:`repro.nlp.minhash`, computed shard-locally), and the text/URL-only
  prefix of the Table 6 content triage;
* **reduce** — :func:`finalize_duplicate_report` joins the merged profiles
  against the Action → policy-URL catalog, groups exact duplicates by text
  hash, resolves the vendor-dependent content kinds, generates LSH candidate
  pairs from the *union* of the shard-local signatures, and verifies each
  candidate with exact shingle Jaccard — re-reading only the candidate texts
  through a caller-supplied fetcher, so memory stays O(profiles), never
  O(total policy text).

Every grouping and ranking is order-canonical (groups sort by their smallest
member id, the triage samples each group's smallest member), so the
in-memory entry point :func:`analyze_policy_corpus` and the shard-streamed
path (:mod:`repro.analysis.streaming`) produce identical reports for the
same records — at any shard count, worker count, or execution backend.
"""

from __future__ import annotations

import enum
import hashlib
import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.crawler.corpus import CrawlCorpus
from repro.crawler.policy_fetcher import PolicyFetchResult
from repro.nlp.minhash import (
    DEFAULT_MINHASH_SEED,
    DEFAULT_NUM_PERM,
    LSHIndex,
    MinHasher,
    choose_band_structure,
    hash_token_shingles,
    lsh_supports_threshold,
)
from repro.nlp.similarity import (
    DEFAULT_SHINGLE_K,
    LSH_MIN_TEXTS,
    _shingles_from_tokens,
    jaccard_similarity,
)
from repro.nlp.tokenization import tokenize
from repro.web.psl import registrable_domain
from repro.web.urls import url_host


class PolicyContentKind(str, enum.Enum):
    """What a duplicated privacy-policy document contains (Table 6 rows)."""

    EXTERNAL_SERVICE = "external_service"
    EMPTY = "empty"
    SAME_VENDOR = "same_vendor"
    JAVASCRIPT = "javascript"
    OPENAI_POLICY = "openai_policy"
    TRACKING_PIXEL = "tracking_pixel"
    OTHER = "other"


_EXTERNAL_SERVICE_DOMAINS = (
    "github.com", "docs.github.com", "policies.google.com", "google.com",
    "stripe.com", "microsoft.com", "aws.amazon.com", "cloudflare.com",
)

_JS_MARKERS = ("<script", "window.__", "document.getelementbyid", "enable javascript")

_PIXEL_MARKERS = ("gif89a", "\x89png")

#: Near-duplicate calibration, imported from the single source of truth
#: (:mod:`repro.nlp.minhash` / :mod:`repro.nlp.similarity`) so shard-local
#: signatures band into exactly the candidate set
#: :func:`repro.nlp.similarity.near_duplicates` would generate — retuning
#: those modules retunes this analysis with them.
_SHINGLE_K = DEFAULT_SHINGLE_K
_NUM_PERM = DEFAULT_NUM_PERM
_MINHASH_SEED = DEFAULT_MINHASH_SEED
_LSH_MIN_TEXTS = LSH_MIN_TEXTS


def classify_policy_text(url: str, text: str) -> Optional[PolicyContentKind]:
    """The text/URL-only prefix of the Table 6 content triage.

    Returns the content kind when it is decidable from the document and its
    URL alone, or ``None`` when the decision needs the referencing Actions'
    API domains (vendor-level policies versus ``OTHER``) — see
    :func:`resolve_policy_vendor_kind`.  Computable shard-locally, which is
    what lets the streaming analyzer triage policies in the map step.
    """
    stripped = (text or "").strip()
    lowered = stripped.lower()
    if not stripped:
        return PolicyContentKind.EMPTY
    if any(marker in lowered for marker in _PIXEL_MARKERS) or lowered.startswith("gif89a"):
        return PolicyContentKind.TRACKING_PIXEL
    if any(marker in lowered for marker in _JS_MARKERS) and "privacy" not in lowered[:200]:
        return PolicyContentKind.JAVASCRIPT
    if any(marker in lowered for marker in _JS_MARKERS) and len(re.sub(r"<[^>]+>", "", lowered)) < 200:
        return PolicyContentKind.JAVASCRIPT
    host = url_host(url)
    policy_domain = registrable_domain(host) if host else None
    if policy_domain == "openai.com" or "openai privacy policy" in lowered:
        return PolicyContentKind.OPENAI_POLICY
    if policy_domain and any(
        policy_domain == registrable_domain(external) for external in _EXTERNAL_SERVICE_DOMAINS
    ):
        return PolicyContentKind.EXTERNAL_SERVICE
    return None


def resolve_policy_vendor_kind(
    policy_domain: Optional[str], action_domains: Sequence[str]
) -> PolicyContentKind:
    """Resolve the vendor-dependent tail of the triage.

    A policy hosted on the same registrable domain as one of its referencing
    Actions' API servers is a vendor-level policy; anything else is
    ``OTHER``.
    """
    if policy_domain and action_domains:
        action_registrables = {registrable_domain(domain) for domain in action_domains if domain}
        if policy_domain in action_registrables:
            return PolicyContentKind.SAME_VENDOR
    return PolicyContentKind.OTHER


def classify_policy_content(
    url: str,
    text: str,
    action_domains: Sequence[str] = (),
) -> PolicyContentKind:
    """Heuristically classify what a policy document contains.

    ``action_domains`` are the API domains of the Actions that reference this
    policy; if the policy is hosted on the same registrable domain as one of
    them (and shared across several Actions), it is a vendor-level policy.
    """
    kind = classify_policy_text(url, text)
    if kind is not None:
        return kind
    host = url_host(url)
    policy_domain = registrable_domain(host) if host else None
    return resolve_policy_vendor_kind(policy_domain, action_domains)


# ---------------------------------------------------------------------------
# Map step: per-record policy text profiles
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PolicyTextProfile:
    """Everything the duplicate analysis needs about one fetched policy.

    Compact and picklable: the raw text is dropped after profiling (the
    near-duplicate verification re-reads only candidate texts).
    """

    url: str
    #: SHA-256 of the whitespace-normalized text — the exact-duplicate key.
    text_hash: str
    #: Characters of the *raw* text (the short-policy check).
    n_chars: int
    #: MinHash signature of the normalized text's word shingles.
    signature: np.ndarray
    #: Whether the text tokenizes to anything (empty docs never band).
    has_tokens: bool
    #: Text/URL-only content triage (``None`` = needs the Action domains).
    kind_partial: Optional[PolicyContentKind]
    policy_domain: Optional[str]


def normalize_policy_text(text: str) -> str:
    """Whitespace-normalize a policy text (the exact-duplicate key space)."""
    return " ".join(text.split())


class PolicyProfileAccumulator:
    """Streams policy fetch records into :class:`PolicyTextProfile` rows.

    One record at a time, any order, shard-parallel: per-token hashes are
    memoized per accumulator, signatures are pure functions of the text, and
    :meth:`merge` is a plain union (profiles are keyed by URL, which shards
    partition).
    """

    def __init__(self) -> None:
        self.profiles: Dict[str, PolicyTextProfile] = {}
        self._hasher = MinHasher(num_perm=_NUM_PERM, seed=_MINHASH_SEED)
        self._token_cache: Dict[str, int] = {}

    def update(self, result: PolicyFetchResult) -> None:
        """Profile one fetch record (failed fetches carry no text and skip)."""
        if not result.ok or result.text is None:
            return
        normalized = normalize_policy_text(result.text)
        tokens = tokenize(normalized)
        host = url_host(result.url)
        self.profiles[result.url] = PolicyTextProfile(
            url=result.url,
            text_hash=hashlib.sha256(normalized.encode("utf-8")).hexdigest(),
            n_chars=len(result.text),
            signature=self._hasher.signature(
                hash_token_shingles(tokens, _SHINGLE_K, self._token_cache)
            ),
            has_tokens=bool(tokens),
            kind_partial=classify_policy_text(result.url, result.text),
            policy_domain=registrable_domain(host) if host else None,
        )

    def merge(self, other: "PolicyProfileAccumulator") -> None:
        """Union another shard's profiles (URL-disjoint by sharding)."""
        self.profiles.update(other.profiles)


# ---------------------------------------------------------------------------
# The report
# ---------------------------------------------------------------------------
@dataclass
class DuplicatePolicyReport:
    """Corpus-level duplicate / near-duplicate policy statistics."""

    n_actions_with_policy_url: int = 0
    n_policies_fetched: int = 0
    availability: float = 0.0
    #: Fraction of fetched policy documents whose text is shared by more than
    #: one distinct Action.
    duplicate_share: float = 0.0
    #: Fraction of distinct policy texts that are near-duplicates of another.
    near_duplicate_share: float = 0.0
    #: Fraction of fetched policies shorter than 500 characters.
    short_share: float = 0.0
    #: Breakdown of what duplicated policies contain (Table 6).
    duplicate_content: Counter = field(default_factory=Counter)
    #: Groups of Action ids sharing an identical policy text.
    duplicate_groups: List[List[str]] = field(default_factory=list)

    def duplicate_content_fractions(self) -> Dict[str, float]:
        """Table 6 rows as fractions of duplicated policies."""
        total = sum(self.duplicate_content.values())
        if total == 0:
            return {}
        return {kind: count / total for kind, count in self.duplicate_content.most_common()}


# ---------------------------------------------------------------------------
# Reduce step
# ---------------------------------------------------------------------------
def _near_duplicate_hashes(
    distinct: List[Tuple[str, PolicyTextProfile]],
    fetch_normalized_texts: Callable[[Sequence[str]], Mapping[str, str]],
    threshold: float,
    method: str,
) -> Set[str]:
    """Text hashes participating in at least one verified near-duplicate pair.

    Candidate pairs come either from the exact all-pairs scan (small inputs
    or ``method="exact"``, mirroring ``near_duplicates``'s auto rule) or
    from banding the shard-computed MinHash signatures; every candidate is
    then verified with exact Jaccard over the real shingle sets, re-reading
    only the candidate texts via ``fetch_normalized_texts(urls)``.
    """
    if method not in ("auto", "exact", "lsh"):
        raise ValueError(f"unknown method: {method!r}")
    n_texts = len(distinct)
    if n_texts < 2:
        return set()
    active = [profile.has_tokens for _, profile in distinct]
    use_exact = (
        method == "exact"
        or (method == "auto" and n_texts < _LSH_MIN_TEXTS)
        or not lsh_supports_threshold(threshold)
    )
    if use_exact:
        candidates = {
            (i, j)
            for i in range(n_texts)
            if active[i]
            for j in range(i + 1, n_texts)
            if active[j]
        }
    else:
        bands, rows = choose_band_structure(_NUM_PERM, threshold)
        signatures = np.stack([profile.signature for _, profile in distinct])
        candidates = LSHIndex(bands=bands, rows=rows).candidate_pairs(
            signatures, active=active
        )
    if not candidates:
        return set()

    candidate_indices = sorted({index for pair in candidates for index in pair})
    texts = fetch_normalized_texts(
        [distinct[index][1].url for index in candidate_indices]
    )
    shingles = {
        index: _shingles_from_tokens(
            tokenize(texts[distinct[index][1].url]), _SHINGLE_K
        )
        for index in candidate_indices
    }
    near: Set[str] = set()
    for i, j in sorted(candidates):
        shingles_a, shingles_b = shingles[i], shingles[j]
        smaller, larger = sorted((len(shingles_a), len(shingles_b)))
        if larger > 0 and smaller / larger < threshold:
            # Even perfect containment cannot reach the threshold.
            continue
        if jaccard_similarity(shingles_a, shingles_b) >= threshold:
            near.add(distinct[i][0])
            near.add(distinct[j][0])
    return near


def finalize_duplicate_report(
    action_policy_urls: Mapping[str, str],
    action_domains: Mapping[str, str],
    profiles: Mapping[str, PolicyTextProfile],
    fetch_normalized_texts: Callable[[Sequence[str]], Mapping[str, str]],
    near_duplicate_threshold: float = 0.95,
    short_policy_chars: int = 500,
    min_duplicate_group: int = 2,
    near_duplicate_method: str = "auto",
) -> DuplicatePolicyReport:
    """Reduce merged policy profiles into the duplicate-policy report.

    ``action_policy_urls`` maps every Action with a ``legal_info_url`` to
    that URL; ``action_domains`` maps Action ids to their API server domains
    (for the vendor triage).  ``fetch_normalized_texts`` resolves a list of
    URLs to their whitespace-normalized texts — the only point where text is
    (re)read, and only for near-duplicate candidates.

    All orderings are canonical: duplicate groups sort by their smallest
    member and sample that member's document for the Table 6 triage.
    """
    report = DuplicatePolicyReport()
    report.n_actions_with_policy_url = len(action_policy_urls)

    #: Action id → profile of its fetched policy (the "action_texts" set).
    fetched: Dict[str, PolicyTextProfile] = {}
    for action_id, url in action_policy_urls.items():
        profile = profiles.get(url)
        if profile is not None:
            fetched[action_id] = profile
    report.n_policies_fetched = len(fetched)
    if report.n_actions_with_policy_url:
        report.availability = report.n_policies_fetched / report.n_actions_with_policy_url
    if not fetched:
        return report

    # Exact duplicates: identical normalized text across distinct Actions.
    groups: Dict[str, List[str]] = {}
    for action_id, profile in fetched.items():
        groups.setdefault(profile.text_hash, []).append(action_id)
    duplicated_actions = 0
    duplicate_groups = [
        sorted(members)
        for members in groups.values()
        if len(members) >= min_duplicate_group
    ]
    for members in sorted(duplicate_groups, key=lambda group: group[0]):
        duplicated_actions += len(members)
        report.duplicate_groups.append(members)
        # Triage the duplicated content (Table 6) on the canonical sample:
        # the group's smallest Action id.
        sample_profile = fetched[members[0]]
        kind = sample_profile.kind_partial
        if kind is None:
            kind = resolve_policy_vendor_kind(
                sample_profile.policy_domain,
                [action_domains.get(member, "") for member in members],
            )
        # Table 6 reports the share of *Actions* whose duplicated policy
        # holds each kind of content, so weight by group size.
        report.duplicate_content[kind.value] += len(members)
    report.duplicate_share = duplicated_actions / report.n_policies_fetched

    # Near-duplicates among distinct texts (canonical order: text hash).
    distinct: Dict[str, PolicyTextProfile] = {}
    for profile in fetched.values():
        distinct.setdefault(profile.text_hash, profile)
    if len(distinct) > 1:
        near = _near_duplicate_hashes(
            sorted(distinct.items()),
            fetch_normalized_texts,
            threshold=near_duplicate_threshold,
            method=near_duplicate_method,
        )
        report.near_duplicate_share = len(near) / len(distinct)

    # Short policies (per Action, raw character count).
    short = sum(1 for profile in fetched.values() if profile.n_chars < short_policy_chars)
    report.short_share = short / report.n_policies_fetched
    return report


def analyze_policy_corpus(
    corpus: CrawlCorpus,
    near_duplicate_threshold: float = 0.95,
    short_policy_chars: int = 500,
    min_duplicate_group: int = 2,
    near_duplicate_method: str = "auto",
) -> DuplicatePolicyReport:
    """Compute duplicate, near-duplicate, and short-policy statistics for a corpus.

    The in-memory entry point over the same map (profile) / reduce
    (finalize) machinery the shard-streamed path uses, so both produce
    identical reports.  ``near_duplicate_method`` selects how near-duplicate
    candidate pairs are generated: ``"auto"`` bands MinHash signatures at
    corpus scale and scans all pairs for small inputs; either way candidates
    are verified with exact Jaccard (LSH matches the exact pair set with
    overwhelming probability — per-pair miss probability below 1e-9 at the
    threshold).
    """
    actions = corpus.unique_actions()
    action_policy_urls = {
        action_id: action.legal_info_url
        for action_id, action in actions.items()
        if action.legal_info_url
    }
    action_domains = {action_id: action.domain for action_id, action in actions.items()}

    accumulator = PolicyProfileAccumulator()
    for result in corpus.policies.values():
        accumulator.update(result)

    def fetch_normalized_texts(urls: Sequence[str]) -> Dict[str, str]:
        return {
            url: normalize_policy_text(corpus.policies[url].text) for url in urls
        }

    return finalize_duplicate_report(
        action_policy_urls,
        action_domains,
        accumulator.profiles,
        fetch_normalized_texts,
        near_duplicate_threshold=near_duplicate_threshold,
        short_policy_chars=short_policy_chars,
        min_duplicate_group=min_duplicate_group,
        near_duplicate_method=near_duplicate_method,
    )
