"""Disclosure consistency labels and the precedence rule (Section 3.3).

Disclosures are labelled *clear*, *vague*, *ambiguous*, *incorrect*, or
*omitted*.  Clear and vague disclosures are grouped as *consistent*; the rest
are *inconsistent*.  When a data type receives multiple labels (one per
collection statement), the most precise label wins in the order
clear > vague > ambiguous > incorrect > omitted.
"""

from __future__ import annotations

import enum
from typing import Iterable, Tuple


class ConsistencyLabel(str, enum.Enum):
    """Disclosure-consistency label for one (Action, data type) pair."""

    CLEAR = "clear"
    VAGUE = "vague"
    AMBIGUOUS = "ambiguous"
    INCORRECT = "incorrect"
    OMITTED = "omitted"

    @classmethod
    def from_string(cls, value: str) -> "ConsistencyLabel":
        """Parse a label from (case-insensitive) text, defaulting to ``OMITTED``."""
        try:
            return cls(value.strip().lower())
        except ValueError:
            return cls.OMITTED

    @property
    def is_consistent(self) -> bool:
        """Whether the label counts as a consistent disclosure."""
        return self in CONSISTENT_LABELS


#: Precedence order used to pick the most precise label (Section 3.3).
LABEL_PRECEDENCE: Tuple[ConsistencyLabel, ...] = (
    ConsistencyLabel.CLEAR,
    ConsistencyLabel.VAGUE,
    ConsistencyLabel.AMBIGUOUS,
    ConsistencyLabel.INCORRECT,
    ConsistencyLabel.OMITTED,
)

#: Labels considered consistent / inconsistent data flows.
CONSISTENT_LABELS: Tuple[ConsistencyLabel, ...] = (
    ConsistencyLabel.CLEAR,
    ConsistencyLabel.VAGUE,
)
INCONSISTENT_LABELS: Tuple[ConsistencyLabel, ...] = (
    ConsistencyLabel.AMBIGUOUS,
    ConsistencyLabel.INCORRECT,
    ConsistencyLabel.OMITTED,
)


def most_precise_label(labels: Iterable[ConsistencyLabel]) -> ConsistencyLabel:
    """Reduce per-sentence labels to the most precise one.

    An empty collection reduces to ``OMITTED`` (no statement mentions the data
    type at all).
    """
    observed = set(labels)
    if not observed:
        return ConsistencyLabel.OMITTED
    for label in LABEL_PRECEDENCE:
        if label in observed:
            return label
    return ConsistencyLabel.OMITTED


def is_consistent(label: ConsistencyLabel) -> bool:
    """Whether a final label counts as a consistent disclosure."""
    return label in CONSISTENT_LABELS
