"""Policy-framework accuracy evaluation (Section 5.1.2).

The paper validates its consistency framework on 5% of Actions with manually
reviewed labels, treating inconsistencies (omitted, ambiguous, incorrect) as
positives, and reports ≈87% accuracy, ≈87% precision, and ≈99% recall.  Here
the manual review is replaced by the generator's intended disclosure labels,
restricted to Actions whose policy text the generator fully controls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Set

from repro.ecosystem.models import GroundTruth
from repro.policy.framework import PolicyConsistencyReport
from repro.policy.labels import ConsistencyLabel


@dataclass
class PolicyFrameworkEvaluation:
    """Binary (consistent vs inconsistent) evaluation of the framework."""

    n_evaluated: int = 0
    true_positives: int = 0
    false_positives: int = 0
    true_negatives: int = 0
    false_negatives: int = 0
    label_agreement: int = 0

    @property
    def accuracy(self) -> float:
        """Fraction of data types whose consistent/inconsistent call matches ground truth."""
        if self.n_evaluated == 0:
            return 0.0
        return (self.true_positives + self.true_negatives) / self.n_evaluated

    @property
    def precision(self) -> float:
        """Of the data types flagged inconsistent, the fraction that truly are."""
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        """Of the truly inconsistent data types, the fraction flagged."""
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def exact_label_accuracy(self) -> float:
        """Fraction of data types with the exact same five-way label."""
        if self.n_evaluated == 0:
            return 0.0
        return self.label_agreement / self.n_evaluated

    def summary(self) -> str:
        """Human-readable summary."""
        return (
            f"accuracy {self.accuracy:.2%}, precision {self.precision:.2%}, "
            f"recall {self.recall:.2%} over {self.n_evaluated} data types"
        )


def _is_inconsistent(label: ConsistencyLabel) -> bool:
    return not label.is_consistent


def evaluate_policy_framework(
    report: PolicyConsistencyReport,
    ground_truth: GroundTruth,
    restrict_to_controlled: bool = True,
    sample_action_ids: Optional[Iterable[str]] = None,
) -> PolicyFrameworkEvaluation:
    """Score a consistency report against generator ground truth.

    Parameters
    ----------
    report:
        The framework's output.
    ground_truth:
        Generator ground truth with intended disclosure labels.
    restrict_to_controlled:
        Only evaluate Actions whose policy text the generator fully controls
        (external/JS/pixel policies have no meaningful intended labels).
    sample_action_ids:
        Optionally restrict the evaluation to a sampled subset of Actions,
        mirroring the paper's 5% pilot study.
    """
    evaluation = PolicyFrameworkEvaluation()
    allowed: Optional[Set[str]] = set(sample_action_ids) if sample_action_ids is not None else None
    for action_id, result in report.all_results():
        if allowed is not None and action_id not in allowed:
            continue
        if restrict_to_controlled and action_id not in ground_truth.controlled_policy_actions:
            continue
        intended = ground_truth.disclosure_labels.get(
            (action_id, result.category, result.data_type)
        )
        if intended is None:
            continue
        intended_label = ConsistencyLabel.from_string(intended)
        evaluation.n_evaluated += 1
        if intended_label is result.final_label:
            evaluation.label_agreement += 1
        predicted_positive = _is_inconsistent(result.final_label)
        actual_positive = _is_inconsistent(intended_label)
        if predicted_positive and actual_positive:
            evaluation.true_positives += 1
        elif predicted_positive and not actual_positive:
            evaluation.false_positives += 1
        elif not predicted_positive and actual_positive:
            evaluation.false_negatives += 1
        else:
            evaluation.true_negatives += 1
    return evaluation
