"""Privacy-policy consistency analysis framework (Sections 3.3 and 5).

The framework checks whether an Action's privacy policy discloses the data the
Action collects, in three steps: sentence segmentation, collection-statement
extraction (Code 5), and per-data-type consistency labelling (Code 6), followed
by the precedence rule that reduces per-sentence labels to one label per
``(Action, data type)``.
"""

from repro.policy.labels import (
    CONSISTENT_LABELS,
    INCONSISTENT_LABELS,
    LABEL_PRECEDENCE,
    ConsistencyLabel,
    most_precise_label,
)
from repro.policy.extraction import CollectionStatementExtractor, ExtractedStatements
from repro.policy.consistency import ConsistencyChecker, DataTypeConsistency
from repro.policy.framework import (
    ActionPolicyAnalysis,
    PolicyConsistencyReport,
    PrivacyPolicyAnalyzer,
)
from repro.policy.duplicates import (
    DuplicatePolicyReport,
    PolicyContentKind,
    analyze_policy_corpus,
    classify_policy_content,
)
from repro.policy.evaluation import PolicyFrameworkEvaluation, evaluate_policy_framework

__all__ = [
    "CONSISTENT_LABELS",
    "INCONSISTENT_LABELS",
    "LABEL_PRECEDENCE",
    "ConsistencyLabel",
    "most_precise_label",
    "CollectionStatementExtractor",
    "ExtractedStatements",
    "ConsistencyChecker",
    "DataTypeConsistency",
    "ActionPolicyAnalysis",
    "PolicyConsistencyReport",
    "PrivacyPolicyAnalyzer",
    "DuplicatePolicyReport",
    "PolicyContentKind",
    "analyze_policy_corpus",
    "classify_policy_content",
    "PolicyFrameworkEvaluation",
    "evaluate_policy_framework",
]
