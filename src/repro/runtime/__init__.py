"""GPT execution-model substrate (Figure 1 / Section 2.1.1).

The paper's architecture figure shows how a GPT runs: the manifest and every
embedded Action's specification are loaded into a dedicated LLM instance's
context window; user queries arrive in the input buffer; the LLM decides which
Action endpoints to call and transmits parameter values drawn from the shared
context.  Because *all* Actions of a GPT share that context window, an
advertising Action can receive data the user only intended for the functional
Action (the Healthy Chef / AI Tool Hunt case studies of Figures 4 and 6), and a
credential-collecting Action can receive raw passwords (Figure 5).

This subpackage simulates that execution model so the indirect-exposure
phenomena of Section 4.4 can be demonstrated and measured on the synthetic
ecosystem:

* :class:`ContextWindow` — the shared buffer of manifests, specifications, and
  conversation turns;
* :class:`GPTSession` — routes user queries to Action endpoints, fills
  parameter values from the context, and records every transmission;
* :class:`ActionTranscript` / :class:`SessionTranscript` — the "Talked to
  api.example.com / The following was shared: …" records the paper's case
  studies display.
"""

from repro.runtime.context import ContextEntry, ContextWindow
from repro.runtime.session import ActionTranscript, GPTSession, SessionTranscript
from repro.runtime.exposure import ExposureFinding, analyze_indirect_exposure

__all__ = [
    "ContextEntry",
    "ContextWindow",
    "ActionTranscript",
    "GPTSession",
    "SessionTranscript",
    "ExposureFinding",
    "analyze_indirect_exposure",
]
