"""Simulated GPT sessions (the execution model of Figure 1).

A :class:`GPTSession` loads a GPT's manifest and Action specifications into a
shared :class:`~repro.runtime.context.ContextWindow` and then resolves user
queries: it picks the functional Action whose parameters best match the query,
always also invokes piggy-backing advertising/analytics Actions, fills each
invoked Action's parameters from the shared context, and records exactly what
was transmitted to which API host — the "Talked to api.example.com / The
following was shared: …" transcripts shown in the paper's Figures 4–6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.crawler.corpus import CrawledAction, CrawledGPT
from repro.ecosystem.models import ActionSpecification, GPTManifest
from repro.llm.knowledge import KeywordKnowledgeBase
from repro.nlp.stopwords import remove_stopwords
from repro.nlp.tokenization import tokenize
from repro.runtime.context import ContextWindow
from repro.taxonomy.builtin import load_builtin_taxonomy
from repro.taxonomy.schema import DataTaxonomy

#: Functionality categories of Actions that piggy-back on every user turn.
TRACKING_FUNCTIONALITIES = (
    "Advertising & Marketing",
    "Research & Analysis",
)

#: Data types whose parameters are filled with raw conversation content.
_CONTEXT_HUNGRY_TYPES = {
    ("App usage data", "User interaction data"),
    ("Query", "Search query"),
    ("Query", "Generative prompt"),
    ("Message", "Text messages"),
}

#: Data types describing the hosting GPT rather than the user.
_APP_METADATA_TYPES = {
    ("App metadata", "Name or version"),
    ("App metadata", "Function description"),
}


@dataclass(frozen=True)
class _SessionAction:
    """A normalized view over either artifact type (generated or crawled)."""

    action_id: str
    title: str
    domain: str
    functionality: str
    parameters: Tuple[Tuple[str, str], ...]


def _normalize_action(action: Union[ActionSpecification, CrawledAction]) -> _SessionAction:
    if isinstance(action, ActionSpecification):
        return _SessionAction(
            action_id=action.action_id,
            title=action.title,
            domain=action.domain,
            functionality=action.functionality,
            parameters=tuple(
                (parameter.name, parameter.name_and_description())
                for parameter in action.parameters()
            ),
        )
    return _SessionAction(
        action_id=action.action_id,
        title=action.title,
        domain=action.domain,
        functionality=action.functionality,
        parameters=tuple(zip([name for name, _ in action.parameters], action.data_descriptions())),
    )


@dataclass
class SharedField:
    """One parameter value transmitted to an Action endpoint."""

    parameter: str
    value: str
    category: str
    data_type: str

    @property
    def is_sensitive_context(self) -> bool:
        """Whether the value carries raw conversation content."""
        return (self.category, self.data_type) in _CONTEXT_HUNGRY_TYPES


@dataclass
class ActionTranscript:
    """What one Action received during one turn ("Talked to <domain>")."""

    action_id: str
    title: str
    domain: str
    shared: List[SharedField] = field(default_factory=list)

    def shared_dict(self) -> Dict[str, str]:
        """The shared payload as a plain parameter → value mapping."""
        return {fieldd.parameter: fieldd.value for fieldd in self.shared}

    def render(self) -> str:
        """Render the transcript like the paper's figures."""
        lines = [f"Talked to {self.domain}", "The following was shared:"]
        for entry in self.shared:
            lines.append(f'  {entry.parameter}: "{entry.value}"')
        return "\n".join(lines)


@dataclass
class SessionTranscript:
    """Everything that happened while resolving one user query."""

    query: str
    invoked: List[ActionTranscript] = field(default_factory=list)
    response: str = ""

    def domains_contacted(self) -> List[str]:
        """Domains that received data during this turn."""
        return [transcript.domain for transcript in self.invoked]

    def data_shared_with(self, domain: str) -> Dict[str, str]:
        """The payload transmitted to a specific domain (empty if not contacted)."""
        for transcript in self.invoked:
            if transcript.domain == domain:
                return transcript.shared_dict()
        return {}


class GPTSession:
    """A simulated session with one GPT and its Actions."""

    def __init__(
        self,
        gpt: Union[GPTManifest, CrawledGPT],
        taxonomy: Optional[DataTaxonomy] = None,
        knowledge: Optional[KeywordKnowledgeBase] = None,
        context_turns_shared: int = 4,
    ) -> None:
        self.taxonomy = taxonomy or load_builtin_taxonomy()
        self.knowledge = knowledge or KeywordKnowledgeBase(self.taxonomy)
        self.context = ContextWindow()
        self.context_turns_shared = context_turns_shared
        self.transcripts: List[SessionTranscript] = []

        if isinstance(gpt, GPTManifest):
            self.gpt_id = gpt.gpt_id
            self.gpt_name = gpt.name
            self.gpt_description = gpt.description
            actions = gpt.actions()
        else:
            self.gpt_id = gpt.gpt_id
            self.gpt_name = gpt.name
            self.gpt_description = gpt.description
            actions = gpt.actions
        self.actions = [_normalize_action(action) for action in actions]

        # Load the manifest and every Action specification into the shared
        # context window, exactly as the platform does when a GPT is enabled.
        self.context.add_system(self.gpt_name, self.gpt_description)
        for action in self.actions:
            specification_text = f"{action.title}: " + "; ".join(
                description for _, description in action.parameters
            )
            self.context.add_specification(action.title, specification_text)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _is_tracking(self, action: _SessionAction) -> bool:
        if action.functionality in TRACKING_FUNCTIONALITIES:
            return True
        lowered = action.title.lower()
        return any(marker in lowered for marker in ("adintelli", "adzedek", "analytics"))

    def _relevance(self, action: _SessionAction, query: str) -> float:
        query_tokens = set(remove_stopwords(tokenize(query)))
        if not query_tokens:
            return 0.0
        action_tokens = set()
        for _, description in action.parameters:
            action_tokens.update(remove_stopwords(tokenize(description)))
        action_tokens.update(remove_stopwords(tokenize(action.title)))
        if not action_tokens:
            return 0.0
        return len(query_tokens & action_tokens) / len(query_tokens)

    def select_actions(self, query: str) -> List[_SessionAction]:
        """Pick the Actions invoked for a query.

        The most relevant functional Action is invoked (if any matches at
        all), and every tracking/advertising Action piggy-backs on the turn
        regardless of relevance — the behaviour the paper's case studies
        document.
        """
        tracking = [action for action in self.actions if self._is_tracking(action)]
        functional = [action for action in self.actions if not self._is_tracking(action)]
        invoked: List[_SessionAction] = []
        if functional:
            ranked = sorted(functional, key=lambda action: -self._relevance(action, query))
            if ranked and (self._relevance(ranked[0], query) > 0.0 or len(functional) == 1):
                invoked.append(ranked[0])
        invoked.extend(tracking)
        return invoked

    # ------------------------------------------------------------------
    # Payload construction
    # ------------------------------------------------------------------
    def _fill_parameter(self, name: str, description: str, query: str) -> SharedField:
        category, data_type = self.knowledge.classify(description)
        key = (category, data_type)
        if key in _CONTEXT_HUNGRY_TYPES:
            if data_type == "User interaction data":
                value = self.context.conversation_text(last_n_turns=self.context_turns_shared)
            else:
                value = query
        elif key in _APP_METADATA_TYPES:
            value = self.gpt_name if data_type == "Name or version" else self.gpt_description
        else:
            value = self._extract_from_context(name, description, query)
        return SharedField(parameter=name, value=value, category=category, data_type=data_type)

    def _extract_from_context(self, name: str, description: str, query: str) -> str:
        """Pull the most relevant user-provided fragment for a parameter.

        A real LLM would extract exactly the requested entity; the simulation
        shares the query fragment with the highest token overlap (parameter
        name tokens weighted double), falling back to the full latest turn —
        which is faithful to the over-sharing the paper observed.
        """
        description_tokens = set(remove_stopwords(tokenize(description)))
        name_tokens = set(remove_stopwords(tokenize(name)))
        best_fragment = ""
        best_score = 0
        for fragment in query.replace(";", ",").split(","):
            fragment_tokens = set(remove_stopwords(tokenize(fragment)))
            score = len(fragment_tokens & description_tokens) + 2 * len(fragment_tokens & name_tokens)
            if score > best_score:
                best_score = score
                best_fragment = fragment.strip()
        return best_fragment or query

    # ------------------------------------------------------------------
    def ask(self, query: str) -> SessionTranscript:
        """Resolve one user query and record what every Action received."""
        self.context.add_user(query)
        transcript = SessionTranscript(query=query)
        for action in self.select_actions(query):
            action_transcript = ActionTranscript(
                action_id=action.action_id, title=action.title, domain=action.domain
            )
            for name, description in action.parameters:
                action_transcript.shared.append(self._fill_parameter(name, description, query))
            transcript.invoked.append(action_transcript)
            self.context.add_tool(
                action.domain,
                f"{action.title} returned a response for {len(action_transcript.shared)} parameters.",
            )
        transcript.response = (
            f"{self.gpt_name} consulted {len(transcript.invoked)} action(s) to answer the request."
        )
        self.context.add_assistant(transcript.response)
        self.transcripts.append(transcript)
        return transcript
