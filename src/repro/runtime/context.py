"""The shared context window of a GPT's LLM instance."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional


@dataclass(frozen=True)
class ContextEntry:
    """One entry in the context window.

    ``kind`` is one of ``"system"`` (GPT manifest / instructions),
    ``"specification"`` (an Action's specification), ``"user"`` (a user turn),
    ``"assistant"`` (a model turn), or ``"tool"`` (an Action response).
    """

    kind: str
    source: str
    content: str

    def __post_init__(self) -> None:
        if self.kind not in ("system", "specification", "user", "assistant", "tool"):
            raise ValueError(f"unknown context entry kind: {self.kind!r}")


class ContextWindow:
    """An append-only window of context entries shared by every Action.

    The window is the security boundary the paper highlights: all Actions of a
    GPT read from the same window, so anything a user ever said in the session
    is available to every Action the LLM later invokes.
    """

    def __init__(self, max_entries: int = 200) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: List[ContextEntry] = []

    def append(self, entry: ContextEntry) -> None:
        """Append an entry, evicting the oldest non-system entries when full."""
        self._entries.append(entry)
        if len(self._entries) > self.max_entries:
            # Keep system/specification entries (they are re-injected on every
            # turn in the real platform); evict the oldest conversational ones.
            preserved = [e for e in self._entries if e.kind in ("system", "specification")]
            conversational = [e for e in self._entries if e.kind not in ("system", "specification")]
            overflow = len(self._entries) - self.max_entries
            self._entries = preserved + conversational[overflow:]

    def add_system(self, source: str, content: str) -> None:
        """Add a system (manifest / instruction) entry."""
        self.append(ContextEntry(kind="system", source=source, content=content))

    def add_specification(self, source: str, content: str) -> None:
        """Add an Action-specification entry."""
        self.append(ContextEntry(kind="specification", source=source, content=content))

    def add_user(self, content: str) -> None:
        """Add a user turn."""
        self.append(ContextEntry(kind="user", source="user", content=content))

    def add_assistant(self, content: str) -> None:
        """Add an assistant turn."""
        self.append(ContextEntry(kind="assistant", source="assistant", content=content))

    def add_tool(self, source: str, content: str) -> None:
        """Add an Action-response entry."""
        self.append(ContextEntry(kind="tool", source=source, content=content))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ContextEntry]:
        return iter(self._entries)

    def entries(self, kind: Optional[str] = None) -> List[ContextEntry]:
        """All entries, optionally filtered by kind."""
        if kind is None:
            return list(self._entries)
        return [entry for entry in self._entries if entry.kind == kind]

    def user_turns(self) -> List[str]:
        """The text of every user turn, oldest first."""
        return [entry.content for entry in self._entries if entry.kind == "user"]

    def conversation_text(self, last_n_turns: Optional[int] = None) -> str:
        """The concatenated user conversation (what a tracking Action can read)."""
        turns = self.user_turns()
        if last_n_turns is not None:
            turns = turns[-last_n_turns:]
        return " ".join(turns)

    def latest_user_turn(self) -> str:
        """The most recent user turn (empty string if none)."""
        turns = self.user_turns()
        return turns[-1] if turns else ""
