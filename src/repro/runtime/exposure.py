"""Indirect data exposure between co-located Actions (Section 4.4).

Because every Action of a GPT shares one context window, an Action can receive
data the user only intended for a different Action of the same GPT.  This
module measures that exposure on a crawled corpus: for every multi-Action GPT
it simulates a session, sends a probe query, and reports which Actions received
raw conversation content even though a different Action was the functional
target of the query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.crawler.corpus import CrawlCorpus, CrawledGPT
from repro.llm.knowledge import KeywordKnowledgeBase
from repro.runtime.session import GPTSession
from repro.taxonomy.builtin import load_builtin_taxonomy
from repro.taxonomy.schema import DataTaxonomy

#: The probe query sent to every multi-Action GPT (intentionally information
#: rich, mirroring the Healthy Chef interaction of Figure 4).
DEFAULT_PROBE_QUERY = (
    "I have chicken breast, broccoli, and quinoa at home. I'm trying to follow a low-carb diet "
    "because my doctor said my blood sugar levels are high."
)


@dataclass
class ExposureFinding:
    """One GPT in which conversation content reached more Actions than intended."""

    gpt_id: str
    gpt_name: str
    functional_domain: Optional[str]
    over_exposed_domains: List[str] = field(default_factory=list)

    @property
    def n_over_exposed(self) -> int:
        """How many additional Actions received raw conversation content."""
        return len(self.over_exposed_domains)


@dataclass
class ExposureReport:
    """Corpus-level indirect-exposure statistics."""

    findings: List[ExposureFinding] = field(default_factory=list)
    n_multi_action_gpts: int = 0

    @property
    def exposure_share(self) -> float:
        """Fraction of multi-Action GPTs with at least one over-exposed Action."""
        if not self.n_multi_action_gpts:
            return 0.0
        return len(self.findings) / self.n_multi_action_gpts


def analyze_indirect_exposure(
    corpus: CrawlCorpus,
    probe_query: str = DEFAULT_PROBE_QUERY,
    taxonomy: Optional[DataTaxonomy] = None,
    max_gpts: Optional[int] = None,
) -> ExposureReport:
    """Measure indirect data exposure across a corpus's multi-Action GPTs.

    For every GPT embedding two or more Actions, a session is simulated and a
    probe query is sent.  An Action is *over-exposed* when it receives raw
    conversation content (user interaction data, the search query, or message
    text) even though it is not the functional Action the query targets.
    """
    taxonomy = taxonomy or load_builtin_taxonomy()
    knowledge = KeywordKnowledgeBase(taxonomy)
    report = ExposureReport()
    multi_action_gpts: List[CrawledGPT] = [
        gpt for gpt in corpus.action_embedding_gpts() if len(gpt.actions) >= 2
    ]
    if max_gpts is not None:
        multi_action_gpts = multi_action_gpts[:max_gpts]
    report.n_multi_action_gpts = len(multi_action_gpts)

    for gpt in multi_action_gpts:
        session = GPTSession(gpt, taxonomy=taxonomy, knowledge=knowledge)
        transcript = session.ask(probe_query)
        if not transcript.invoked:
            continue
        functional_domain = transcript.invoked[0].domain if transcript.invoked else None
        over_exposed: List[str] = []
        for action_transcript in transcript.invoked[1:]:
            received_context = any(fieldd.is_sensitive_context for fieldd in action_transcript.shared)
            if received_context:
                over_exposed.append(action_transcript.domain)
        if over_exposed:
            report.findings.append(
                ExposureFinding(
                    gpt_id=gpt.gpt_id,
                    gpt_name=gpt.name,
                    functional_domain=functional_domain,
                    over_exposed_domains=over_exposed,
                )
            )
    return report
