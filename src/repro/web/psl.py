"""Public-suffix handling and registrable-domain (eTLD+1) extraction.

A full Mozilla Public Suffix List is several thousand rules; the crawler only
needs correct behaviour for the kinds of domains that appear in GPT Action
specifications and store listings (ordinary gTLDs, common ccTLDs, two-label
public suffixes such as ``co.uk``, and shared-hosting suffixes such as
``vercel.app`` or ``github.io`` that matter for third-party detection).  The
embedded snapshot below covers those cases and the matching algorithm follows
the PSL semantics (longest matching rule, wildcard and exception rules).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set, Tuple

from repro.web.urls import split_host, url_host

#: Ordinary single-label public suffixes.
_BASE_SUFFIXES: Tuple[str, ...] = (
    "com", "org", "net", "edu", "gov", "mil", "int", "io", "ai", "co", "app",
    "dev", "xyz", "info", "biz", "me", "tv", "cc", "us", "uk", "de", "fr",
    "jp", "cn", "in", "ru", "br", "it", "nl", "es", "ca", "au", "ch", "se",
    "no", "fi", "pl", "kr", "tech", "cloud", "site", "online", "store",
    "shop", "blog", "wiki", "live", "news", "run", "sh", "gg", "so", "to",
    "ly", "fm", "im", "is", "la", "pro", "mobi", "name", "travel", "surf",
)

#: Multi-label public suffixes (including popular shared-hosting platforms,
#: which the PSL lists as public suffixes so that tenant sites are treated as
#: separate registrable domains).
_MULTI_LABEL_SUFFIXES: Tuple[str, ...] = (
    "co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk",
    "com.au", "net.au", "org.au",
    "co.jp", "ne.jp", "or.jp", "ac.jp",
    "com.cn", "net.cn", "org.cn",
    "co.in", "firm.in", "net.in", "org.in",
    "com.br", "net.br", "org.br",
    "co.kr", "or.kr",
    "co.nz", "org.nz",
    "com.mx", "org.mx",
    "com.sg", "com.hk", "com.tw",
    # Shared hosting / PaaS suffixes relevant to Action endpoints.
    "vercel.app", "netlify.app", "herokuapp.com", "github.io", "gitlab.io",
    "pages.dev", "web.app", "firebaseapp.com", "azurewebsites.net",
    "cloudfunctions.net", "appspot.com", "repl.co", "onrender.com",
    "fly.dev", "railway.app", "glitch.me", "a.run.app", "amazonaws.com",
    "cloudfront.net", "workers.dev",
)

#: Wildcard rules (``*.suffix``): every immediate child label is a suffix too.
_WILDCARD_SUFFIXES: Tuple[str, ...] = (
    "ck", "jm", "compute.amazonaws.com",
)

#: Exception rules (``!domain``): these are registrable despite a wildcard.
_EXCEPTION_DOMAINS: Tuple[str, ...] = (
    "www.ck",
)


@dataclass
class PublicSuffixList:
    """A minimal Public Suffix List implementation.

    Parameters mirror PSL rule classes: plain rules, wildcard rules, and
    exception rules.  :meth:`registrable_domain` implements the standard
    longest-match algorithm.
    """

    suffixes: Set[str] = field(default_factory=set)
    wildcard_suffixes: Set[str] = field(default_factory=set)
    exceptions: Set[str] = field(default_factory=set)

    @classmethod
    def builtin(cls) -> "PublicSuffixList":
        """Build the embedded snapshot PSL."""
        suffixes = set(_BASE_SUFFIXES) | set(_MULTI_LABEL_SUFFIXES)
        return cls(
            suffixes=suffixes,
            wildcard_suffixes=set(_WILDCARD_SUFFIXES),
            exceptions=set(_EXCEPTION_DOMAINS),
        )

    def add_suffix(self, suffix: str, wildcard: bool = False) -> None:
        """Register an additional public suffix rule."""
        suffix = suffix.lower().strip(".")
        if wildcard:
            self.wildcard_suffixes.add(suffix)
        else:
            self.suffixes.add(suffix)

    # ------------------------------------------------------------------
    def public_suffix(self, host: str) -> Optional[str]:
        """Return the public suffix of ``host`` (longest matching rule)."""
        labels = split_host(host)
        if not labels:
            return None
        best: Optional[Tuple[str, ...]] = None
        for start in range(len(labels)):
            candidate = labels[start:]
            candidate_str = ".".join(candidate)
            if candidate_str in self.exceptions:
                # Exception rules mean the candidate itself is registrable; its
                # public suffix is one label shorter.
                suffix = candidate[1:]
                return ".".join(suffix) if suffix else None
            if candidate_str in self.suffixes:
                if best is None or len(candidate) > len(best):
                    best = candidate
            parent = ".".join(candidate[1:])
            if parent and parent in self.wildcard_suffixes:
                if best is None or len(candidate) > len(best):
                    best = candidate
        if best is not None:
            return ".".join(best)
        # Unknown TLDs: treat the last label as the public suffix (PSL "*" rule).
        return labels[-1]

    def registrable_domain(self, host: str) -> Optional[str]:
        """Return the registrable domain (eTLD+1) for ``host``.

        ``None`` is returned when the host itself is a public suffix or empty.
        IP-address hosts are returned unchanged (they have no suffix structure
        but are still meaningful identities for third-party comparison).
        """
        labels = split_host(host)
        if not labels:
            return None
        if _looks_like_ip(host):
            return host
        suffix = self.public_suffix(host)
        if suffix is None:
            return None
        suffix_labels = tuple(suffix.split("."))
        if len(labels) <= len(suffix_labels):
            return None
        registrable = labels[-(len(suffix_labels) + 1):]
        return ".".join(registrable)


def _looks_like_ip(host: str) -> bool:
    """Whether a host string looks like an IPv4 or IPv6 address."""
    if ":" in host:
        return True
    parts = host.split(".")
    return len(parts) == 4 and all(part.isdigit() for part in parts)


_DEFAULT_PSL: Optional[PublicSuffixList] = None


def default_psl() -> PublicSuffixList:
    """Return a shared builtin :class:`PublicSuffixList` instance."""
    global _DEFAULT_PSL
    if _DEFAULT_PSL is None:
        _DEFAULT_PSL = PublicSuffixList.builtin()
    return _DEFAULT_PSL


def registrable_domain(url_or_host: str, psl: Optional[PublicSuffixList] = None) -> Optional[str]:
    """Return the eTLD+1 of a URL or bare hostname."""
    psl = psl or default_psl()
    host = url_or_host
    if "/" in url_or_host or "://" in url_or_host:
        host = url_host(url_or_host)
    if not host:
        host = url_or_host.lower().strip()
    return psl.registrable_domain(host)
