"""Third-party Action detection (Section 4.1.1, footnote 2).

An Action is labelled third-party when the registrable domain (eTLD+1) of its
API server does not match the registrable domain of the GPT vendor.  GPT
vendor identity is taken from the GPT author's declared website domain when
available, falling back to the privacy-policy domain of the GPT's first-party
Action.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.web.psl import PublicSuffixList, default_psl, registrable_domain


@dataclass
class ThirdPartyClassifier:
    """Classifies Action endpoints as first- or third-party relative to a GPT vendor."""

    psl: Optional[PublicSuffixList] = None

    def __post_init__(self) -> None:
        if self.psl is None:
            self.psl = default_psl()

    def registrable(self, url_or_host: str) -> Optional[str]:
        """eTLD+1 of a URL or host (``None`` when it cannot be derived)."""
        if not url_or_host:
            return None
        return registrable_domain(url_or_host, self.psl)

    def is_third_party(self, action_url: str, vendor_url: Optional[str]) -> bool:
        """Whether ``action_url`` is third-party relative to ``vendor_url``.

        Unknown vendor identity is treated conservatively as third-party, the
        same stance the paper takes when a GPT has no identifiable first-party
        domain.
        """
        action_domain = self.registrable(action_url)
        vendor_domain = self.registrable(vendor_url) if vendor_url else None
        if action_domain is None:
            return True
        if vendor_domain is None:
            return True
        return action_domain != vendor_domain

    def same_party(self, url_a: str, url_b: str) -> bool:
        """Whether two URLs share a registrable domain."""
        domain_a = self.registrable(url_a)
        domain_b = self.registrable(url_b)
        return domain_a is not None and domain_a == domain_b


def is_third_party(action_url: str, vendor_url: Optional[str]) -> bool:
    """Module-level convenience wrapper around :class:`ThirdPartyClassifier`."""
    return ThirdPartyClassifier().is_third_party(action_url, vendor_url)
