"""Lightweight URL parsing and normalization.

Only the pieces required by the measurement pipeline are implemented: scheme,
host, port, path, query, and fragment extraction, plus normalization rules
(lower-casing host, stripping default ports and trailing dots) that make URL
comparisons stable across crawler components.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit, urlunsplit

_DEFAULT_PORTS = {"http": 80, "https": 443}
_SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*://")


class URLParseError(ValueError):
    """Raised when a URL cannot be parsed."""


@dataclass(frozen=True)
class ParsedURL:
    """A parsed and normalized URL."""

    scheme: str
    host: str
    port: Optional[int]
    path: str
    query: str
    fragment: str

    @property
    def origin(self) -> str:
        """The scheme://host[:port] origin of the URL."""
        if self.port is not None and self.port != _DEFAULT_PORTS.get(self.scheme):
            return f"{self.scheme}://{self.host}:{self.port}"
        return f"{self.scheme}://{self.host}"

    @property
    def netloc(self) -> str:
        """Host (and non-default port) component."""
        if self.port is not None and self.port != _DEFAULT_PORTS.get(self.scheme):
            return f"{self.host}:{self.port}"
        return self.host

    def query_params(self) -> Dict[str, str]:
        """Query parameters as a dict (last value wins for duplicates)."""
        return dict(parse_qsl(self.query, keep_blank_values=True))

    def geturl(self) -> str:
        """Re-assemble the normalized URL string."""
        return urlunsplit((self.scheme, self.netloc, self.path, self.query, self.fragment))

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.geturl()


def parse_url(url: str, default_scheme: str = "https") -> ParsedURL:
    """Parse a URL string into a :class:`ParsedURL`.

    Hosts are lower-cased, default ports dropped, and missing schemes filled
    with ``default_scheme`` (Action specs frequently list bare domains).
    """
    if not url or not url.strip():
        raise URLParseError("empty URL")
    candidate = url.strip()
    if not _SCHEME_RE.match(candidate):
        candidate = f"{default_scheme}://{candidate}"
    parts = urlsplit(candidate)
    if not parts.hostname:
        raise URLParseError(f"URL has no host: {url!r}")
    host = parts.hostname.lower().rstrip(".")
    try:
        port = parts.port
    except ValueError as exc:  # invalid (non-numeric / out of range) port
        raise URLParseError(f"URL has an invalid port: {url!r}") from exc
    scheme = (parts.scheme or default_scheme).lower()
    if port == _DEFAULT_PORTS.get(scheme):
        port = None
    path = parts.path or "/"
    return ParsedURL(
        scheme=scheme,
        host=host,
        port=port,
        path=path,
        query=parts.query,
        fragment=parts.fragment,
    )


def normalize_url(url: str) -> str:
    """Return the canonical string form of a URL."""
    return parse_url(url).geturl()


def url_host(url: str) -> str:
    """Return the lower-cased host of a URL (empty string if unparsable)."""
    try:
        return parse_url(url).host
    except URLParseError:
        return ""


def join_url(base: str, path: str) -> str:
    """Join a base origin and a path, collapsing duplicate slashes."""
    parsed = parse_url(base)
    if not path.startswith("/"):
        path = "/" + path
    return f"{parsed.origin}{path}"


def split_host(host: str) -> Tuple[str, ...]:
    """Split a hostname into its dot-separated labels."""
    return tuple(label for label in host.lower().strip(".").split(".") if label)
