"""Web substrate: URL parsing, registrable domains, and third-party detection.

The paper labels an Action as *third-party* when the eTLD+1 of its API server
does not match the eTLD+1 of the hosting GPT's vendor domain — the standard
process used to detect third parties on the web (Section 4.1.1, footnote 2).
This subpackage provides the URL and public-suffix machinery required for that
classification, without any network access.
"""

from repro.web.urls import ParsedURL, parse_url, normalize_url, url_host
from repro.web.psl import PublicSuffixList, default_psl, registrable_domain
from repro.web.thirdparty import ThirdPartyClassifier, is_third_party

__all__ = [
    "ParsedURL",
    "parse_url",
    "normalize_url",
    "url_host",
    "PublicSuffixList",
    "default_psl",
    "registrable_domain",
    "ThirdPartyClassifier",
    "is_third_party",
]
