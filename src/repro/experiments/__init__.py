"""Experiment drivers that regenerate every table and figure of the paper.

Each experiment runs on a shared :class:`~repro.analysis.suite.MeasurementSuite`
and returns an :class:`ExperimentResult` holding the paper-reported reference
values, the values measured on the synthetic corpus, and a rendered artifact
(table text or figure series summary).  ``run_all_experiments`` executes the
whole battery; the CLI and EXPERIMENTS.md are produced from it.

:mod:`repro.experiments.sweep` layers multi-seed / multi-scenario sweeps on
top: :func:`run_sweep` expands a scenario grid, runs one full pipeline per
(scenario, seed) cell concurrently with content-addressed artifact caching,
and :data:`SWEEP_EXPERIMENTS` replays every experiment's paper comparison
against the across-seed aggregates.
"""

from repro.experiments.paper_values import PAPER_VALUES
from repro.experiments.registry import (
    EXPERIMENTS,
    SWEEP_EXPERIMENTS,
    ExperimentResult,
    get_experiment,
    run_all_experiments,
    run_all_sweep_experiments,
    run_experiment,
    run_sweep_experiment,
)
from repro.experiments.sweep import (
    BUILTIN_SCENARIOS,
    CellResult,
    MetricSummary,
    Scenario,
    SweepCell,
    SweepReport,
    SweepResult,
    SweepRunner,
    aggregate_cells,
    expand_grid,
    run_sweep,
)

__all__ = [
    "PAPER_VALUES",
    "EXPERIMENTS",
    "SWEEP_EXPERIMENTS",
    "ExperimentResult",
    "BUILTIN_SCENARIOS",
    "CellResult",
    "MetricSummary",
    "Scenario",
    "SweepCell",
    "SweepReport",
    "SweepResult",
    "SweepRunner",
    "aggregate_cells",
    "expand_grid",
    "get_experiment",
    "run_all_experiments",
    "run_all_sweep_experiments",
    "run_experiment",
    "run_sweep",
    "run_sweep_experiment",
]
