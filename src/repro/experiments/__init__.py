"""Experiment drivers that regenerate every table and figure of the paper.

Each experiment runs on a shared :class:`~repro.analysis.suite.MeasurementSuite`
and returns an :class:`ExperimentResult` holding the paper-reported reference
values, the values measured on the synthetic corpus, and a rendered artifact
(table text or figure series summary).  ``run_all_experiments`` executes the
whole battery; the CLI and EXPERIMENTS.md are produced from it.
"""

from repro.experiments.paper_values import PAPER_VALUES
from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentResult,
    get_experiment,
    run_all_experiments,
    run_experiment,
)

__all__ = [
    "PAPER_VALUES",
    "EXPERIMENTS",
    "ExperimentResult",
    "get_experiment",
    "run_all_experiments",
    "run_experiment",
]
