"""Paper-reported reference values for every reproduced experiment.

Values are taken verbatim from the tables, figures, and in-text statistics of
the paper; EXPERIMENTS.md compares them with the values measured on the
synthetic corpus.
"""

from __future__ import annotations

from typing import Dict

PAPER_VALUES: Dict[str, Dict[str, object]] = {
    "table1": {
        "total_unique_gpts": 119_543,
        "n_stores": 13,
        "largest_store": "Casanpir GitHub GPT List",
        "largest_store_count": 85_377,
        "smallest_store_count": 91,
    },
    "table3": {
        "browser": 0.923,
        "dalle": 0.855,
        "code_interpreter": 0.530,
        "knowledge": 0.282,
        "actions": 0.046,
        "any_tool": 0.975,
        "online_services": 0.932,
        "first_party_actions": 0.171,
        "third_party_actions": 0.829,
    },
    "table4": {
        "n_categories": 24,
        "n_data_types": 145,
        "search_query_gpt_share": 0.465,
        "urls_gpt_share": 0.256,
        "user_interaction_gpt_share": 0.204,
        "email_gpt_share": 0.065,
        "api_key_gpt_share": 0.061,
        "password_gpt_share": 0.007,
        "top_type": "Search query",
    },
    "table5": {
        "most_prevalent_action": "webPilot",
        "webpilot_share": 0.0606,
        "zapier_share": 0.0565,
        "adintelli_share": 0.035,
        "openai_profile_share": 0.0193,
        "gapier_share": 0.016,
    },
    "table6": {
        "external_service": 0.335,
        "empty": 0.270,
        "same_vendor": 0.192,
        "javascript": 0.178,
        "openai_policy": 0.053,
        "tracking_pixel": 0.038,
    },
    "table7": {
        "fully_consistent_action_share": 0.058,
        "example_actions": ["OpenAPI definition", "Show Me", "Mortgage Calculator API"],
    },
    "figure3": {
        "min_descriptions_per_category": 26,
        "median_descriptions_per_category": 192,
        "types_covering_10_plus": 0.531,
        "total_distinct_descriptions": 11_090,
    },
    "figure7": {
        "share_actions_5_plus_items": 0.4984,
        "share_actions_10_plus_items": 0.20,
        "third_party_excess": 0.0603,
    },
    "figure8": {
        "webpilot_weighted_degree": 93,
        "adintelli_weighted_degree": 29,
        "webpilot_degree": 63,
        "adintelli_degree": 12,
        "webpilot_adintelli_cooccurrences": 13,
        "cooccurring_action_share": 0.239,
    },
    "figure9": {
        "health_omitted": 1.0,
        "real_estate_omitted": 1.0,
        "personal_information_clear": 0.254,
        "message_omitted": 0.656,
        "app_usage_omitted": 0.916,
        "most_categories_majority_omitted": True,
    },
    "figure10": {
        "search_query_occurrences": 736,
        "least_omitted_types": ["Email address", "Name", "Exact address"],
    },
    "figure11": {
        "majority_consistent_action_share": 0.5,
        "min_inconsistent_share": 0.10,
    },
    "figure12": {
        "spearman_correlation": 0.22,
    },
    "taxonomy_refinement": {
        "initial_other_rate": 0.3507,
        "final_other_rate": 0.0795,
        "proposed_new_categories": 8,
        "proposed_new_types": 102,
        "accepted_new_categories": 7,
        "accepted_new_types": 66,
        "final_n_categories": 24,
        "final_n_types": 145,
    },
    "classifier_accuracy": {
        "category_accuracy": 0.9283,
        "type_accuracy": 0.9153,
        "seed_set_category_accuracy": 0.91,
        "seed_set_type_accuracy": 0.9212,
    },
    "headline_stats": {
        "actions_5_plus_items": 0.4984,
        "actions_10_plus_items": 0.20,
        "third_party_excess": 0.0603,
        "prohibited_gpt_share": 0.091,
        "gpt_query_collection_share": 0.465,
    },
    "multiaction": {
        "one_action": 0.909,
        "two_actions": 0.066,
        "three_actions": 0.012,
        "four_plus_actions": 0.013,
        "cross_domain_share": 0.553,
        "cooccurring_action_share": 0.239,
    },
    "policy_stats": {
        "availability": 0.9396,
        "duplicate_share": 0.3856,
        "near_duplicate_share": 0.055,
        "short_policy_share": 0.1245,
        "framework_accuracy": 0.8744,
        "framework_precision": 0.8657,
        "framework_recall": 0.9877,
    },
    "disclosure_headlines": {
        "majority_consistent_action_share": 0.5,
        "fully_consistent_action_share": 0.058,
        "spearman_correlation": 0.22,
        "omitted_dominates": True,
    },
}
