"""The experiment registry: one driver per paper table / figure / statistic.

Every single-run experiment (``run_table1`` … ``run_disclosure_headlines``)
also has a *sweep-aggregated* variant that replays the same paper comparison
against across-seed means from a multi-scenario sweep
(:mod:`repro.experiments.sweep`): see :data:`SWEEP_EXPERIMENTS`,
:func:`run_sweep_experiment`, and :func:`run_all_sweep_experiments`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List

from repro.analysis.suite import MeasurementSuite
from repro.experiments.paper_values import PAPER_VALUES
from repro.policy.labels import ConsistencyLabel
from repro.reporting import figures, tables

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import)
    from repro.experiments.sweep import SweepReport


@dataclass
class ExperimentResult:
    """The outcome of one experiment run."""

    experiment_id: str
    title: str
    paper_values: Dict[str, object]
    measured_values: Dict[str, object]
    artifact: str = ""

    def comparison_rows(self) -> List[tuple]:
        """Rows of (metric, paper, measured) for every shared metric."""
        rows = []
        for key in self.paper_values:
            if key in self.measured_values:
                rows.append((key, self.paper_values[key], self.measured_values[key]))
        return rows


#: An experiment maps a measurement suite to a result.
Experiment = Callable[[MeasurementSuite], ExperimentResult]


def _result(
    experiment_id: str, title: str, measured: Dict[str, object], artifact: str = ""
) -> ExperimentResult:
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        paper_values=dict(PAPER_VALUES.get(experiment_id, {})),
        measured_values=measured,
        artifact=artifact,
    )


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------
def run_table1(suite: MeasurementSuite) -> ExperimentResult:
    """Table 1 — GPTs successfully crawled per store."""
    stats = suite.crawl_stats
    sorted_counts = stats.sorted_store_counts()
    measured = {
        "total_unique_gpts": stats.total_unique_gpts,
        "n_stores": len(stats.per_store_counts),
        "largest_store": sorted_counts[0][0] if sorted_counts else "",
        "largest_store_count": sorted_counts[0][1] if sorted_counts else 0,
        "smallest_store_count": sorted_counts[-1][1] if sorted_counts else 0,
    }
    return _result(
        "table1", "Table 1: GPTs crawled per store", measured, tables.render_table1(stats)
    )


def run_table3(suite: MeasurementSuite) -> ExperimentResult:
    """Table 3 — tool usage in GPTs."""
    tools = suite.tool_usage
    measured = {
        "browser": tools.share("browser"),
        "dalle": tools.share("dalle"),
        "code_interpreter": tools.share("code_interpreter"),
        "knowledge": tools.share("knowledge"),
        "actions": tools.share("action"),
        "any_tool": tools.any_tool_share,
        "online_services": tools.online_service_share,
        "first_party_actions": tools.first_party_action_share,
        "third_party_actions": tools.third_party_action_share,
    }
    return _result("table3", "Table 3: tool usage in GPTs", measured, tables.render_table3(tools))


def run_table4(suite: MeasurementSuite) -> ExperimentResult:
    """Table 4 — data types collected via first-/third-party Actions."""
    collection = suite.collection

    def gpt_share(category: str, data_type: str) -> float:
        row = collection.row_for(category, data_type)
        return row.gpt_share if row else 0.0

    top_rows = collection.top_rows()
    measured = {
        "n_categories": collection.n_categories_observed(),
        "n_data_types": collection.n_types_observed(),
        "search_query_gpt_share": gpt_share("Query", "Search query"),
        "urls_gpt_share": gpt_share("Web and network data", "URLs"),
        "user_interaction_gpt_share": gpt_share("App usage data", "User interaction data"),
        "email_gpt_share": gpt_share("Personal information", "Email address"),
        "api_key_gpt_share": gpt_share("Security credentials", "API key"),
        "password_gpt_share": gpt_share("Security credentials", "Password"),
        "top_type": top_rows[0].data_type if top_rows else "",
    }
    return _result(
        "table4",
        "Table 4: data types collected by Actions",
        measured,
        tables.render_table4(collection, max_rows=40),
    )


def run_table5(suite: MeasurementSuite) -> ExperimentResult:
    """Table 5 — prevalent third-party Actions."""
    prevalence = suite.prevalence

    def share_of(name: str) -> float:
        row = prevalence.row_by_name(name)
        return row.gpt_share if row else 0.0

    top = prevalence.top(1)
    measured = {
        "most_prevalent_action": top[0].name if top else "",
        "webpilot_share": share_of("webPilot"),
        "zapier_share": share_of("Zapier"),
        "adintelli_share": share_of("AdIntelli"),
        "openai_profile_share": share_of("OpenAI Profile"),
        "gapier_share": share_of("Gapier"),
    }
    return _result(
        "table5",
        "Table 5: prevalent third-party Actions",
        measured,
        tables.render_table5(prevalence),
    )


def run_table6(suite: MeasurementSuite) -> ExperimentResult:
    """Table 6 — content of duplicate privacy policies."""
    duplicates = suite.policy_duplicates
    fractions = duplicates.duplicate_content_fractions()
    measured = {
        "external_service": fractions.get("external_service", 0.0),
        "empty": fractions.get("empty", 0.0),
        "same_vendor": fractions.get("same_vendor", 0.0),
        "javascript": fractions.get("javascript", 0.0),
        "openai_policy": fractions.get("openai_policy", 0.0),
        "tracking_pixel": fractions.get("tracking_pixel", 0.0),
    }
    return _result(
        "table6",
        "Table 6: duplicate privacy-policy content",
        measured,
        tables.render_table6(duplicates),
    )


def run_table7(suite: MeasurementSuite) -> ExperimentResult:
    """Table 7 — Actions with five or more consistent disclosures."""
    disclosure = suite.disclosure
    rows = disclosure.top_consistent_actions(min_clear=5)
    measured = {
        "fully_consistent_action_share": disclosure.fully_consistent_share,
        "example_actions": [row.name for row in rows[:6]],
        "n_actions_with_5_plus_consistent": len(rows),
    }
    return _result(
        "table7",
        "Table 7: Actions with consistent disclosures",
        measured,
        tables.render_table7(disclosure),
    )


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------
def run_figure3(suite: MeasurementSuite) -> ExperimentResult:
    """Figure 3 — taxonomy coverage CDF."""
    coverage = suite.coverage
    category_values = list(coverage.category_coverage.values())
    measured = {
        "min_descriptions_per_category": min(category_values) if category_values else 0,
        "median_descriptions_per_category": coverage.median_coverage("category"),
        "types_covering_10_plus": coverage.share_covering_at_least(10, level="type"),
        "total_distinct_descriptions": coverage.n_distinct_descriptions,
    }
    series = figures.figure3_series(coverage)
    artifact = "\n".join(f"{s.name}: {len(s.points)} CDF points" for s in series)
    return _result("figure3", "Figure 3: taxonomy coverage", measured, artifact)


def run_figure7(suite: MeasurementSuite) -> ExperimentResult:
    """Figure 7 — data items per Action CDF."""
    collection = suite.collection
    measured = {
        "share_actions_5_plus_items": collection.share_with_at_least(5),
        "share_actions_10_plus_items": collection.share_with_at_least(10),
        "third_party_excess": collection.third_party_excess(),
    }
    series = figures.figure7_series(collection)
    artifact = "\n".join(f"{s.name}: {len(s.points)} CDF points" for s in series)
    return _result("figure7", "Figure 7: data items per Action", measured, artifact)


def run_figure8(suite: MeasurementSuite) -> ExperimentResult:
    """Figure 8 — Action co-occurrence graph."""
    cooccurrence = suite.cooccurrence
    multi = suite.multi_action
    summary = figures.figure8_summary(cooccurrence)
    webpilot = cooccurrence.find_by_name("webPilot")
    adintelli = cooccurrence.find_by_name("AdIntelli")
    measured = {
        "webpilot_weighted_degree": cooccurrence.weighted_degree(webpilot) if webpilot else 0,
        "adintelli_weighted_degree": cooccurrence.weighted_degree(adintelli) if adintelli else 0,
        "webpilot_degree": cooccurrence.degree(webpilot) if webpilot else 0,
        "adintelli_degree": cooccurrence.degree(adintelli) if adintelli else 0,
        "webpilot_adintelli_cooccurrences": (
            cooccurrence.cooccurrence_count(webpilot, adintelli) if webpilot and adintelli else 0
        ),
        "cooccurring_action_share": multi.cooccurring_action_share,
        "largest_component_size": summary["largest_component_size"],
    }
    artifact = (
        f"nodes={summary['n_nodes']} edges={summary['n_edges']} "
        f"largest_component={summary['largest_component_size']}"
    )
    return _result("figure8", "Figure 8: Action co-occurrence graph", measured, artifact)


def run_figure9(suite: MeasurementSuite) -> ExperimentResult:
    """Figure 9 — disclosure consistency heat map by category."""
    disclosure = suite.disclosure
    distributions = disclosure.category_distributions

    def fraction(category: str, label: ConsistencyLabel) -> float:
        return distributions.get(category, {}).get(label, 0.0)

    omitted_majorities = [
        distribution.get(ConsistencyLabel.OMITTED, 0.0) > 0.5
        for distribution in distributions.values()
    ]
    measured = {
        "health_omitted": fraction("Health information", ConsistencyLabel.OMITTED),
        "real_estate_omitted": fraction("Real estate data", ConsistencyLabel.OMITTED),
        "personal_information_clear": fraction("Personal information", ConsistencyLabel.CLEAR),
        "message_omitted": fraction("Message", ConsistencyLabel.OMITTED),
        "app_usage_omitted": fraction("App usage data", ConsistencyLabel.OMITTED),
        "most_categories_majority_omitted": (
            sum(omitted_majorities) > len(omitted_majorities) / 2 if omitted_majorities else False
        ),
    }
    rows = figures.figure9_heatmap(disclosure)
    artifact = "\n".join(
        f"{category}: " + ", ".join(f"{label}={value:.1%}" for label, value in distribution.items())
        for category, distribution in rows[:8]
    )
    return _result("figure9", "Figure 9: disclosure consistency by category", measured, artifact)


def run_figure10(suite: MeasurementSuite) -> ExperimentResult:
    """Figure 10 — disclosure consistency for prevalent data types."""
    disclosure = suite.disclosure
    rows = disclosure.prevalent_type_rows(min_occurrences=5)
    search_query = next(
        (total for (category, data_type), _, total in rows if data_type == "Search query"), 0
    )
    least_omitted = sorted(
        (
            (
                data_type,
                counts.get(ConsistencyLabel.OMITTED, 0) / max(1, total),
            )
            for (category, data_type), counts, total in rows
        ),
        key=lambda item: item[1],
    )
    measured = {
        "search_query_occurrences": search_query,
        "least_omitted_types": [name for name, _ in least_omitted[:3]],
        "n_prevalent_types": len(rows),
    }
    artifact = "\n".join(
        f"{key[0]} / {key[1]}: total={total}" for key, _, total in rows[:10]
    )
    return _result("figure10", "Figure 10: disclosure consistency by data type", measured, artifact)


def run_figure11(suite: MeasurementSuite) -> ExperimentResult:
    """Figure 11 — CDF of per-Action disclosure mixes."""
    disclosure = suite.disclosure
    measured = {
        "majority_consistent_action_share": disclosure.majority_consistent_share,
        "min_inconsistent_share": 1.0 - disclosure.majority_consistent_share,
        "n_actions": disclosure.n_actions_analyzed,
    }
    series = figures.figure11_series(disclosure)
    artifact = "\n".join(f"{s.name}: {len(s.points)} CDF points" for s in series)
    return _result("figure11", "Figure 11: per-Action disclosure mix", measured, artifact)


def run_figure12(suite: MeasurementSuite) -> ExperimentResult:
    """Figure 12 — disclosure consistency versus data-item count."""
    disclosure = suite.disclosure
    measured = {
        "spearman_correlation": disclosure.spearman_consistency_vs_items(),
        "n_points": len(disclosure.consistency_vs_items),
    }
    series = figures.figure12_series(disclosure)
    artifact = f"{len(series.points)} (item count, consistency) points"
    return _result("figure12", "Figure 12: consistency vs collected items", measured, artifact)


# ---------------------------------------------------------------------------
# In-text statistics
# ---------------------------------------------------------------------------
def run_taxonomy_refinement(suite: MeasurementSuite) -> ExperimentResult:
    """Section 3.2.4 — handling of ``Other`` descriptions and taxonomy growth.

    Classifies a sample of data descriptions against the *bootstrap* taxonomy
    (18 categories / 79 types), runs the Code 4 refinement loop over the
    descriptions that fell to ``Other``, and measures how much the taxonomy
    grows and how far the residual ``Other`` rate drops — the paper goes from
    35.07% unclassified to 7.95% while growing the taxonomy to 24×145.
    """
    from repro.classification.classifier import ClassifierConfig, DataCollectionClassifier
    from repro.classification.descriptions import sample_descriptions
    from repro.classification.other_handler import OtherDescriptionHandler
    from repro.taxonomy.bootstrap import load_bootstrap_taxonomy

    bootstrap = load_bootstrap_taxonomy()
    descriptions = sample_descriptions(
        suite.descriptions, min(400, len(suite.descriptions)), seed=suite.config.seed + 3
    )
    classifier = DataCollectionClassifier(
        taxonomy=bootstrap,
        llm=suite.llm,
        fewshot_store=suite.fewshot_store,
        config=ClassifierConfig(fewshot_k=suite.config.fewshot_k, two_phase=False),
    )
    initial = classifier.classify_many(descriptions)
    handler = OtherDescriptionHandler(bootstrap, suite.llm)
    outcome = handler.handle(initial, fewshot_store=suite.fewshot_store)
    merged = handler.apply(initial, outcome)
    extended = outcome.extended_taxonomy
    measured = {
        "initial_other_rate": initial.other_rate(),
        "final_other_rate": merged.other_rate(),
        "accepted_new_categories": outcome.refinement_report.n_new_categories,
        "accepted_new_types": outcome.refinement_report.n_new_types,
        "final_n_categories": extended.n_categories - (1 if extended.has_category("Other") else 0),
        "final_n_types": extended.n_distinct_type_names - (1 if extended.find_type("Other") else 0),
    }
    artifact = (
        f"other rate {initial.other_rate():.1%} -> {merged.other_rate():.1%}; "
        f"taxonomy {bootstrap.n_categories - 1}x{bootstrap.n_types - 1} -> "
        f"{measured['final_n_categories']}x{measured['final_n_types']}"
    )
    return _result("taxonomy_refinement", "Section 3.2.4: taxonomy refinement", measured, artifact)


def run_classifier_accuracy(suite: MeasurementSuite) -> ExperimentResult:
    """Section 4.1.2 — classification accuracy."""
    evaluation = suite.evaluate_classifier(sample_fraction=1.0)
    sample_evaluation = suite.evaluate_classifier(sample_fraction=0.05)
    measured = {
        "category_accuracy": evaluation.category_accuracy,
        "type_accuracy": evaluation.type_accuracy,
        "seed_set_category_accuracy": sample_evaluation.category_accuracy,
        "seed_set_type_accuracy": sample_evaluation.type_accuracy,
    }
    return _result(
        "classifier_accuracy", "Section 4.1.2: classifier accuracy", measured, evaluation.summary()
    )


def run_headline_stats(suite: MeasurementSuite) -> ExperimentResult:
    """Section 4.2 headline statistics."""
    collection = suite.collection
    prohibited = suite.prohibited
    query_row = collection.row_for("Query", "Search query")
    measured = {
        "actions_5_plus_items": collection.share_with_at_least(5),
        "actions_10_plus_items": collection.share_with_at_least(10),
        "third_party_excess": collection.third_party_excess(),
        "prohibited_gpt_share": prohibited.offending_gpt_share,
        "gpt_query_collection_share": query_row.gpt_share if query_row else 0.0,
    }
    return _result("headline_stats", "Section 4.2: headline data-collection statistics", measured)


def run_multiaction(suite: MeasurementSuite) -> ExperimentResult:
    """Section 4.4.1 — multi-Action GPTs."""
    multi = suite.multi_action
    measured = {
        "one_action": multi.share_with_n_actions(1),
        "two_actions": multi.share_with_n_actions(2),
        "three_actions": multi.share_with_n_actions(3),
        "four_plus_actions": multi.share_with_at_least(4),
        "cross_domain_share": multi.cross_domain_share,
        "cooccurring_action_share": multi.cooccurring_action_share,
    }
    return _result("multiaction", "Section 4.4.1: multi-Action GPTs", measured)


def run_policy_stats(suite: MeasurementSuite) -> ExperimentResult:
    """Section 5.1 — policy availability, duplication, and framework accuracy."""
    duplicates = suite.policy_duplicates
    evaluation = suite.evaluate_policy_framework()
    measured = {
        "availability": duplicates.availability,
        "duplicate_share": duplicates.duplicate_share,
        "near_duplicate_share": duplicates.near_duplicate_share,
        "short_policy_share": duplicates.short_share,
        "framework_accuracy": evaluation.accuracy,
        "framework_precision": evaluation.precision,
        "framework_recall": evaluation.recall,
    }
    return _result("policy_stats", "Section 5.1: policy corpus statistics", measured)


def run_disclosure_headlines(suite: MeasurementSuite) -> ExperimentResult:
    """Section 5.2 — disclosure-consistency headline statistics."""
    disclosure = suite.disclosure
    overall = disclosure.overall_distribution()
    measured = {
        "majority_consistent_action_share": disclosure.majority_consistent_share,
        "fully_consistent_action_share": disclosure.fully_consistent_share,
        "spearman_correlation": disclosure.spearman_consistency_vs_items(),
        "omitted_dominates": overall[ConsistencyLabel.OMITTED]
        > sum(value for label, value in overall.items() if label is not ConsistencyLabel.OMITTED),
    }
    return _result("disclosure_headlines", "Section 5.2: disclosure headlines", measured)


#: All registered experiments keyed by experiment id.
EXPERIMENTS: Dict[str, Experiment] = {
    "table1": run_table1,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "table7": run_table7,
    "figure3": run_figure3,
    "figure7": run_figure7,
    "figure8": run_figure8,
    "figure9": run_figure9,
    "figure10": run_figure10,
    "figure11": run_figure11,
    "figure12": run_figure12,
    "taxonomy_refinement": run_taxonomy_refinement,
    "classifier_accuracy": run_classifier_accuracy,
    "headline_stats": run_headline_stats,
    "multiaction": run_multiaction,
    "policy_stats": run_policy_stats,
    "disclosure_headlines": run_disclosure_headlines,
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id (raises ``KeyError`` for unknown ids)."""
    return EXPERIMENTS[experiment_id]


def run_experiment(experiment_id: str, suite: MeasurementSuite) -> ExperimentResult:
    """Run a single experiment on a measurement suite."""
    return get_experiment(experiment_id)(suite)


def run_all_experiments(suite: MeasurementSuite) -> List[ExperimentResult]:
    """Run every registered experiment on a shared measurement suite."""
    return [experiment(suite) for experiment in EXPERIMENTS.values()]


# ---------------------------------------------------------------------------
# Sweep-aggregated variants
# ---------------------------------------------------------------------------
#: A sweep experiment maps an aggregated sweep report to a result.
SweepExperiment = Callable[["SweepReport"], ExperimentResult]


def _make_sweep_experiment(experiment_id: str) -> SweepExperiment:
    """Build the sweep-aggregated variant of one registered experiment.

    The variant compares the paper's reference values against the
    *across-seed mean* of each metric in the sweep's ``baseline`` scenario
    (falling back to the report's first scenario when no ``baseline`` cells
    ran), exposes per-metric spread as ``<metric>:stdev`` /  ``:min`` /
    ``:max`` companions, and renders the cross-scenario comparison table as
    its artifact — the single-run experiment's paper comparison, with error
    bars and scenario deltas attached.
    """

    def run(report: "SweepReport") -> ExperimentResult:
        from repro.reporting.sweep import render_scenario_comparison

        names = report.scenario_names()
        if not names:
            raise ValueError("cannot aggregate an empty sweep report")
        scenario = "baseline" if "baseline" in names else names[0]
        aggregate = report.scenario(scenario)
        measured: Dict[str, object] = {}
        for metric, summary in report.metric_summaries(scenario, experiment_id).items():
            measured[metric] = summary.mean
            measured[f"{metric}:stdev"] = summary.stdev
            measured[f"{metric}:min"] = summary.min
            measured[f"{metric}:max"] = summary.max
        return ExperimentResult(
            experiment_id=f"{experiment_id}@sweep",
            title=(
                f"{experiment_id} (sweep aggregate: {scenario} scenario, "
                f"{aggregate.n_cells} seeds)"
            ),
            paper_values=dict(PAPER_VALUES.get(experiment_id, {})),
            measured_values=measured,
            artifact=render_scenario_comparison(report, experiment_id),
        )

    return run


#: Sweep-aggregated variant of every registered experiment, keyed by the
#: *single-run* experiment id (``run_sweep_experiment("table4", report)``).
SWEEP_EXPERIMENTS: Dict[str, SweepExperiment] = {
    experiment_id: _make_sweep_experiment(experiment_id) for experiment_id in EXPERIMENTS
}


def run_sweep_experiment(experiment_id: str, report: "SweepReport") -> ExperimentResult:
    """Run one experiment's sweep-aggregated variant on a sweep report."""
    return SWEEP_EXPERIMENTS[experiment_id](report)


def run_all_sweep_experiments(report: "SweepReport") -> List[ExperimentResult]:
    """Run every sweep-aggregated experiment variant on a sweep report."""
    return [experiment(report) for experiment in SWEEP_EXPERIMENTS.values()]
