"""Parallel multi-seed / multi-scenario experiment sweeps.

The paper's headline numbers are point estimates from one crawl of one
ecosystem.  A production-scale reproduction runs the *whole* measurement
pipeline across many seeds and scenario configurations and reports variance.
This module provides that layer:

* :class:`Scenario` — a named variation of the paper-calibrated ecosystem
  and suite configuration (:data:`BUILTIN_SCENARIOS` ships ``baseline``,
  ``flaky-hosts``, ``large-store``, ``dense-duplicates``,
  ``sparse-policies``, the evolved-world ``churned-store``, and the
  adversarial-web pair ``hostile-hosts`` / ``hostile-ratelimit``);
* :func:`expand_grid` — expands scenario names × seed count into
  :class:`SweepCell` work units;
* :class:`SweepRunner` — runs one full :class:`MeasurementSuite` pipeline
  per cell, scheduled concurrently on the crawl engine's worker pool
  (:class:`~repro.crawler.engine.CrawlEngine` — the same frontier/pool
  abstraction the crawl stages use, not a second ad-hoc pool), with every
  intermediate product (crawled corpus, classification, per-experiment
  results) persisted in a content-addressed
  :class:`~repro.io.artifacts.ArtifactStore` keyed by configuration
  fingerprints.  Re-running a sweep recomputes only the cells whose
  configuration changed, and a killed sweep resumes from the cells already
  cached;
* :func:`aggregate_cells` — per-metric mean/stdev/min/max across seeds and
  per-scenario deltas against the baseline scenario
  (:class:`SweepReport`), rendered by :mod:`repro.reporting.sweep` and the
  registry's sweep-aggregated experiment variants.

Cell execution is deterministic per (scenario, seed) and outcomes are merged
in submission order, so aggregated results are byte-identical at any worker
count, with or without the cache.
"""

from __future__ import annotations

import json
import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.analysis.suite import MeasurementSuite, SuiteConfig
from repro.crawler.engine import CrawlEngine, CrawlTask
from repro.ecosystem.config import EcosystemConfig
from repro.exec import (
    ExecutionBackend,
    ProcessBackend,
    WorkerPool,
    resolve_pool,
    shared_state,
)
from repro.experiments.registry import EXPERIMENTS
from repro.io import (
    ArtifactStore,
    ArtifactStoreStatistics,
    canonical_json,
    classification_from_payload,
    classification_to_payload,
    config_fingerprint,
    corpus_from_payload,
    corpus_to_payload,
    policies_to_payload,
)

#: Bump when the cached artifact layout changes; stale caches become misses.
SWEEP_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Scenarios and grid expansion
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """One named variation of the measurement configuration.

    ``ecosystem_overrides`` are keyword overrides applied on top of
    :meth:`EcosystemConfig.paper_calibrated`; ``suite_overrides`` override
    :class:`SuiteConfig` fields.  Both must stay JSON-serializable — they
    are part of every artifact fingerprint.  ``gpt_multiplier`` scales the
    corpus relative to the sweep's base ``n_gpts``.
    """

    name: str
    description: str = ""
    ecosystem_overrides: Mapping[str, object] = field(default_factory=dict)
    suite_overrides: Mapping[str, object] = field(default_factory=dict)
    gpt_multiplier: float = 1.0

    def effective_gpts(self, n_gpts: int) -> int:
        """Corpus size for this scenario at a base scale of ``n_gpts``."""
        return max(1, round(n_gpts * self.gpt_multiplier))

    def ecosystem_config(self, n_gpts: int, seed: int) -> EcosystemConfig:
        """The scenario's ecosystem configuration at one (scale, seed)."""
        return EcosystemConfig.paper_calibrated(
            n_gpts=self.effective_gpts(n_gpts), seed=seed, **dict(self.ecosystem_overrides)
        )

    def suite_config(self, n_gpts: int, seed: int) -> SuiteConfig:
        """The scenario's suite configuration at one (scale, seed)."""
        return SuiteConfig(
            n_gpts=self.effective_gpts(n_gpts), seed=seed, **dict(self.suite_overrides)
        )

    def payload(self) -> Dict[str, object]:
        """The scenario's contribution to artifact fingerprints."""
        return {
            "name": self.name,
            "ecosystem_overrides": dict(self.ecosystem_overrides),
            "suite_overrides": dict(self.suite_overrides),
            "gpt_multiplier": self.gpt_multiplier,
        }


#: Named built-in scenarios.  ``baseline`` is the paper-calibrated default;
#: the others stress one axis of the measurement each.
BUILTIN_SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario("baseline", "paper-calibrated defaults"),
        Scenario(
            "flaky-hosts",
            "unreliable hosting: more dead store links, more policy hosts erroring out",
            ecosystem_overrides={"dead_link_rate": 0.08, "policy_availability": 0.82},
        ),
        Scenario(
            "large-store",
            "1.5x corpus with heavier cross-store overlap",
            ecosystem_overrides={"cross_store_overlap": 0.5},
            gpt_multiplier=1.5,
        ),
        Scenario(
            "dense-duplicates",
            "privacy-policy corpus dominated by exact and near duplicates",
            ecosystem_overrides={
                "policy_exact_duplicate_share": 0.60,
                "policy_near_duplicate_share": 0.12,
            },
        ),
        Scenario(
            "sparse-policies",
            "poor policy coverage: many missing and very short policies",
            ecosystem_overrides={"policy_availability": 0.62, "policy_short_share": 0.10},
        ),
        # The adversarial-web pair (ROADMAP item 5a).  Circuit breaking
        # stays off: circuit state depends on request interleaving, and
        # sweep scenarios must stay byte-identical at any worker count.
        Scenario(
            "hostile-hosts",
            "adversarial web: redirect chains and loops, 429 storms, "
            "tarpit latency, content-flapping hosts, deadline-enforced transport",
            suite_overrides={
                # Default battery, with tarpit tails big enough that a tail
                # draw deterministically exceeds the request deadline — so
                # the deadline taxonomy is exercised, visibly.
                "crawl_hostile": {"tarpit_tail_s": 0.3, "tarpit_tail_p": 0.35},
                "crawl_transport": {"deadline_s": 0.2},
            },
        ),
        Scenario(
            "churned-store",
            "the world one evolution epoch after the baseline snapshot: "
            "seeded churn of GPTs, Actions, and policy revisions "
            "(repro.ecosystem.evolution)",
            suite_overrides={"epoch": 1},
        ),
        Scenario(
            "hostile-ratelimit",
            "429 rate-limit storms only: every record survives via "
            "Retry-After-aware retries (zero lost records)",
            suite_overrides={
                "crawl_hostile": {
                    "redirect_chain_hosts": 0,
                    "redirect_loop_hosts": 0,
                    "tarpit_hosts": 0,
                    "flapping_hosts": 0,
                    "ratelimit_hosts": 4,
                    "ratelimit_burst": 3,
                    "retry_after_s": 0.002,
                },
            },
        ),
    )
}


@dataclass(frozen=True)
class SweepCell:
    """One (scenario, seed) unit of sweep work."""

    scenario: Scenario
    seed: int
    n_gpts: int

    @property
    def cell_id(self) -> str:
        """Unique, human-readable cell name (``<scenario>/seed<seed>``)."""
        return f"{self.scenario.name}/seed{self.seed}"

    def fingerprint_payload(self) -> Dict[str, object]:
        """Everything the cell's cached artifacts depend on."""
        return {
            "schema": SWEEP_SCHEMA_VERSION,
            "scenario": self.scenario.payload(),
            "seed": self.seed,
            "n_gpts": self.n_gpts,
        }

    def stage_fingerprint(self, stage: str, extra: Optional[Mapping[str, object]] = None) -> str:
        """Content address of one pipeline stage's artifact for this cell."""
        payload = dict(self.fingerprint_payload())
        payload["stage"] = stage
        if extra:
            payload.update(extra)
        return config_fingerprint(payload)


def expand_grid(
    scenario_names: Sequence[str],
    n_seeds: int,
    base_seed: int = 0,
    n_gpts: int = 2000,
    scenarios: Optional[Mapping[str, Scenario]] = None,
) -> List[SweepCell]:
    """Expand scenario names × seeds into an ordered list of sweep cells.

    Seeds run from ``base_seed`` to ``base_seed + n_seeds - 1`` for every
    scenario; cells are ordered scenario-major so aggregation and reporting
    follow the caller's scenario order.
    """
    registry = dict(scenarios if scenarios is not None else BUILTIN_SCENARIOS)
    if n_seeds < 1:
        raise ValueError("n_seeds must be at least 1")
    if not scenario_names:
        raise ValueError("at least one scenario is required")
    unknown = [name for name in scenario_names if name not in registry]
    if unknown:
        raise ValueError(
            f"unknown scenario(s) {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(registry))}"
        )
    return [
        SweepCell(scenario=registry[name], seed=base_seed + offset, n_gpts=n_gpts)
        for name in scenario_names
        for offset in range(n_seeds)
    ]


# ---------------------------------------------------------------------------
# Cell results and aggregation
# ---------------------------------------------------------------------------
@dataclass
class CellResult:
    """The measured experiment values of one sweep cell."""

    cell_id: str
    scenario: str
    seed: int
    #: experiment id → metric name → JSON-clean measured value.
    experiments: Dict[str, Dict[str, object]]
    #: Whether the whole cell was served from the results cache.
    from_cache: bool = False
    #: Stages individually loaded from the cache (partial resume).
    stage_hits: List[str] = field(default_factory=list)
    wall_time_s: float = 0.0


@dataclass(frozen=True)
class MetricSummary:
    """Across-seed statistics of one numeric metric."""

    metric: str
    n: int
    mean: float
    stdev: float
    min: float
    max: float

    @classmethod
    def from_values(cls, metric: str, values: Sequence[float]) -> "MetricSummary":
        """Summarize one metric's per-seed values (population stdev)."""
        return cls(
            metric=metric,
            n=len(values),
            mean=statistics.fmean(values),
            stdev=statistics.pstdev(values),
            min=min(values),
            max=max(values),
        )


@dataclass(frozen=True)
class MetricDelta:
    """One scenario's mean shift of a metric against the baseline scenario."""

    scenario: str
    experiment_id: str
    metric: str
    baseline_mean: float
    scenario_mean: float

    @property
    def delta(self) -> float:
        """Absolute mean shift versus the baseline scenario."""
        return self.scenario_mean - self.baseline_mean

    @property
    def relative(self) -> Optional[float]:
        """Relative mean shift, or ``None`` when the baseline mean is zero."""
        if self.baseline_mean == 0:
            return None
        return self.delta / self.baseline_mean


@dataclass
class ScenarioAggregate:
    """Per-metric summaries for one scenario, across its seeds."""

    scenario: str
    seeds: List[int]
    #: experiment id → metric name → across-seed summary.
    experiments: Dict[str, Dict[str, MetricSummary]]

    @property
    def n_cells(self) -> int:
        """How many (scenario, seed) cells fed this aggregate."""
        return len(self.seeds)


@dataclass
class SweepReport:
    """Aggregated sweep results, in the grid's scenario order."""

    scenarios: List[ScenarioAggregate]

    def scenario_names(self) -> List[str]:
        """Scenario names in aggregation order."""
        return [aggregate.scenario for aggregate in self.scenarios]

    def scenario(self, name: str) -> ScenarioAggregate:
        """Look up one scenario's aggregate (raises ``KeyError``)."""
        for aggregate in self.scenarios:
            if aggregate.scenario == name:
                return aggregate
        raise KeyError(name)

    def metric_summaries(self, scenario: str, experiment_id: str) -> Dict[str, MetricSummary]:
        """Metric → summary for one (scenario, experiment) pair."""
        return dict(self.scenario(scenario).experiments.get(experiment_id, {}))

    def deltas_vs(self, baseline: str = "baseline") -> List[MetricDelta]:
        """Mean shifts of every non-baseline scenario against ``baseline``.

        Only metrics present in both the baseline and the compared scenario
        contribute; returns an empty list when the baseline scenario is not
        part of the report.
        """
        try:
            reference = self.scenario(baseline)
        except KeyError:
            return []
        deltas: List[MetricDelta] = []
        for aggregate in self.scenarios:
            if aggregate.scenario == baseline:
                continue
            for experiment_id, summaries in aggregate.experiments.items():
                base_summaries = reference.experiments.get(experiment_id, {})
                for metric, summary in summaries.items():
                    base = base_summaries.get(metric)
                    if base is None:
                        continue
                    deltas.append(
                        MetricDelta(
                            scenario=aggregate.scenario,
                            experiment_id=experiment_id,
                            metric=metric,
                            baseline_mean=base.mean,
                            scenario_mean=summary.mean,
                        )
                    )
        return deltas


def _is_numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def aggregate_cells(cells: Iterable[CellResult]) -> SweepReport:
    """Aggregate per-cell results into across-seed metric summaries.

    Scenarios keep their first-appearance order; within a scenario, a
    metric is summarized over every seed where it is numeric (booleans and
    strings are reported per-cell but not aggregated).
    """
    by_scenario: Dict[str, List[CellResult]] = {}
    order: List[str] = []
    for cell in cells:
        if cell.scenario not in by_scenario:
            order.append(cell.scenario)
        by_scenario.setdefault(cell.scenario, []).append(cell)

    aggregates: List[ScenarioAggregate] = []
    for scenario in order:
        scenario_cells = sorted(by_scenario[scenario], key=lambda cell: cell.seed)
        experiments: Dict[str, Dict[str, MetricSummary]] = {}
        experiment_ids: List[str] = []
        for cell in scenario_cells:
            for experiment_id in cell.experiments:
                if experiment_id not in experiment_ids:
                    experiment_ids.append(experiment_id)
        for experiment_id in experiment_ids:
            metrics: Dict[str, List[float]] = {}
            metric_order: List[str] = []
            for cell in scenario_cells:
                for metric, value in cell.experiments.get(experiment_id, {}).items():
                    if not _is_numeric(value):
                        continue
                    if metric not in metrics:
                        metric_order.append(metric)
                    metrics.setdefault(metric, []).append(float(value))
            experiments[experiment_id] = {
                metric: MetricSummary.from_values(metric, metrics[metric])
                for metric in metric_order
            }
        aggregates.append(
            ScenarioAggregate(
                scenario=scenario,
                seeds=[cell.seed for cell in scenario_cells],
                experiments=experiments,
            )
        )
    return SweepReport(scenarios=aggregates)


# ---------------------------------------------------------------------------
# The sweep runner
# ---------------------------------------------------------------------------
@dataclass
class SweepResult:
    """Everything one sweep run produced."""

    cells: List[CellResult]
    wall_time_s: float = 0.0
    store_statistics: Optional[ArtifactStoreStatistics] = None

    @property
    def n_cells(self) -> int:
        """Total number of cells in the sweep."""
        return len(self.cells)

    @property
    def n_from_cache(self) -> int:
        """Cells whose results were served entirely from the cache."""
        return sum(1 for cell in self.cells if cell.from_cache)

    def report(self) -> SweepReport:
        """Aggregate the cells into a :class:`SweepReport`."""
        return aggregate_cells(self.cells)


def _jsonable(value: object) -> object:
    """Coerce a measured value into plain JSON types (numpy included)."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalars
        return _jsonable(item())
    return str(value)


def _execute_cell(
    cell: SweepCell,
    experiment_ids: Sequence[str],
    store: Optional[ArtifactStore],
    shards: int,
    shard_workers: int,
) -> CellResult:
    """Run one sweep cell (cache lookup → suite → experiments → persist).

    Module-level with picklable inputs so the process backend can fan whole
    cells out across cores; the thread/serial schedulers call it with the
    coordinator's shared :class:`ArtifactStore`.
    """
    start = time.monotonic()
    results_fp = cell.stage_fingerprint(
        "results", {"experiments": sorted(experiment_ids)}
    )
    if store is not None:
        cached = store.get("results", results_fp)
        if cached is not None:
            return CellResult(
                cell_id=cell.cell_id,
                scenario=cell.scenario.name,
                seed=cell.seed,
                experiments=cached,
                from_cache=True,
                wall_time_s=time.monotonic() - start,
            )

    corpus = None
    classification = None
    stage_hits: List[str] = []
    if store is not None:
        corpus_payload = store.get("corpus", cell.stage_fingerprint("corpus"))
        if corpus_payload is not None:
            corpus = corpus_from_payload(
                corpus_payload["corpus"], corpus_payload["policies"]
            )
            stage_hits.append("corpus")
        labels_payload = store.get(
            "classification", cell.stage_fingerprint("classification")
        )
        if labels_payload is not None:
            classification = classification_from_payload(labels_payload)
            stage_hits.append("classification")

    suite_config = cell.scenario.suite_config(cell.n_gpts, cell.seed)
    # Execution knobs, applied after the fingerprint payloads were built:
    # sharded/parallel/process runs of a cell are byte-identical, so they
    # must (and do) hit the same cache entries.
    # The sweep's ``backend`` knob is deliberately NOT forwarded here: it
    # schedules whole cells, and a cell's own shard fan-out nesting another
    # pool inside a process-pool worker would oversubscribe the machine.
    # Cells wanting a specific inner backend set it via
    # ``Scenario.suite_overrides['backend']`` instead.
    if shards:
        suite_config.shards = shards
        suite_config.shard_workers = shard_workers
    # The suite is closed on the way out: a cell whose scenario overrides
    # pick an inner process backend owns a warm pool for exactly the
    # cell's duration.
    with MeasurementSuite(
        config=suite_config,
        ecosystem_config=cell.scenario.ecosystem_config(cell.n_gpts, cell.seed),
        corpus=corpus,
        classification=classification,
    ) as suite:
        # Round-trip through canonical JSON so fresh and cache-served cells
        # carry bit-identical values (e.g. numpy scalars become plain floats
        # on both paths).
        experiments: Dict[str, Dict[str, object]] = json.loads(
            canonical_json(
                {
                    experiment_id: _jsonable(
                        EXPERIMENTS[experiment_id](suite).measured_values
                    )
                    for experiment_id in experiment_ids
                }
            )
        )

    # Persist exactly the intermediate stages this cell's experiments
    # materialized — never force an expensive stage (classification, a
    # full crawl) that nothing in the selected experiment set needed.
    if store is not None:
        if corpus is None and suite.stage_materialized("corpus"):
            built = suite.corpus
            store.put(
                "corpus",
                cell.stage_fingerprint("corpus"),
                {
                    "corpus": corpus_to_payload(built),
                    "policies": policies_to_payload(built),
                },
            )
        if classification is None and suite.stage_materialized("classification"):
            store.put(
                "classification",
                cell.stage_fingerprint("classification"),
                classification_to_payload(suite.classification),
            )
        # Provenance manifest, not a preloadable stage: records which
        # generated ecosystem produced this cell's artifacts so a cache
        # directory is inspectable (ArtifactStore.iter_records) without
        # regenerating anything.  The ecosystem itself is deterministic
        # from (config, seed) and is rebuilt on demand by the suite.
        ecosystem_fp = cell.stage_fingerprint("ecosystem")
        if suite.stage_materialized("ecosystem") and not store.has(
            "ecosystem", ecosystem_fp
        ):
            ecosystem = suite.ecosystem
            store.put(
                "ecosystem",
                ecosystem_fp,
                {
                    "cell_id": cell.cell_id,
                    "scenario": cell.scenario.name,
                    "seed": cell.seed,
                    "n_gpts": len(ecosystem.gpts),
                    "n_actions": len(ecosystem.actions),
                    "n_policies": len(ecosystem.policies),
                },
            )
        store.put("results", results_fp, experiments)
    return CellResult(
        cell_id=cell.cell_id,
        scenario=cell.scenario.name,
        seed=cell.seed,
        experiments=experiments,
        stage_hits=stage_hits,
        wall_time_s=time.monotonic() - start,
    )


def _execute_cell_task(
    cell: SweepCell,
    experiment_ids: Sequence[str],
    store_root: Optional[str],
    shards: int,
    shard_workers: int,
) -> CellResult:
    """Process-backend cell entry point: rebuild the store from its path.

    :class:`ArtifactStore` holds a lock and therefore doesn't pickle; the
    store is content-addressed and its writes are atomic (temp names carry
    the pid), so per-process instances over the same directory compose —
    cache hits and resume behave identically, only the coordinator's
    hit/miss counters stay local to each process.
    """
    store = ArtifactStore(store_root) if store_root is not None else None
    return _execute_cell(cell, list(experiment_ids), store, shards, shard_workers)


#: Broadcast key for the sweep-invariant cell context (experiment set,
#: store path, shard knobs) on a warm worker pool.
SWEEP_CTX_KEY = "sweep/cell-context"


def _execute_cell_shared(cell: SweepCell) -> CellResult:
    """Warm-pool cell entry point: per-task payload is the cell alone.

    The run-invariant context ships once per worker via the pool
    initializer; workers stay warm across cells (and across repeated
    ``run()`` calls, since the runner broadcasts the same context object).
    """
    ctx = shared_state(SWEEP_CTX_KEY)
    return _execute_cell_task(
        cell,
        ctx["experiment_ids"],
        ctx["store_root"],
        ctx["shards"],
        ctx["shard_workers"],
    )


class SweepRunner:
    """Runs a sweep grid concurrently with content-addressed caching.

    Parameters
    ----------
    cells:
        The grid to run (see :func:`expand_grid`); cell ids must be unique.
    store:
        Optional :class:`~repro.io.artifacts.ArtifactStore`.  When set,
        each cell's corpus, classification, and experiment results are
        cached under fingerprints of the cell's exact configuration, so
        unchanged cells are skipped on re-runs and a killed sweep resumes.
    workers:
        Worker-pool size for the cell scheduler (``<= 1`` runs cells
        sequentially).  Cells are deterministic per (scenario, seed) and
        outcomes merge in submission order, so aggregated results are
        identical at any worker count.
    experiment_ids:
        Registry experiments to run per cell (default: all of them).
    shards / shard_workers:
        Execution knobs forwarded to every cell's
        :class:`~repro.analysis.suite.SuiteConfig` *after* fingerprinting:
        a sharded cell streams its corpus analyses shard-parallel but
        produces byte-identical results, so the artifact cache is shared
        between sharded and unsharded runs of the same grid.
    backend:
        Execution backend for the **cell scheduler** (``"serial"`` /
        ``"thread"`` / ``"process"``, an instance, or ``None`` for the
        worker-count default).  The process backend sidesteps the GIL for
        the pure-Python cell pipelines; cells rebuild per-process
        :class:`ArtifactStore` views over the same directory, so caching
        and resume are unchanged (coordinator hit/miss counters excepted).
        Cells themselves never inherit this knob — their internal shard
        fan-out stays on the worker-count default so pools don't nest; use
        ``Scenario.suite_overrides['backend']`` to pick a cell-internal
        backend.  Another post-fingerprint execution knob: results are
        byte-identical across backends and share cache entries.
        ``"process"`` builds one warm :class:`~repro.exec.WorkerPool` for
        the runner's lifetime — workers stay warm across cells and across
        repeated ``run()`` calls; close the runner (or use it as a
        context manager) to release them.
    """

    def __init__(
        self,
        cells: Sequence[SweepCell],
        store: Optional[ArtifactStore] = None,
        workers: int = 0,
        experiment_ids: Optional[Sequence[str]] = None,
        shards: int = 0,
        shard_workers: int = 0,
        backend: Union[str, ExecutionBackend, None] = None,
    ) -> None:
        self.cells = list(cells)
        ids = [cell.cell_id for cell in self.cells]
        if len(set(ids)) != len(ids):
            raise ValueError("sweep cells must have unique (scenario, seed) pairs")
        self.store = store
        self.experiment_ids = list(experiment_ids if experiment_ids is not None else EXPERIMENTS)
        unknown = [name for name in self.experiment_ids if name not in EXPERIMENTS]
        if unknown:
            raise ValueError(f"unknown experiment id(s): {', '.join(sorted(unknown))}")
        self.shards = max(0, shards)
        self.shard_workers = max(0, shard_workers)
        self.backend = backend
        self._owned_pool: Optional[WorkerPool] = None
        if backend == "process":
            # One warm pool for the runner's lifetime: workers stay up
            # across cells and across repeated run() calls (resume).
            self._owned_pool = WorkerPool(kind="process", workers=max(1, workers))
            backend = self._owned_pool
        self.engine = CrawlEngine(workers=workers, backend=backend)
        #: Run-invariant context broadcast to warm workers — built once so
        #: repeated run() calls re-broadcast the same object (no pool
        #: restart between runs).
        self._cell_context = {
            "experiment_ids": tuple(self.experiment_ids),
            "store_root": str(self.store.root) if self.store is not None else None,
            "shards": self.shards,
            "shard_workers": self.shard_workers,
        }

    def close(self) -> None:
        """Release the owned warm pool (idempotent; borrowed pools stay up)."""
        if self._owned_pool is not None:
            self._owned_pool.close()
            self._owned_pool = None

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _results_fingerprint(self, cell: SweepCell) -> str:
        return cell.stage_fingerprint("results", {"experiments": sorted(self.experiment_ids)})

    def _run_cell(self, cell: SweepCell) -> CellResult:
        return _execute_cell(
            cell, self.experiment_ids, self.store, self.shards, self.shard_workers
        )

    # ------------------------------------------------------------------
    def run(self) -> SweepResult:
        """Run every cell; results come back in grid (submission) order."""
        start = time.monotonic()
        pool = resolve_pool(self.engine.backend)
        if pool is not None and pool.is_process:
            # Warm path: the invariant context ships once per worker via
            # the pool initializer; each task pickles only its cell.
            pool.broadcast(SWEEP_CTX_KEY, self._cell_context)
            tasks = [
                CrawlTask(key=cell.cell_id, fn=_execute_cell_shared, args=(cell,))
                for cell in self.cells
            ]
        elif isinstance(self.engine.backend, ProcessBackend):
            store_root = str(self.store.root) if self.store is not None else None
            tasks = [
                CrawlTask(
                    key=cell.cell_id,
                    fn=_execute_cell_task,
                    args=(
                        cell,
                        tuple(self.experiment_ids),
                        store_root,
                        self.shards,
                        self.shard_workers,
                    ),
                )
                for cell in self.cells
            ]
        else:
            tasks = [
                CrawlTask(key=cell.cell_id, fn=lambda c=cell: self._run_cell(c))
                for cell in self.cells
            ]
        outcomes = self.engine.run(tasks)
        results: List[CellResult] = []
        for outcome in outcomes:
            if not outcome.ok:
                raise RuntimeError(f"sweep cell {outcome.key!r} failed: {outcome.error}")
            results.append(outcome.result)
        return SweepResult(
            cells=results,
            wall_time_s=time.monotonic() - start,
            store_statistics=self.store.statistics if self.store is not None else None,
        )


def run_sweep(
    scenario_names: Sequence[str],
    n_seeds: int,
    base_seed: int = 0,
    n_gpts: int = 2000,
    workers: int = 0,
    cache_dir: Optional[str] = None,
    experiment_ids: Optional[Sequence[str]] = None,
    shards: int = 0,
    shard_workers: int = 0,
    backend: Union[str, ExecutionBackend, None] = None,
) -> SweepResult:
    """Convenience wrapper: expand a grid, build the store, run the sweep."""
    cells = expand_grid(scenario_names, n_seeds, base_seed=base_seed, n_gpts=n_gpts)
    store = ArtifactStore(cache_dir) if cache_dir is not None else None
    with SweepRunner(
        cells,
        store=store,
        workers=workers,
        experiment_ids=experiment_ids,
        shards=shards,
        shard_workers=shard_workers,
        backend=backend,
    ) as runner:
        return runner.run()
