"""Persistence of crawl corpora (the paper releases both code and data).

The paper's artifact includes the crawled GPT manifests, Action
specifications, and privacy policies.  This module serializes a
:class:`~repro.crawler.corpus.CrawlCorpus` (and optionally a classification
result) to a directory of JSON files and loads it back, so measurement runs
can be archived, shared, and re-analyzed without re-running the crawl.

Layout::

    <directory>/
      corpus.json            # GPT manifest records + store statistics
      policies.json          # fetched privacy policies keyed by URL
      classification.json    # optional: per-parameter (category, type) labels

It also persists *crawl checkpoints* (:class:`CrawlCheckpoint`): per-stage
maps of completed task keys to result payloads, flushed incrementally while a
crawl runs so an interrupted run resumes without refetching.  Checkpoint
layout::

    <checkpoint-directory>/
      checkpoint_meta.json   # fingerprint of the crawl configuration
      stage_listing.jsonl    # store name → listing crawl payload
      stage_resolve.jsonl    # GPT identifier → manifest payload
      stage_policies.jsonl   # policy URL → fetch payload

Stage files are append-only JSONL (one ``{"key": …, "payload": …}`` record
per line), so each periodic flush writes only the records completed since
the previous flush — O(1) amortized per task, not a rewrite of the whole
stage.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.classification.results import ClassificationResult, DescriptionLabel
from repro.crawler.corpus import CrawlCorpus, CrawledAction, CrawledGPT
from repro.crawler.policy_fetcher import PolicyFetchResult

_CORPUS_FILE = "corpus.json"
_POLICIES_FILE = "policies.json"
_CLASSIFICATION_FILE = "classification.json"


def _gpt_to_dict(gpt: CrawledGPT) -> Dict[str, object]:
    return {
        "gpt_id": gpt.gpt_id,
        "name": gpt.name,
        "description": gpt.description,
        "author_name": gpt.author_name,
        "author_website": gpt.author_website,
        "vendor_domain": gpt.vendor_domain,
        "tags": gpt.tags,
        "tool_types": gpt.tool_types,
        "n_files": gpt.n_files,
        "source_stores": gpt.source_stores,
        "actions": [
            {
                "action_id": action.action_id,
                "title": action.title,
                "description": action.description,
                "server_url": action.server_url,
                "legal_info_url": action.legal_info_url,
                "functionality": action.functionality,
                "auth_type": action.auth_type,
                "parameters": [list(parameter) for parameter in action.parameters],
            }
            for action in gpt.actions
        ],
    }


def _gpt_from_dict(payload: Dict[str, object]) -> CrawledGPT:
    actions = [
        CrawledAction(
            action_id=str(entry["action_id"]),
            title=str(entry.get("title", "")),
            description=str(entry.get("description", "")),
            server_url=str(entry.get("server_url", "")),
            legal_info_url=entry.get("legal_info_url"),
            functionality=str(entry.get("functionality", "")),
            auth_type=str(entry.get("auth_type", "none")),
            parameters=[tuple(parameter) for parameter in entry.get("parameters", [])],
        )
        for entry in payload.get("actions", [])
    ]
    return CrawledGPT(
        gpt_id=str(payload["gpt_id"]),
        name=str(payload.get("name", "")),
        description=str(payload.get("description", "")),
        author_name=str(payload.get("author_name", "")),
        author_website=payload.get("author_website"),
        vendor_domain=payload.get("vendor_domain"),
        tags=list(payload.get("tags", [])),
        tool_types=list(payload.get("tool_types", [])),
        actions=actions,
        n_files=int(payload.get("n_files", 0)),
        source_stores=list(payload.get("source_stores", [])),
    )


def corpus_to_payload(corpus: CrawlCorpus) -> Dict[str, object]:
    """The JSON payload of ``corpus.json``.

    Also serves as a canonical fingerprint: two corpora produced by
    equivalent crawls (e.g. a resumed run versus an uninterrupted one)
    serialize to equal payloads.
    """
    return {
        "gpts": [_gpt_to_dict(gpt) for gpt in corpus.iter_gpts()],
        "store_counts": corpus.store_counts,
        "store_link_counts": corpus.store_link_counts,
        "unresolved_gpt_ids": corpus.unresolved_gpt_ids,
    }


def policies_to_payload(corpus: CrawlCorpus) -> Dict[str, object]:
    """The JSON payload of ``policies.json``."""
    return {
        url: {"status": result.status, "text": result.text, "error": result.error}
        for url, result in corpus.policies.items()
    }


def save_corpus(
    corpus: CrawlCorpus,
    directory: Union[str, Path],
    classification: Optional[ClassificationResult] = None,
) -> Path:
    """Write a corpus (and optional classification) to ``directory``."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)

    (target / _CORPUS_FILE).write_text(
        json.dumps(corpus_to_payload(corpus), indent=2, ensure_ascii=False),
        encoding="utf-8",
    )

    policies_payload = policies_to_payload(corpus)
    (target / _POLICIES_FILE).write_text(
        json.dumps(policies_payload, indent=2, ensure_ascii=False), encoding="utf-8"
    )

    if classification is not None:
        labels_payload = [
            {
                "action_id": label.action_id,
                "parameter_name": label.parameter_name,
                "text": label.text,
                "category": label.category,
                "data_type": label.data_type,
            }
            for label in classification.labels
        ]
        (target / _CLASSIFICATION_FILE).write_text(
            json.dumps(labels_payload, indent=2, ensure_ascii=False), encoding="utf-8"
        )
    return target


def load_corpus(directory: Union[str, Path]) -> CrawlCorpus:
    """Load a corpus previously written by :func:`save_corpus`."""
    source = Path(directory)
    corpus_payload = json.loads((source / _CORPUS_FILE).read_text(encoding="utf-8"))
    corpus = CrawlCorpus()
    for gpt_payload in corpus_payload.get("gpts", []):
        gpt = _gpt_from_dict(gpt_payload)
        corpus.gpts[gpt.gpt_id] = gpt
    corpus.store_counts = dict(corpus_payload.get("store_counts", {}))
    corpus.store_link_counts = dict(corpus_payload.get("store_link_counts", {}))
    corpus.unresolved_gpt_ids = list(corpus_payload.get("unresolved_gpt_ids", []))

    policies_path = source / _POLICIES_FILE
    if policies_path.exists():
        for url, entry in json.loads(policies_path.read_text(encoding="utf-8")).items():
            corpus.policies[url] = PolicyFetchResult(
                url=url,
                status=int(entry.get("status", 0)),
                text=entry.get("text"),
                error=entry.get("error"),
            )
    return corpus


class CrawlCheckpoint:
    """Incremental, resumable progress storage for one crawl run.

    Each pipeline stage gets an append-only ``stage_<name>.jsonl`` file of
    completed task records.  Records are buffered in memory and appended at
    each :meth:`flush` — only the records completed since the previous flush
    are written, so checkpoint I/O stays O(1) amortized per task no matter
    how large the crawl grows.  A run killed mid-append can leave at most
    one truncated trailing line, which :meth:`load_stage` skips; the
    corresponding task is simply refetched on resume, which is safe because
    the simulated network is deterministic per URL.

    ``checkpoint_meta.json`` stores a fingerprint of the crawl configuration
    (written by the pipeline) so a resume against a checkpoint from a
    different crawl is refused instead of silently merging stale results.
    """

    _META_FILE = "checkpoint_meta.json"

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._stages: Dict[str, Dict[str, object]] = {}
        self._unflushed: Dict[str, List[str]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _stage_path(self, stage: str) -> Path:
        return self.directory / f"stage_{stage}.jsonl"

    def _load_locked(self, stage: str) -> Dict[str, object]:
        if stage not in self._stages:
            records: Dict[str, object] = {}
            path = self._stage_path(stage)
            if path.exists():
                for line in path.read_text(encoding="utf-8").splitlines():
                    if not line.strip():
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        # Truncated trailing line from a mid-append kill;
                        # the record's task will be refetched.
                        continue
                    records[str(entry["key"])] = entry["payload"]
            self._stages[stage] = records
            self._unflushed.setdefault(stage, [])
        return self._stages[stage]

    def load_stage(self, stage: str) -> Dict[str, object]:
        """Completed key → payload map for a stage (empty if none saved)."""
        with self._lock:
            return dict(self._load_locked(stage))

    def record(self, stage: str, key: str, payload: object) -> None:
        """Buffer one completed task's payload (call :meth:`flush` to persist)."""
        line = json.dumps({"key": key, "payload": payload})
        with self._lock:
            self._load_locked(stage)[key] = payload
            self._unflushed.setdefault(stage, []).append(line)

    def pending(self, stage: str) -> int:
        """Number of records held for a stage (flushed or not)."""
        with self._lock:
            return len(self._stages.get(stage, {}))

    def flush(self, stage: Optional[str] = None) -> None:
        """Append records buffered since the last flush (one stage or all)."""
        with self._lock:
            stages = [stage] if stage is not None else [
                name for name, lines in self._unflushed.items() if lines
            ]
            for name in stages:
                lines = self._unflushed.get(name)
                if not lines:
                    continue
                with self._stage_path(name).open("a", encoding="utf-8") as handle:
                    handle.write("\n".join(lines) + "\n")
                self._unflushed[name] = []

    # ------------------------------------------------------------------
    def load_meta(self) -> Optional[Dict[str, object]]:
        """The crawl-configuration fingerprint, if one was written."""
        path = self.directory / self._META_FILE
        if not path.exists():
            return None
        return json.loads(path.read_text(encoding="utf-8"))

    def write_meta(self, meta: Dict[str, object]) -> None:
        """Persist the crawl-configuration fingerprint."""
        path = self.directory / self._META_FILE
        temp = path.with_suffix(".json.tmp")
        temp.write_text(json.dumps(meta, sort_keys=True), encoding="utf-8")
        os.replace(temp, path)

    def clear(self) -> None:
        """Drop all checkpoint state (start the next crawl from scratch)."""
        with self._lock:
            self._stages.clear()
            self._unflushed.clear()
            for pattern in ("stage_*.jsonl", "*.json.tmp"):
                for path in self.directory.glob(pattern):
                    path.unlink()
            meta = self.directory / self._META_FILE
            if meta.exists():
                meta.unlink()


def load_classification(directory: Union[str, Path]) -> Optional[ClassificationResult]:
    """Load the classification labels stored alongside a corpus (if any)."""
    path = Path(directory) / _CLASSIFICATION_FILE
    if not path.exists():
        return None
    result = ClassificationResult()
    for entry in json.loads(path.read_text(encoding="utf-8")):
        result.add(
            DescriptionLabel(
                action_id=str(entry["action_id"]),
                parameter_name=str(entry["parameter_name"]),
                text=str(entry.get("text", "")),
                category=str(entry["category"]),
                data_type=str(entry["data_type"]),
            )
        )
    return result
