"""Content-addressed artifact store for experiment pipelines.

Large measurement artifacts treat every pipeline product — a crawled corpus,
a classification, an aggregated table — as a *cached, resumable artifact*:
re-running an experiment recomputes only what its configuration no longer
covers.  This module provides the storage layer the sweep engine
(:mod:`repro.experiments.sweep`) builds on:

* :func:`config_fingerprint` — a stable SHA-256 hex digest of any
  JSON-serializable configuration payload (canonical key order, no
  whitespace), extending the fingerprint idea of
  :class:`~repro.io.checkpoint.CrawlCheckpoint` from "refuse a mismatched
  resume" to "address every artifact by the exact configuration that
  produced it";
* :class:`ArtifactStore` — an on-disk key → JSON payload cache laid out as
  ``<root>/<kind>/<fp[:2]>/<fp>.json``.  Writes are atomic
  (temp file + ``os.replace``), reads treat unparseable files as misses
  (a killed writer can never poison the cache), and hit/miss/write counters
  make cache behaviour observable and testable.

Because keys are derived from configuration fingerprints, differently
configured runs can share one store without any invalidation protocol:
a changed configuration simply addresses different files.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Union


def canonical_json(payload: object) -> str:
    """Serialize a payload to canonical JSON (sorted keys, no whitespace).

    Two structurally equal payloads always serialize to the same string, so
    the string is a stable basis for fingerprinting.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False)


def config_fingerprint(payload: object) -> str:
    """SHA-256 hex digest of a JSON-serializable configuration payload."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass
class ArtifactStoreStatistics:
    """Hit/miss/write counters for one :class:`ArtifactStore`."""

    n_hits: int = 0
    n_misses: int = 0
    n_writes: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that were served from the store."""
        total = self.n_hits + self.n_misses
        return self.n_hits / total if total else 0.0


@dataclass(frozen=True)
class ArtifactRecord:
    """Metadata for one stored artifact."""

    kind: str
    fingerprint: str
    path: Path


class ArtifactStore:
    """An on-disk, content-addressed cache of JSON artifacts.

    Artifacts are grouped by ``kind`` (e.g. ``"corpus"``,
    ``"classification"``, ``"results"``) and addressed by the fingerprint of
    the configuration that produced them.  The store is safe to share
    between the threads of a worker pool: statistics updates are locked and
    writes land atomically, so concurrent producers of the *same* artifact
    simply race to an identical file.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.statistics = ArtifactStoreStatistics()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def path_for(self, kind: str, fingerprint: str) -> Path:
        """Where an artifact of ``kind`` with ``fingerprint`` lives on disk."""
        return self.root / kind / fingerprint[:2] / f"{fingerprint}.json"

    def has(self, kind: str, fingerprint: str) -> bool:
        """Whether an artifact exists (does not touch the counters)."""
        return self.path_for(kind, fingerprint).exists()

    def get(self, kind: str, fingerprint: str) -> Optional[object]:
        """The stored payload, or ``None`` on a miss.

        A file that fails to parse (e.g. a partial write from a process
        killed before the atomic replace, or manual tampering) counts as a
        miss and is removed so the slot can be rewritten cleanly.
        """
        path = self.path_for(kind, fingerprint)
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
            payload = envelope["payload"]
        except (OSError, ValueError, KeyError, TypeError):
            if path.exists():
                path.unlink(missing_ok=True)
            with self._lock:
                self.statistics.n_misses += 1
            return None
        with self._lock:
            self.statistics.n_hits += 1
        return payload

    def put(self, kind: str, fingerprint: str, payload: object) -> Path:
        """Atomically persist a payload; returns the artifact path."""
        path = self.path_for(kind, fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {"kind": kind, "fingerprint": fingerprint, "payload": payload}
        temp = path.with_name(f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        temp.write_text(canonical_json(envelope), encoding="utf-8")
        os.replace(temp, path)
        with self._lock:
            self.statistics.n_writes += 1
        return path

    # ------------------------------------------------------------------
    def iter_records(self, kind: Optional[str] = None) -> Iterator[ArtifactRecord]:
        """All stored artifacts (optionally restricted to one kind)."""
        kinds: List[Path]
        if kind is not None:
            kinds = [self.root / kind]
        else:
            kinds = sorted(child for child in self.root.iterdir() if child.is_dir())
        for kind_dir in kinds:
            if not kind_dir.is_dir():
                continue
            for path in sorted(kind_dir.glob("*/*.json")):
                yield ArtifactRecord(kind=kind_dir.name, fingerprint=path.stem, path=path)

    def count(self, kind: Optional[str] = None) -> int:
        """Number of stored artifacts (optionally restricted to one kind)."""
        return sum(1 for _ in self.iter_records(kind))

    def clear(self, kind: Optional[str] = None) -> int:
        """Delete stored artifacts; returns how many were removed."""
        removed = 0
        for record in list(self.iter_records(kind)):
            record.path.unlink(missing_ok=True)
            removed += 1
        return removed
