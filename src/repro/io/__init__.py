"""Persistence layer: corpora, crawl checkpoints, and cached artifacts.

``repro.io`` groups three storage concerns behind one import surface:

* :mod:`repro.io.corpus` — dataset serialization of crawl corpora and
  classification results (the paper releases both code and data);
* :mod:`repro.io.checkpoint` — incremental, resumable crawl checkpoints
  (:class:`CrawlCheckpoint`);
* :mod:`repro.io.artifacts` — the content-addressed
  :class:`ArtifactStore` keyed by :func:`config_fingerprint`, which the
  sweep engine uses to skip recomputing unchanged experiment cells.
"""

from repro.io.artifacts import (
    ArtifactRecord,
    ArtifactStore,
    ArtifactStoreStatistics,
    canonical_json,
    config_fingerprint,
)
from repro.io.checkpoint import CrawlCheckpoint
from repro.io.corpus import (
    classification_from_payload,
    classification_to_payload,
    corpus_from_payload,
    corpus_to_payload,
    load_classification,
    load_corpus,
    policies_to_payload,
    save_corpus,
)

__all__ = [
    "ArtifactRecord",
    "ArtifactStore",
    "ArtifactStoreStatistics",
    "CrawlCheckpoint",
    "canonical_json",
    "classification_from_payload",
    "classification_to_payload",
    "config_fingerprint",
    "corpus_from_payload",
    "corpus_to_payload",
    "load_classification",
    "load_corpus",
    "policies_to_payload",
    "save_corpus",
]
