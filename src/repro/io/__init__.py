"""Persistence layer: corpora, shards, crawl checkpoints, and cached artifacts.

``repro.io`` groups four storage concerns behind one import surface.  They
form a hierarchy — **corpus → shards → artifacts** — that is now true
**end-to-end**: the shard layout is the native dataflow from the crawl
frontier all the way to the rendered report, and the whole-corpus layout is
the compatibility serialization.  Each layer answers a different question:

* :mod:`repro.io.corpus` — *"archive one dataset."*  Whole-corpus JSON
  serialization of crawl corpora and classification results (the paper
  releases both code and data).  Use it to export, share, and reload a
  single measurement run that fits in memory.
* :mod:`repro.io.shards` — *"stream a dataset that doesn't fit."*
  :class:`ShardedCorpusStore` hash-partitions GPT and policy records into N
  JSONL shards with atomic per-shard writes, a fingerprinted manifest, and
  iterator-based reads.  Records reach it two ways, which publish
  **byte-identical** stores: sharding an in-memory corpus
  (:meth:`ShardedCorpusStore.write_corpus`), or the shard-partitioned crawl
  (:meth:`repro.crawler.pipeline.CrawlPipeline.run_sharded`), whose
  per-shard sub-pipelines stream resolved GPTs and fetched policies
  straight into a :class:`ShardedCorpusWriter` — the same SHA-256 route
  (:func:`shard_index`) partitions the crawl frontier, the checkpoint
  files, and the stored records, so one shard is a self-consistent slice of
  the whole measurement.  Since manifest **schema 2**, every GPT record
  carries its global *discovery index* (its position in the coordinator's
  listing frontier), so the store can stream — or rebuild — the corpus in
  the exact order the unsharded crawl discovers it; schema-1 stores stay
  readable and fall back to shard-major order.  Every consumer that should
  hold one record (or one shard) at a time reads this format: the streaming
  analysis engine (:mod:`repro.analysis.streaming` — including the
  policy-record analyses, which never materialize the policy report, and
  the shard-partitioned classification pass), and the 100k-scale generation
  path.
* :mod:`repro.io.checkpoint` — *"survive a kill."*  Incremental, resumable,
  optionally shard-partitioned crawl checkpoints
  (:class:`CrawlCheckpoint`).  Use it for in-flight progress of one crawl;
  it stores raw task payloads, not analysis-ready records.  A sharded
  crawl's sub-pipelines append to their own checkpoint shard files
  (``stage_resolve.shard00003.jsonl``) — safe under thread *and* process
  parallelism, and resumable across backends and shard layouts.
* :mod:`repro.io.artifacts` — *"never compute the same thing twice."*  The
  content-addressed :class:`ArtifactStore` keyed by
  :func:`config_fingerprint`, which the sweep engine uses to skip
  recomputing unchanged experiment cells.  Shard manifests plug into it via
  :meth:`ShardedCorpusStore.register_in`, so a cached cell can point at a
  sharded corpus by content address instead of embedding it.  Atomic,
  pid-tagged writes make one directory shareable by thread pools and
  process pools alike.

On top of the shard layer sits the **epoch/lineage layer** — *"the store
is a living target."*  Since shard-manifest schema 3 every store records
``(epoch, parent_fingerprint)``: which crawl epoch it captures and the
content address of the store it was derived from.  The delta-aware
incremental crawl
(:meth:`repro.crawler.pipeline.CrawlPipeline.run_incremental`) produces
epoch N+1 by carrying unchanged records forward shard-locally from epoch N
(zero HTTP traffic for the ~95% that did not change) and re-stamping
discovery indices so the store is byte-identical to a cold crawl of the
evolved world (:mod:`repro.ecosystem.evolution`).  Epochs publish into the
artifact layer as *deltas* (:meth:`ShardedCorpusStore.register_delta_in`):
only the shards whose fingerprints changed are named, keyed under
:data:`~repro.io.shards.SHARD_DELTA_ARTIFACT_KIND`, so a longitudinal
series of N epochs costs O(churn), not O(N × corpus).

Rule of thumb: exporting results → ``corpus``; anything at 100k-GPT scale
(crawling included) → ``shards``; mid-crawl durability → ``checkpoint``;
cross-run caching → ``artifacts``.  Execution topology — shard count,
worker count, and the :mod:`repro.exec` backend — never changes stored
bytes, only how fast they are produced.

Consumers that only need *records* should not care which layout they are
reading.  :class:`CorpusSource` is that seam: the structural protocol
implemented by both :class:`~repro.crawler.corpus.CrawlCorpus` (in memory,
one logical shard) and :class:`ShardedCorpusStore` (on disk, N shards),
giving analyses and the experiment sweep one API — discovery-order
streaming (``iter_records``), per-shard streaming (``iter_shard``), record
counts, and a content fingerprint — instead of branching on sharded-ness.
"""

from typing import Iterator, Protocol, runtime_checkable

from repro.crawler.corpus import CrawledGPT


@runtime_checkable
class CorpusSource(Protocol):
    """One read API over a crawled corpus, in memory or sharded on disk.

    The protocol is deliberately record-oriented: it exposes exactly what
    order-sensitive consumers (seeded description sampling, classification
    batching) and shard-parallel consumers (the streaming analysis engine)
    need, and nothing that would force materializing the whole corpus.
    Implementations: :class:`~repro.crawler.corpus.CrawlCorpus` and
    :class:`~repro.io.shards.ShardedCorpusStore`.
    """

    def iter_records(self) -> Iterator[CrawledGPT]:
        """Stream every GPT record in global discovery order."""
        ...

    def iter_shard(self, index: int) -> Iterator[CrawledGPT]:
        """Stream the GPT records of one shard."""
        ...

    @property
    def n_shards(self) -> int:
        """Number of shards (1 for an in-memory corpus)."""
        ...

    @property
    def n_records(self) -> int:
        """Total number of GPT records."""
        ...

    def fingerprint(self) -> str:
        """Content address of the source's records and metadata."""
        ...

    def summary(self) -> str:
        """One-line human-readable summary."""
        ...

from repro.io.artifacts import (
    ArtifactRecord,
    ArtifactStore,
    ArtifactStoreStatistics,
    canonical_json,
    config_fingerprint,
)
from repro.io.checkpoint import CrawlCheckpoint
from repro.io.corpus import (
    classification_from_payload,
    classification_to_payload,
    corpus_from_payload,
    corpus_to_payload,
    gpt_from_payload,
    gpt_to_payload,
    load_classification,
    load_corpus,
    policies_to_payload,
    policy_from_payload,
    policy_to_payload,
    save_corpus,
)
from repro.io.shards import (
    SHARD_ARTIFACT_KIND,
    SHARD_DELTA_ARTIFACT_KIND,
    ShardedCorpusStore,
    ShardedCorpusWriter,
    ShardInfo,
    ShardManifest,
    shard_index,
)

__all__ = [
    "ArtifactRecord",
    "ArtifactStore",
    "ArtifactStoreStatistics",
    "CorpusSource",
    "CrawlCheckpoint",
    "SHARD_ARTIFACT_KIND",
    "SHARD_DELTA_ARTIFACT_KIND",
    "ShardInfo",
    "ShardManifest",
    "ShardedCorpusStore",
    "ShardedCorpusWriter",
    "canonical_json",
    "classification_from_payload",
    "classification_to_payload",
    "config_fingerprint",
    "corpus_from_payload",
    "corpus_to_payload",
    "gpt_from_payload",
    "gpt_to_payload",
    "load_classification",
    "load_corpus",
    "policies_to_payload",
    "policy_from_payload",
    "policy_to_payload",
    "save_corpus",
    "shard_index",
]
