"""Incremental, resumable, shard-aware crawl checkpoints.

:class:`CrawlCheckpoint` persists per-stage maps of completed task keys to
result payloads, flushed incrementally while a crawl runs so an interrupted
run resumes without refetching.  Checkpoint layout::

    <checkpoint-directory>/
      checkpoint_meta.json        # fingerprint of the crawl configuration
      stage_listing.jsonl         # store name → listing crawl payload
      stage_resolve.jsonl         # GPT identifier → manifest payload
      stage_policies.jsonl        # policy URL → fetch payload

With ``n_shards > 1`` each stage is partitioned into hash-routed shard
files (``stage_resolve.shard00003.jsonl``), mirroring the sharded corpus
store (:mod:`repro.io.shards`): records are routed by
:func:`repro.io.shards.shard_index` of their key, so a flush rewrites only
the shards that actually received records since the previous flush, and a
large checkpoint can later be ingested shard-by-shard without parsing one
monolithic file.

Stage files are append-only JSONL (one ``{"key": …, "payload": …}`` record
per line), so each periodic flush writes only the records completed since
the previous flush — O(1) amortized per task, not a rewrite of the whole
stage.  Loading a stage merges every layout present on disk, so a crawl can
be resumed with a different shard count than the one that wrote it.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union


class CrawlCheckpoint:
    """Incremental, resumable progress storage for one crawl run.

    Each pipeline stage gets append-only ``stage_<name>*.jsonl`` files of
    completed task records (one file per shard when ``n_shards > 1``).
    Records are buffered in memory and appended at each :meth:`flush` —
    only the records completed since the previous flush are written, and
    only the shards that received records are touched, so checkpoint I/O
    stays O(1) amortized per task no matter how large the crawl grows.  A
    run killed mid-append can leave at most one truncated trailing line per
    shard, which :meth:`load_stage` skips; the corresponding task is simply
    refetched on resume, which is safe because the simulated network is
    deterministic per URL.

    ``checkpoint_meta.json`` stores a fingerprint of the crawl configuration
    (written by the pipeline) so a resume against a checkpoint from a
    different crawl is refused instead of silently merging stale results.
    """

    _META_FILE = "checkpoint_meta.json"
    #: Records the shard layout every on-disk record was written under
    #: (``{"n_shards": N}``, or ``null`` once layouts are mixed), so
    #: :meth:`load_stage_for_shard` knows when skipping other shards' files
    #: without parsing them is safe.
    _LAYOUT_FILE = "checkpoint_layout.json"

    def __init__(self, directory: Union[str, Path], n_shards: int = 1) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.n_shards = n_shards
        self._stages: Dict[str, Dict[str, object]] = {}
        #: stage → shard index → lines not yet appended to disk.
        self._unflushed: Dict[str, Dict[int, List[str]]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _shard_for(self, key: str) -> int:
        if self.n_shards <= 1:
            return 0
        from repro.io.shards import shard_index

        return shard_index(key, self.n_shards)

    def _stage_path(self, stage: str, shard: int = 0) -> Path:
        if self.n_shards <= 1:
            return self.directory / f"stage_{stage}.jsonl"
        return self.directory / f"stage_{stage}.shard{shard:05d}.jsonl"

    def _stage_files(self, stage: str) -> List[Path]:
        """Every on-disk file holding records for a stage (any layout)."""
        return sorted(self.directory.glob(f"stage_{stage}*.jsonl"))

    def _load_locked(self, stage: str) -> Dict[str, object]:
        if stage not in self._stages:
            records: Dict[str, object] = {}
            for path in self._stage_files(stage):
                for line in path.read_text(encoding="utf-8").splitlines():
                    if not line.strip():
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        # Truncated trailing line from a mid-append kill;
                        # the record's task will be refetched.
                        continue
                    records[str(entry["key"])] = entry["payload"]
            self._stages[stage] = records
            self._unflushed.setdefault(stage, {})
        return self._stages[stage]

    def load_stage(self, stage: str) -> Dict[str, object]:
        """Completed key → payload map for a stage (empty if none saved)."""
        with self._lock:
            return dict(self._load_locked(stage))

    # ------------------------------------------------------------------
    # Shard-sliced access (bounded memory for partitioned crawls)
    # ------------------------------------------------------------------
    def _stored_layout(self) -> Optional[int]:
        """The ``n_shards`` every stored record was written under, if known.

        ``None`` means unknown or mixed layouts — per-shard loads must then
        stream-filter every file instead of trusting file names.
        """
        path = self.directory / self._LAYOUT_FILE
        if not path.exists():
            return None
        try:
            value = json.loads(path.read_text(encoding="utf-8")).get("n_shards")
        except ValueError:
            return None
        return int(value) if value else None

    def _write_layout(self) -> None:
        """Maintain the layout marker: this writer's layout, or mixed."""
        path = self.directory / self._LAYOUT_FILE
        stored = self._stored_layout()
        had_records = any(self._stage_files_all())
        if stored == self.n_shards and path.exists():
            return
        # Appending under a different layout than existing records (or
        # recording into a directory with unmarked records) mixes layouts.
        value = None if had_records and stored != self.n_shards else self.n_shards
        # Unique temp name: a partitioned crawl's shard sub-pipelines each
        # hold their own CrawlCheckpoint over this directory, and their
        # first flushes can race — last atomic replace wins (they all carry
        # the same layout, so the race is benign).
        temp = path.with_name(
            f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        temp.write_text(json.dumps({"n_shards": value}), encoding="utf-8")
        os.replace(temp, path)

    def ensure_layout(self) -> None:
        """Publish the layout marker now (idempotent).

        The partitioned crawl's coordinator calls this before fanning out,
        so every concurrent shard sub-pipeline already sees a settled
        marker — no flush-time races, and no spurious downgrade to the
        mixed-layout slow path when one shard's file lands before another
        shard reads the marker.
        """
        with self._lock:
            self._write_layout()

    def _stage_files_all(self) -> List[Path]:
        return sorted(self.directory.glob("stage_*.jsonl"))

    def load_stage_for_shard(self, stage: str, shard: int) -> Dict[str, object]:
        """Completed key → payload map for **one shard** of a stage.

        Memory is bounded by that shard's records, never the whole stage —
        the per-shard sub-pipelines of a partitioned crawl resume through
        this.  When the layout marker proves every stored record was
        written under this checkpoint's own shard count, only the shard's
        file is read; otherwise (flat or mixed layouts on disk) every stage
        file is *streamed* and filtered by the key's current-route shard,
        so cross-layout resumes stay correct at the cost of extra parsing.
        """
        with self._lock:
            if self.n_shards > 1 and self._stored_layout() == self.n_shards:
                paths = [self._stage_path(stage, shard)]
            else:
                paths = self._stage_files(stage)
            records: Dict[str, object] = {}
            for path in paths:
                if not path.exists():
                    continue
                with path.open("r", encoding="utf-8") as handle:
                    for line in handle:
                        if not line.strip():
                            continue
                        try:
                            entry = json.loads(line)
                        except ValueError:
                            # Truncated trailing line from a mid-append
                            # kill; the record's task will be refetched.
                            continue
                        key = str(entry["key"])
                        if self._shard_for(key) == shard:
                            records[key] = entry["payload"]
            return records

    def append(self, stage: str, key: str, payload: object) -> None:
        """Buffer one record for flushing **without** loading the stage.

        The memory-bounded sibling of :meth:`record` for per-shard
        sub-pipelines: it never materializes the stage's existing records,
        so a resumed shard task holds only what it appends.  (:meth:`record`
        additionally mirrors the stage in memory for :meth:`load_stage` /
        :meth:`pending` consumers.)
        """
        line = json.dumps({"key": key, "payload": payload})
        with self._lock:
            stage_cache = self._stages.get(stage)
            if stage_cache is not None:
                stage_cache[key] = payload
            shards = self._unflushed.setdefault(stage, {})
            shards.setdefault(self._shard_for(key), []).append(line)

    def record(self, stage: str, key: str, payload: object) -> None:
        """Buffer one completed task's payload (call :meth:`flush` to persist)."""
        line = json.dumps({"key": key, "payload": payload})
        with self._lock:
            self._load_locked(stage)[key] = payload
            shards = self._unflushed.setdefault(stage, {})
            shards.setdefault(self._shard_for(key), []).append(line)

    def pending(self, stage: str) -> int:
        """Number of records held for a stage (flushed or not)."""
        with self._lock:
            return len(self._stages.get(stage, {}))

    def flush(self, stage: Optional[str] = None) -> None:
        """Append records buffered since the last flush (one stage or all).

        Only the shard files that actually received records are opened.
        """
        with self._lock:
            stages = [stage] if stage is not None else [
                name for name, shards in self._unflushed.items()
                if any(shards.values())
            ]
            wrote = False
            for name in stages:
                shards = self._unflushed.get(name, {})
                for shard, lines in sorted(shards.items()):
                    if not lines:
                        continue
                    if not wrote:
                        # Mark the layout before the first record lands so
                        # per-shard loads know what the files contain.
                        self._write_layout()
                        wrote = True
                    with self._stage_path(name, shard).open("a", encoding="utf-8") as handle:
                        handle.write("\n".join(lines) + "\n")
                    shards[shard] = []

    # ------------------------------------------------------------------
    def load_meta(self) -> Optional[Dict[str, object]]:
        """The crawl-configuration fingerprint, if one was written."""
        path = self.directory / self._META_FILE
        if not path.exists():
            return None
        return json.loads(path.read_text(encoding="utf-8"))

    def write_meta(self, meta: Dict[str, object]) -> None:
        """Persist the crawl-configuration fingerprint."""
        path = self.directory / self._META_FILE
        temp = path.with_suffix(".json.tmp")
        temp.write_text(json.dumps(meta, sort_keys=True), encoding="utf-8")
        os.replace(temp, path)

    def clear(self) -> None:
        """Drop all checkpoint state (start the next crawl from scratch)."""
        with self._lock:
            self._stages.clear()
            self._unflushed.clear()
            for pattern in ("stage_*.jsonl", "*.json.tmp"):
                for path in self.directory.glob(pattern):
                    path.unlink()
            for name in (self._META_FILE, self._LAYOUT_FILE):
                path = self.directory / name
                if path.exists():
                    path.unlink()
