"""Sharded, memory-bounded corpus storage.

A single ``corpus.json`` works at the paper's scale (a few thousand GPTs)
but a 100k-GPT ecosystem cannot be loaded — let alone analyzed — as one
in-memory object.  :class:`ShardedCorpusStore` is the data layer the
streaming analysis engine (:mod:`repro.analysis.streaming`) and the lazy
ecosystem generator build on:

* GPT records and policy fetch results are **hash-sharded** into ``N``
  JSONL shard files (:func:`shard_index` — a stable SHA-256 route, so the
  same key always lands in the same shard at a given shard count);
* writes are **atomic per shard**: a writer appends to ``*.part`` files and
  promotes every shard with ``os.replace`` at :meth:`ShardedCorpusWriter.close`,
  so a killed ingest never leaves a half-visible store;
* reads are **iterator-based** (:meth:`ShardedCorpusStore.iter_shard_gpts`)
  — a consumer holds one record at a time, never the whole corpus;
* every shard carries a **content fingerprint** (SHA-256 of its bytes) in
  ``manifest.json``; :meth:`ShardedCorpusStore.fingerprint` combines them
  into a content address that plugs straight into the PR-3
  :class:`~repro.io.artifacts.ArtifactStore`
  (:meth:`ShardedCorpusStore.register_in`).

Layout::

    <root>/
      manifest.json        # schema, shard count, per-shard fingerprints, corpus metadata
      gpts-00000.jsonl     # one GPT record per line (see repro.io.corpus.gpt_to_payload)
      policies-00000.jsonl # one policy fetch record per line

The store is a *serialization* of a :class:`~repro.crawler.corpus.CrawlCorpus`.
Since schema 2, every GPT record carries its **global discovery index** — the
record's position in the crawl coordinator's identifier listing order (the
same order an unsharded crawl merges records into the corpus; unresolved
identifiers consume an index, so indices may have holes).  Both write paths
stamp identical indices, which makes two things possible:

* :meth:`ShardedCorpusStore.iter_records` streams the whole store in exact
  discovery order with O(n_shards) memory (each shard file is written
  index-ascending, so a k-way heap merge suffices — no sort);
* :meth:`ShardedCorpusStore.load_corpus` rebuilds a corpus whose record
  order is byte-identical to the unsharded crawl, so order-sensitive
  consumers (seeded description sampling, classification batching) no
  longer need a second, unsharded crawl.

Policy records carry no index: the crawl fetches policies in sorted-URL
order, so the discovery order of policies is reconstructed by sorting.
Schema-1 stores (no per-record index) remain readable; their iteration
order falls back to shard-major, exactly as before the schema bump.

Since schema 3 the manifest additionally records **epoch lineage** —
``(epoch, parent_fingerprint)`` — so a store produced by the incremental
crawl (:meth:`repro.crawler.pipeline.CrawlPipeline.run_incremental`)
names exactly which prior store it was derived from, and
:meth:`ShardedCorpusStore.register_delta_in` publishes the epoch as a
*delta* over its parent in the :class:`~repro.io.artifacts.ArtifactStore`
(only the shards whose fingerprints changed).  Lineage fields are emitted
only at schema >= 3, so schema-1/2 manifests — and therefore their
content fingerprints — are unchanged.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.crawler.corpus import CrawlCorpus, CrawledAction, CrawledGPT
from repro.crawler.policy_fetcher import PolicyFetchResult
from repro.io.artifacts import ArtifactStore, canonical_json, config_fingerprint
from repro.io.corpus import gpt_to_payload, policy_from_payload, policy_to_payload

#: Bump when the shard file layout changes; readers refuse newer schemas.
#: Schema history: 1 = hash-sharded JSONL records; 2 = every GPT record
#: additionally carries its global ``discovery_index``; 3 = the manifest
#: carries epoch lineage (``epoch``, ``parent_fingerprint``).
SHARD_SCHEMA_VERSION = 3

#: Extra key stamped onto each GPT record payload (schema >= 2).
DISCOVERY_INDEX_KEY = "discovery_index"

_MANIFEST_FILE = "manifest.json"

#: Artifact-store kind under which shard manifests are registered.
SHARD_ARTIFACT_KIND = "corpus-shards"

#: Artifact-store kind under which epoch deltas are registered.
SHARD_DELTA_ARTIFACT_KIND = "corpus-shard-delta"


def shard_index(key: str, n_shards: int) -> int:
    """Deterministic shard route for a record key.

    Uses the first 8 bytes of SHA-256 so the route is stable across Python
    processes and versions (``hash()`` is salted per process and therefore
    unusable for on-disk partitioning).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


def _shard_name(kind: str, index: int) -> str:
    return f"{kind}-{index:05d}.jsonl"


def _gpt_from_trusted_payload(payload: Dict[str, object]) -> CrawledGPT:
    """Rebuild a GPT from a shard record without defensive coercion.

    Shard files are written by this module (full canonical payloads, every
    field present and correctly typed) and are fingerprint-verified, so the
    hot read path skips the ``str()``/``get()`` defenses of the interchange
    parser (:func:`repro.io.corpus.gpt_from_payload`) — roughly halving
    per-record decode cost, which dominates streaming analysis time.
    """
    return CrawledGPT(
        gpt_id=payload["gpt_id"],
        name=payload["name"],
        description=payload["description"],
        author_name=payload["author_name"],
        author_website=payload["author_website"],
        vendor_domain=payload["vendor_domain"],
        tags=payload["tags"],
        tool_types=payload["tool_types"],
        actions=[
            CrawledAction(
                action_id=entry["action_id"],
                title=entry["title"],
                description=entry["description"],
                server_url=entry["server_url"],
                legal_info_url=entry["legal_info_url"],
                functionality=entry["functionality"],
                auth_type=entry["auth_type"],
                parameters=[tuple(parameter) for parameter in entry["parameters"]],
            )
            for entry in payload["actions"]
        ],
        n_files=payload["n_files"],
        source_stores=payload["source_stores"],
    )


@dataclass(frozen=True)
class ShardInfo:
    """Manifest metadata for one shard file."""

    name: str
    n_records: int
    fingerprint: str


@dataclass
class ShardManifest:
    """Everything ``manifest.json`` records about a sharded corpus."""

    n_shards: int
    gpt_shards: List[ShardInfo] = field(default_factory=list)
    policy_shards: List[ShardInfo] = field(default_factory=list)
    #: Corpus-level metadata that is not per-record (Table 1 inputs).
    store_counts: Dict[str, int] = field(default_factory=dict)
    store_link_counts: Dict[str, int] = field(default_factory=dict)
    unresolved_gpt_ids: List[str] = field(default_factory=list)
    schema: int = SHARD_SCHEMA_VERSION
    #: Epoch lineage (schema >= 3): which crawl epoch this store captures
    #: and the content fingerprint of the store it was derived from
    #: (``None`` for a base snapshot with no parent).
    epoch: int = 0
    parent_fingerprint: Optional[str] = None

    @property
    def supports_discovery_order(self) -> bool:
        """Whether GPT records carry a global discovery index (schema >= 2)."""
        return self.schema >= 2

    @property
    def supports_lineage(self) -> bool:
        """Whether the manifest records epoch lineage (schema >= 3)."""
        return self.schema >= 3

    @property
    def n_gpts(self) -> int:
        """Total GPT records across all shards."""
        return sum(info.n_records for info in self.gpt_shards)

    @property
    def n_policies(self) -> int:
        """Total policy records across all shards."""
        return sum(info.n_records for info in self.policy_shards)

    def to_payload(self) -> Dict[str, object]:
        """The JSON payload written to ``manifest.json``.

        Lineage keys are emitted only at schema >= 3, so the payloads (and
        content fingerprints) of schema-1/2 stores are byte-for-byte what
        they were before lineage existed.
        """
        payload: Dict[str, object] = {
            "schema": self.schema,
            "n_shards": self.n_shards,
            "gpt_shards": [
                {"name": info.name, "n_records": info.n_records, "fingerprint": info.fingerprint}
                for info in self.gpt_shards
            ],
            "policy_shards": [
                {"name": info.name, "n_records": info.n_records, "fingerprint": info.fingerprint}
                for info in self.policy_shards
            ],
            # Key-sorted so the manifest bytes (and the store fingerprint)
            # do not depend on record-arrival order: the shard-partitioned
            # crawl accumulates these maps in shard-completion order, the
            # unsharded path in corpus order.
            "store_counts": dict(sorted(self.store_counts.items())),
            "store_link_counts": dict(sorted(self.store_link_counts.items())),
            "unresolved_gpt_ids": self.unresolved_gpt_ids,
        }
        if self.schema >= 3:
            payload["epoch"] = self.epoch
            payload["parent_fingerprint"] = self.parent_fingerprint
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "ShardManifest":
        """Parse a ``manifest.json`` payload."""
        schema = int(payload.get("schema", 0))
        if schema > SHARD_SCHEMA_VERSION:
            raise ValueError(
                f"shard manifest schema {schema} is newer than supported "
                f"({SHARD_SCHEMA_VERSION}); upgrade the reader"
            )

        def infos(key: str) -> List[ShardInfo]:
            return [
                ShardInfo(
                    name=str(entry["name"]),
                    n_records=int(entry["n_records"]),
                    fingerprint=str(entry["fingerprint"]),
                )
                for entry in payload.get(key, [])
            ]

        parent = payload.get("parent_fingerprint")
        return cls(
            n_shards=int(payload["n_shards"]),
            gpt_shards=infos("gpt_shards"),
            policy_shards=infos("policy_shards"),
            store_counts=dict(payload.get("store_counts", {})),
            store_link_counts=dict(payload.get("store_link_counts", {})),
            unresolved_gpt_ids=list(payload.get("unresolved_gpt_ids", [])),
            schema=schema,
            epoch=int(payload.get("epoch", 0)),
            parent_fingerprint=str(parent) if parent is not None else None,
        )


class _ShardFile:
    """One shard file being written: buffered lines + an incremental hash."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.part = path.with_name(path.name + ".part")
        # A killed writer can leave a flushed .part behind; appending to it
        # would publish the dead run's records under fingerprints computed
        # only from the new ones.  Every writer starts its shards empty.
        self.part.unlink(missing_ok=True)
        self.n_records = 0
        self._hash = hashlib.sha256()
        self._buffer: List[str] = []

    def add(self, payload: object) -> None:
        self.add_line(canonical_json(payload))

    def add_line(self, line: str) -> None:
        """Append one pre-serialized canonical-JSON record (no newline)."""
        line = line + "\n"
        self._buffer.append(line)
        self._hash.update(line.encode("utf-8"))
        self.n_records += 1

    def flush(self) -> None:
        if not self._buffer:
            # Touch the part file so every shard exists even when empty.
            self.part.touch()
            return
        with self.part.open("a", encoding="utf-8") as handle:
            handle.write("".join(self._buffer))
        self._buffer = []

    def promote(self) -> ShardInfo:
        """Flush remaining records and atomically publish the shard."""
        self.flush()
        os.replace(self.part, self.path)
        return ShardInfo(
            name=self.path.name, n_records=self.n_records, fingerprint=self._hash.hexdigest()
        )


class ShardedCorpusWriter:
    """Incremental, memory-bounded writer for a sharded corpus.

    Records are routed to shards by key hash, buffered, and appended to
    hidden ``*.part`` files every ``flush_every`` records — so peak memory
    is bounded by the flush interval, not the corpus size.  :meth:`close`
    promotes every ``*.part`` file with an atomic rename and writes the
    manifest last, so a reader either sees a complete store or none at all.
    """

    def __init__(
        self,
        root: Union[str, Path],
        n_shards: int,
        flush_every: int = 1000,
        epoch: int = 0,
        parent_fingerprint: Optional[str] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.n_shards = n_shards
        self.flush_every = max(1, flush_every)
        self.epoch = epoch
        self.parent_fingerprint = parent_fingerprint
        self._gpt_shards = [
            _ShardFile(self.root / _shard_name("gpts", index)) for index in range(n_shards)
        ]
        self._policy_shards = [
            _ShardFile(self.root / _shard_name("policies", index)) for index in range(n_shards)
        ]
        self._since_flush = 0
        self._closed = False
        self._auto_discovery_index = 0
        self.store_counts: Dict[str, int] = {}
        self.store_link_counts: Dict[str, int] = {}
        self.unresolved_gpt_ids: List[str] = []

    # ------------------------------------------------------------------
    def _count(self) -> None:
        self._since_flush += 1
        if self._since_flush >= self.flush_every:
            self.flush()

    def add_gpt(self, gpt: CrawledGPT, discovery_index: Optional[int] = None) -> int:
        """Append one GPT record; returns the shard index it landed in.

        ``discovery_index`` is the record's position in the crawl
        coordinator's global listing order; the sharded crawl passes it
        explicitly.  When omitted (hand-built corpora, the lazy ecosystem
        generator), records are stamped with their submission order —
        which *is* the discovery order on those paths.  Within one shard,
        indices must be added in ascending order; the streaming
        discovery-order merge relies on it.
        """
        if discovery_index is None:
            discovery_index = self._auto_discovery_index
        self._auto_discovery_index = max(self._auto_discovery_index, discovery_index) + 1
        index = shard_index(gpt.gpt_id, self.n_shards)
        payload = gpt_to_payload(gpt)
        payload[DISCOVERY_INDEX_KEY] = discovery_index
        self._gpt_shards[index].add(payload)
        for store in gpt.source_stores:
            self.store_counts[store] = self.store_counts.get(store, 0) + 1
        self._count()
        return index

    def add_gpt_payload(self, payload: Dict[str, object], discovery_index: int) -> int:
        """Append one *already-serialized* GPT record (the carry-forward path).

        The incremental crawl streams unchanged records straight out of the
        parent epoch's shard files as payload dicts; re-stamping the
        discovery index here (and accumulating store counts from the
        payload) skips the payload→:class:`CrawledGPT`→payload round trip.
        Bytes written are identical to :meth:`add_gpt` of the equivalent
        record because :func:`canonical_json` sorts keys.
        """
        payload[DISCOVERY_INDEX_KEY] = discovery_index
        self._auto_discovery_index = max(self._auto_discovery_index, discovery_index) + 1
        index = shard_index(str(payload["gpt_id"]), self.n_shards)
        self._gpt_shards[index].add(payload)
        for store in payload.get("source_stores", []):
            self.store_counts[store] = self.store_counts.get(store, 0) + 1
        self._count()
        return index

    def add_gpt_line(
        self,
        line: str,
        gpt_id: str,
        discovery_index: int,
        source_stores: Sequence[str],
    ) -> int:
        """Append one pre-serialized GPT record line (the fast carry path).

        ``line`` must be the exact canonical-JSON record bytes to publish —
        discovery index and source stores already re-stamped by the caller's
        in-place splice — without a trailing newline.  The writer does only
        the bookkeeping it cannot read from the bytes for free (shard
        routing, the ascending-index watermark, store-count accumulation),
        all from the explicit arguments, so the record is never parsed or
        re-serialized.  This is what makes carrying 95% of a 50k-record
        store an I/O-bound copy instead of a JSON round trip per record.
        """
        self._auto_discovery_index = max(self._auto_discovery_index, discovery_index) + 1
        index = shard_index(gpt_id, self.n_shards)
        self._gpt_shards[index].add_line(line)
        for store in source_stores:
            self.store_counts[store] = self.store_counts.get(store, 0) + 1
        self._count()
        return index

    def add_policy(self, result: PolicyFetchResult) -> int:
        """Append one policy fetch record; returns its shard index."""
        index = shard_index(result.url, self.n_shards)
        self._policy_shards[index].add(policy_to_payload(result))
        self._count()
        return index

    def add_policy_payload(self, url: str, payload: Dict[str, object]) -> int:
        """Append one already-serialized policy record (carry-forward path)."""
        index = shard_index(url, self.n_shards)
        self._policy_shards[index].add(payload)
        self._count()
        return index

    def set_metadata(
        self,
        store_counts: Optional[Mapping[str, int]] = None,
        store_link_counts: Optional[Mapping[str, int]] = None,
        unresolved_gpt_ids: Optional[List[str]] = None,
    ) -> None:
        """Record corpus-level metadata carried by the manifest.

        ``store_counts`` overrides the counts accumulated from GPT records
        (use when the source corpus tracks them independently).
        """
        if store_counts is not None:
            self.store_counts = dict(store_counts)
        if store_link_counts is not None:
            self.store_link_counts = dict(store_link_counts)
        if unresolved_gpt_ids is not None:
            self.unresolved_gpt_ids = list(unresolved_gpt_ids)

    def flush(self) -> None:
        """Append buffered records to the hidden ``*.part`` shard files."""
        for shard in self._gpt_shards:
            shard.flush()
        for shard in self._policy_shards:
            shard.flush()
        self._since_flush = 0

    def close(self) -> "ShardedCorpusStore":
        """Atomically publish every shard, write the manifest, open the store."""
        if self._closed:
            raise RuntimeError("writer is already closed")
        self._closed = True
        manifest = ShardManifest(
            n_shards=self.n_shards,
            gpt_shards=[shard.promote() for shard in self._gpt_shards],
            policy_shards=[shard.promote() for shard in self._policy_shards],
            store_counts=dict(self.store_counts),
            store_link_counts=dict(self.store_link_counts),
            unresolved_gpt_ids=list(self.unresolved_gpt_ids),
            epoch=self.epoch,
            parent_fingerprint=self.parent_fingerprint,
        )
        manifest_path = self.root / _MANIFEST_FILE
        temp = manifest_path.with_suffix(".json.tmp")
        temp.write_text(
            json.dumps(manifest.to_payload(), indent=2, ensure_ascii=False), encoding="utf-8"
        )
        os.replace(temp, manifest_path)
        return ShardedCorpusStore(self.root, manifest=manifest)

    # Context-manager sugar: ``with ShardedCorpusWriter(...) as writer``.
    def __enter__(self) -> "ShardedCorpusWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and not self._closed:
            self.close()


class ShardedCorpusStore:
    """A read view over a sharded corpus directory."""

    def __init__(
        self, root: Union[str, Path], manifest: Optional[ShardManifest] = None
    ) -> None:
        self.root = Path(root)
        if manifest is None:
            path = self.root / _MANIFEST_FILE
            if not path.exists():
                raise FileNotFoundError(f"no shard manifest at {path}")
            manifest = ShardManifest.from_payload(
                json.loads(path.read_text(encoding="utf-8"))
            )
        self.manifest = manifest

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def write_corpus(
        cls,
        corpus: CrawlCorpus,
        root: Union[str, Path],
        n_shards: int,
        flush_every: int = 1000,
        epoch: int = 0,
        parent_fingerprint: Optional[str] = None,
    ) -> "ShardedCorpusStore":
        """Shard an in-memory corpus to ``root`` and return the store.

        When the corpus carries crawl-stamped discovery indices (an
        unsharded pipeline run, or a corpus rebuilt by :meth:`load_corpus`),
        records are stamped with those exact indices so re-sharding is
        byte-identical to the sharded crawl's own store.  Hand-built
        corpora without indices fall back to insertion order.  ``epoch``
        and ``parent_fingerprint`` stamp the manifest's lineage (byte-
        identity tests stamp the cold-crawl oracle with the incremental
        store's lineage this way).
        """
        writer = ShardedCorpusWriter(
            root,
            n_shards,
            flush_every=flush_every,
            epoch=epoch,
            parent_fingerprint=parent_fingerprint,
        )
        carried = corpus.discovery_indices if len(
            corpus.discovery_indices
        ) == len(corpus.gpts) else None
        for position, gpt in enumerate(corpus.iter_gpts()):
            writer.add_gpt(
                gpt,
                discovery_index=position if carried is None else carried[gpt.gpt_id],
            )
        for result in corpus.policies.values():
            writer.add_policy(result)
        writer.set_metadata(
            store_counts=corpus.store_counts,
            store_link_counts=corpus.store_link_counts,
            unresolved_gpt_ids=corpus.unresolved_gpt_ids,
        )
        return writer.close()

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Number of shards in this store."""
        return self.manifest.n_shards

    @property
    def n_gpts(self) -> int:
        """Total GPT records in this store."""
        return self.manifest.n_gpts

    # ------------------------------------------------------------------
    # Iteration (memory-bounded)
    # ------------------------------------------------------------------
    def _iter_lines(self, name: str) -> Iterator[str]:
        path = self.root / name
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield line

    def iter_shard_lines(self, kind: str, index: int) -> Iterator[str]:
        """Stream one shard file's raw canonical-JSON record lines.

        ``kind`` is ``"gpts"`` or ``"policies"``.  The incremental crawl's
        carry-forward path reads these directly: unchanged records move from
        epoch N to epoch N+1 as bytes (plus a re-stamped discovery index),
        never through a decode → re-encode round trip.
        """
        if kind == "gpts":
            infos = self.manifest.gpt_shards
        elif kind == "policies":
            infos = self.manifest.policy_shards
        else:
            raise ValueError(f"unknown shard kind {kind!r} (want 'gpts' or 'policies')")
        return self._iter_lines(infos[index].name)

    def iter_shard_gpts(self, index: int) -> Iterator[CrawledGPT]:
        """Stream the GPT records of one shard (one object live at a time)."""
        for line in self._iter_lines(self.manifest.gpt_shards[index].name):
            yield _gpt_from_trusted_payload(json.loads(line))

    def iter_shard_gpts_indexed(self, index: int) -> Iterator[Tuple[int, CrawledGPT]]:
        """Stream one shard's ``(discovery_index, gpt)`` pairs (schema >= 2).

        Every write path appends records index-ascending within a shard;
        this guard turns a violated invariant into a loud error instead of
        a silently misordered merge.
        """
        if not self.manifest.supports_discovery_order:
            raise ValueError(
                "store predates discovery indices (shard schema "
                f"{self.manifest.schema}); only shard-major iteration is available"
            )
        previous = -1
        for line in self._iter_lines(self.manifest.gpt_shards[index].name):
            payload = json.loads(line)
            discovery_index = int(payload[DISCOVERY_INDEX_KEY])
            if discovery_index <= previous:
                raise ValueError(
                    f"shard {index} is not discovery-index-ascending "
                    f"({discovery_index} after {previous}); the store is corrupt"
                )
            previous = discovery_index
            yield discovery_index, _gpt_from_trusted_payload(payload)

    def iter_indexed_gpts(self) -> Iterator[Tuple[int, CrawledGPT]]:
        """Stream every ``(discovery_index, gpt)`` pair in discovery order.

        A k-way heap merge over the (index-ascending) shard streams: peak
        memory is one record per shard, not the corpus.
        """
        streams = [self.iter_shard_gpts_indexed(i) for i in range(self.n_shards)]
        return heapq.merge(*streams, key=lambda pair: pair[0])

    def iter_gpts(self) -> Iterator[CrawledGPT]:
        """Stream every GPT record, shard-major."""
        for index in range(self.n_shards):
            yield from self.iter_shard_gpts(index)

    # ------------------------------------------------------------------
    # CorpusSource protocol (see repro.io.CorpusSource)
    # ------------------------------------------------------------------
    def iter_records(self) -> Iterator[CrawledGPT]:
        """Stream every GPT record in global discovery order.

        Schema-1 stores carry no index; they fall back to shard-major
        order (the only order they ever had).
        """
        if not self.manifest.supports_discovery_order:
            yield from self.iter_gpts()
            return
        for _, gpt in self.iter_indexed_gpts():
            yield gpt

    def iter_shard(self, index: int) -> Iterator[CrawledGPT]:
        """Stream one shard's records (protocol alias of iter_shard_gpts)."""
        return self.iter_shard_gpts(index)

    @property
    def n_records(self) -> int:
        """Total GPT records (protocol alias of :attr:`n_gpts`)."""
        return self.manifest.n_gpts

    def iter_shard_policies(self, index: int) -> Iterator[PolicyFetchResult]:
        """Stream the policy records of one shard."""
        for line in self._iter_lines(self.manifest.policy_shards[index].name):
            yield policy_from_payload(json.loads(line))

    def iter_policies(self) -> Iterator[PolicyFetchResult]:
        """Stream every policy record, shard-major."""
        for index in range(self.n_shards):
            yield from self.iter_shard_policies(index)

    def available_policy_urls(self) -> set:
        """URLs whose policy was fetched successfully (text present).

        Memory is O(#policy URLs), not O(total policy text): the texts are
        discarded as the stream advances.
        """
        available = set()
        for result in self.iter_policies():
            if result.ok and result.text is not None:
                available.add(result.url)
        return available

    # ------------------------------------------------------------------
    # Full materialization (for compatibility / identity checks)
    # ------------------------------------------------------------------
    def load_corpus(self) -> CrawlCorpus:
        """Rebuild the full in-memory corpus in exact discovery order.

        Record order matches the unsharded crawl byte-for-byte (schema >= 2;
        legacy stores fall back to shard-major order), and the rebuilt
        corpus carries its discovery indices, so re-sharding it round-trips
        to an identical store.  Policies are inserted in sorted-URL order —
        the order the crawl fetches them.

        This materializes the whole corpus and defeats the purpose of
        sharding at 100k scale: analysis code must stream via
        :meth:`iter_records` / the accumulators in
        :mod:`repro.analysis.streaming` instead (machine-enforced by
        ``make lint``); ``load_corpus`` exists for the compatibility path
        and for byte-identity tests.
        """
        corpus = CrawlCorpus()
        if self.manifest.supports_discovery_order:
            for discovery_index, gpt in self.iter_indexed_gpts():
                corpus.gpts[gpt.gpt_id] = gpt
                corpus.discovery_indices[gpt.gpt_id] = discovery_index
        else:
            for gpt in self.iter_gpts():
                corpus.gpts[gpt.gpt_id] = gpt
        for result in sorted(self.iter_policies(), key=lambda entry: entry.url):
            corpus.policies[result.url] = result
        corpus.store_counts = dict(self.manifest.store_counts)
        corpus.store_link_counts = dict(self.manifest.store_link_counts)
        corpus.unresolved_gpt_ids = list(self.manifest.unresolved_gpt_ids)
        return corpus

    # ------------------------------------------------------------------
    # Fingerprints and artifact-store integration
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content address of the whole store (from the shard fingerprints).

        Two stores with identical records in identical shard order share a
        fingerprint regardless of where on disk they live.
        """
        return config_fingerprint(self.manifest.to_payload())

    def verify(self) -> List[str]:
        """Re-hash every shard; returns the names of corrupted shards."""
        corrupted: List[str] = []
        for info in self.manifest.gpt_shards + self.manifest.policy_shards:
            path = self.root / info.name
            digest = hashlib.sha256()
            try:
                with path.open("rb") as handle:
                    for chunk in iter(lambda: handle.read(1 << 20), b""):
                        digest.update(chunk)
            except OSError:
                corrupted.append(info.name)
                continue
            if digest.hexdigest() != info.fingerprint:
                corrupted.append(info.name)
        return corrupted

    def register_in(self, store: ArtifactStore) -> str:
        """Record this store's manifest in a content-addressed artifact store.

        The manifest (with its per-shard fingerprints) is stored under the
        store's own content address, so sweep-style pipelines can test
        whether an identical sharded corpus already exists anywhere without
        reading a single shard.  Returns the fingerprint used as the key.
        """
        fingerprint = self.fingerprint()
        payload = dict(self.manifest.to_payload())
        payload["root"] = str(self.root)
        store.put(SHARD_ARTIFACT_KIND, fingerprint, payload)
        return fingerprint

    def register_delta_in(
        self, store: ArtifactStore, parent: "ShardedCorpusStore"
    ) -> str:
        """Publish this store as an epoch *delta* over ``parent``.

        Instead of re-registering every shard, the delta artifact names only
        the shards whose content fingerprints differ from the parent's —
        for a 5%-churned epoch that is the whole story of what changed.  The
        artifact is keyed by this store's content address (same key space
        as :meth:`register_in`) under :data:`SHARD_DELTA_ARTIFACT_KIND`.
        Refuses a parent the manifest does not actually descend from, so a
        delta can never silently point at the wrong lineage.
        """
        parent_fingerprint = parent.fingerprint()
        if self.manifest.parent_fingerprint != parent_fingerprint:
            raise ValueError(
                "store at "
                f"{self.root} records parent {self.manifest.parent_fingerprint!r}, "
                f"not {parent_fingerprint!r}; refusing to publish a delta over "
                "a store it was not derived from"
            )

        def changed(mine: List[ShardInfo], theirs: List[ShardInfo]) -> List[str]:
            prior = {info.name: info.fingerprint for info in theirs}
            return [
                info.name for info in mine if prior.get(info.name) != info.fingerprint
            ]

        fingerprint = self.fingerprint()
        payload: Dict[str, object] = {
            "epoch": self.manifest.epoch,
            "parent_fingerprint": parent_fingerprint,
            "changed_gpt_shards": changed(
                self.manifest.gpt_shards, parent.manifest.gpt_shards
            ),
            "changed_policy_shards": changed(
                self.manifest.policy_shards, parent.manifest.policy_shards
            ),
            "root": str(self.root),
        }
        store.put(SHARD_DELTA_ARTIFACT_KIND, fingerprint, payload)
        return fingerprint

    def summary(self) -> str:
        """One-line human-readable summary."""
        lineage = (
            f" (epoch {self.manifest.epoch})"
            if self.manifest.supports_lineage and self.manifest.epoch
            else ""
        )
        return (
            f"ShardedCorpusStore: {self.n_gpts} GPTs and "
            f"{self.manifest.n_policies} policies in {self.n_shards} shard(s) "
            f"at {self.root}{lineage}"
        )
