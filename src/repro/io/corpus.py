"""Persistence of crawl corpora (the paper releases both code and data).

The paper's artifact includes the crawled GPT manifests, Action
specifications, and privacy policies.  This module serializes a
:class:`~repro.crawler.corpus.CrawlCorpus` (and optionally a classification
result) to a directory of JSON files and loads it back, so measurement runs
can be archived, shared, and re-analyzed without re-running the crawl.

Layout::

    <directory>/
      corpus.json            # GPT manifest records + store statistics
      policies.json          # fetched privacy policies keyed by URL
      classification.json    # optional: per-parameter (category, type) labels

Every serializer has a payload-level counterpart (``corpus_to_payload`` /
``corpus_from_payload``, ``classification_to_payload`` /
``classification_from_payload``) so the same representation can be written
to a dataset directory, stored in the content-addressed
:class:`~repro.io.artifacts.ArtifactStore`, or compared byte-for-byte in
determinism tests.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.classification.results import ClassificationResult, DescriptionLabel
from repro.crawler.corpus import CrawlCorpus, CrawledAction, CrawledGPT
from repro.crawler.policy_fetcher import PolicyFetchResult

_CORPUS_FILE = "corpus.json"
_POLICIES_FILE = "policies.json"
_CLASSIFICATION_FILE = "classification.json"


def _gpt_to_dict(gpt: CrawledGPT) -> Dict[str, object]:
    return {
        "gpt_id": gpt.gpt_id,
        "name": gpt.name,
        "description": gpt.description,
        "author_name": gpt.author_name,
        "author_website": gpt.author_website,
        "vendor_domain": gpt.vendor_domain,
        "tags": gpt.tags,
        "tool_types": gpt.tool_types,
        "n_files": gpt.n_files,
        "source_stores": gpt.source_stores,
        "actions": [
            {
                "action_id": action.action_id,
                "title": action.title,
                "description": action.description,
                "server_url": action.server_url,
                "legal_info_url": action.legal_info_url,
                "functionality": action.functionality,
                "auth_type": action.auth_type,
                "parameters": [list(parameter) for parameter in action.parameters],
            }
            for action in gpt.actions
        ],
    }


def _gpt_from_dict(payload: Dict[str, object]) -> CrawledGPT:
    actions = [
        CrawledAction(
            action_id=str(entry["action_id"]),
            title=str(entry.get("title", "")),
            description=str(entry.get("description", "")),
            server_url=str(entry.get("server_url", "")),
            legal_info_url=entry.get("legal_info_url"),
            functionality=str(entry.get("functionality", "")),
            auth_type=str(entry.get("auth_type", "none")),
            parameters=[tuple(parameter) for parameter in entry.get("parameters", [])],
        )
        for entry in payload.get("actions", [])
    ]
    return CrawledGPT(
        gpt_id=str(payload["gpt_id"]),
        name=str(payload.get("name", "")),
        description=str(payload.get("description", "")),
        author_name=str(payload.get("author_name", "")),
        author_website=payload.get("author_website"),
        vendor_domain=payload.get("vendor_domain"),
        tags=list(payload.get("tags", [])),
        tool_types=list(payload.get("tool_types", [])),
        actions=actions,
        n_files=int(payload.get("n_files", 0)),
        source_stores=list(payload.get("source_stores", [])),
    )


def gpt_to_payload(gpt: CrawledGPT) -> Dict[str, object]:
    """The JSON payload of one GPT record (one shard-file line)."""
    return _gpt_to_dict(gpt)


def gpt_from_payload(payload: Dict[str, object]) -> CrawledGPT:
    """Rebuild one GPT from :func:`gpt_to_payload` output."""
    return _gpt_from_dict(payload)


def policy_to_payload(result: PolicyFetchResult) -> Dict[str, object]:
    """The JSON payload of one policy fetch record (one shard-file line)."""
    return {
        "url": result.url,
        "status": result.status,
        "text": result.text,
        "error": result.error,
    }


def policy_from_payload(payload: Dict[str, object]) -> PolicyFetchResult:
    """Rebuild one policy fetch result from :func:`policy_to_payload` output."""
    return PolicyFetchResult(
        url=str(payload["url"]),
        status=int(payload.get("status", 0)),
        text=payload.get("text"),
        error=payload.get("error"),
    )


def corpus_to_payload(corpus: CrawlCorpus) -> Dict[str, object]:
    """The JSON payload of ``corpus.json``.

    Also serves as a canonical fingerprint: two corpora produced by
    equivalent crawls (e.g. a resumed run versus an uninterrupted one)
    serialize to equal payloads.
    """
    return {
        "gpts": [_gpt_to_dict(gpt) for gpt in corpus.iter_gpts()],
        "store_counts": corpus.store_counts,
        "store_link_counts": corpus.store_link_counts,
        "unresolved_gpt_ids": corpus.unresolved_gpt_ids,
    }


def policies_to_payload(corpus: CrawlCorpus) -> Dict[str, object]:
    """The JSON payload of ``policies.json``."""
    return {
        url: {"status": result.status, "text": result.text, "error": result.error}
        for url, result in corpus.policies.items()
    }


def corpus_from_payload(
    corpus_payload: Dict[str, object],
    policies_payload: Optional[Dict[str, object]] = None,
) -> CrawlCorpus:
    """Rebuild a corpus from :func:`corpus_to_payload` (and optionally
    :func:`policies_to_payload`) output."""
    corpus = CrawlCorpus()
    for gpt_payload in corpus_payload.get("gpts", []):
        gpt = _gpt_from_dict(gpt_payload)
        corpus.gpts[gpt.gpt_id] = gpt
    corpus.store_counts = dict(corpus_payload.get("store_counts", {}))
    corpus.store_link_counts = dict(corpus_payload.get("store_link_counts", {}))
    corpus.unresolved_gpt_ids = list(corpus_payload.get("unresolved_gpt_ids", []))
    if policies_payload:
        for url, entry in policies_payload.items():
            corpus.policies[url] = PolicyFetchResult(
                url=url,
                status=int(entry.get("status", 0)),
                text=entry.get("text"),
                error=entry.get("error"),
            )
    return corpus


def classification_to_payload(classification: ClassificationResult) -> List[Dict[str, object]]:
    """The JSON payload of ``classification.json``."""
    return [
        {
            "action_id": label.action_id,
            "parameter_name": label.parameter_name,
            "text": label.text,
            "category": label.category,
            "data_type": label.data_type,
        }
        for label in classification.labels
    ]


def classification_from_payload(payload: List[Dict[str, object]]) -> ClassificationResult:
    """Rebuild a classification from :func:`classification_to_payload` output."""
    result = ClassificationResult()
    for entry in payload:
        result.add(
            DescriptionLabel(
                action_id=str(entry["action_id"]),
                parameter_name=str(entry["parameter_name"]),
                text=str(entry.get("text", "")),
                category=str(entry["category"]),
                data_type=str(entry["data_type"]),
            )
        )
    return result


def save_corpus(
    corpus: CrawlCorpus,
    directory: Union[str, Path],
    classification: Optional[ClassificationResult] = None,
) -> Path:
    """Write a corpus (and optional classification) to ``directory``."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)

    (target / _CORPUS_FILE).write_text(
        json.dumps(corpus_to_payload(corpus), indent=2, ensure_ascii=False),
        encoding="utf-8",
    )

    policies_payload = policies_to_payload(corpus)
    (target / _POLICIES_FILE).write_text(
        json.dumps(policies_payload, indent=2, ensure_ascii=False), encoding="utf-8"
    )

    if classification is not None:
        (target / _CLASSIFICATION_FILE).write_text(
            json.dumps(classification_to_payload(classification), indent=2, ensure_ascii=False),
            encoding="utf-8",
        )
    return target


def load_corpus(directory: Union[str, Path]) -> CrawlCorpus:
    """Load a corpus previously written by :func:`save_corpus`."""
    source = Path(directory)
    corpus_payload = json.loads((source / _CORPUS_FILE).read_text(encoding="utf-8"))
    policies_path = source / _POLICIES_FILE
    policies_payload = (
        json.loads(policies_path.read_text(encoding="utf-8")) if policies_path.exists() else None
    )
    return corpus_from_payload(corpus_payload, policies_payload)


def load_classification(directory: Union[str, Path]) -> Optional[ClassificationResult]:
    """Load the classification labels stored alongside a corpus (if any)."""
    path = Path(directory) / _CLASSIFICATION_FILE
    if not path.exists():
        return None
    return classification_from_payload(json.loads(path.read_text(encoding="utf-8")))
