"""Persistent warm worker pools with broadcast-once shared state.

:class:`~repro.exec.backends.ProcessBackend` honors the scheduling
contract but pays the full dispatch cost on every :meth:`run` call: a
fresh :class:`~concurrent.futures.ProcessPoolExecutor` is spawned per
batch, and every task pickles its whole payload — a sharded crawl ships
the entire :class:`~repro.crawler.pipeline.ShardCrawlSpec` (the
generated ecosystem, megabytes) once per (stage, shard) task.  This
module amortizes both costs:

* :class:`WorkerPool` — a lifecycle object owning one live executor
  (process or thread) across many ``run()`` calls.  Explicit
  :meth:`~WorkerPool.close` (idempotent), context-manager support, and
  crashed-worker replacement: a :class:`BrokenProcessPool` mid-batch
  rebuilds the executor and resubmits the still-pending tasks (capped
  per-task attempts), so one dying worker costs a respawn, not the run.
  Results are deterministic regardless of reuse — outcomes merge in
  submission order and per-task RNG re-seeding
  (:func:`~repro.exec.backends._invoke_in_worker`) happens on every
  invocation, so a reused worker and a fresh one agree byte-for-byte.
* **Broadcast-once shared state** — :meth:`WorkerPool.broadcast`
  registers a picklable payload under a key; it ships to each worker
  exactly once via the pool *initializer* (pickled into ``initargs`` at
  executor creation), and tasks reference it with :func:`shared_state`
  instead of carrying it.  Per-task pickles shrink from ecosystem-sized
  to identifier-sized.  Re-broadcasting a *different* object under an
  existing key marks the pool dirty: the next ``run()`` restarts the
  executor so every worker observes the update (initializers cannot
  reach live workers) — so broadcast everything before the first run
  when possible, and reuse the same payload object across runs to stay
  warm.
* :class:`PoolHandle` — a non-owning view for lending a pool to a
  consumer (a pipeline, an analysis runner) whose cleanup must not tear
  down the owner's workers: ``close()`` on a handle is a no-op.

The thread kind exists so pool-lifecycle code is backend-agnostic: it
keeps the frontier-draining semantics of
:class:`~repro.exec.backends.ThreadBackend` (pluggable queue, optional
rate limiter) over a persistent :class:`ThreadPoolExecutor`, and
``broadcast`` payloads live in the pool's own store (shared memory — no
restart, no pickling).  Worker threads see *their* pool's store through a
thread-local installed for the duration of each ``run()``, so two live
thread pools never observe each other's broadcasts and a closed pool
leaves nothing behind in later pools or tests.
"""

from __future__ import annotations

import threading

from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.exec.backends import (
    ExecOutcome,
    ExecTask,
    ExecutionBackend,
    FIFOTaskQueue,
    RateLimiter,
    TaskQueue,
    _check_unique_keys,
    _FrontierBackend,
    _invoke_in_worker,
)

#: Pool kinds :class:`WorkerPool` accepts.
POOL_KINDS = ("thread", "process")

#: Worker-side shared-state store for the *process* kind, filled by the
#: pool initializer.  A worker process belongs to exactly one pool, so a
#: process-global store is correct there; thread-kind pools share one
#: process and use the thread-local active store below instead.
_WORKER_SHARED: Dict[str, object] = {}

#: Thread-kind active store: each worker thread sees the broadcast store of
#: the pool whose ``run()`` it is currently executing (installed around the
#: worker loop, restored on exit), so concurrent pools stay isolated and a
#: pool's payloads vanish with it instead of leaking into later pools.
_THREAD_SHARED = threading.local()


def _install_shared(payloads: Mapping[str, object]) -> None:
    """Pool initializer: install the broadcast payloads in this worker.

    Runs once per worker process at spawn — the payloads pickle once into
    the executor's ``initargs``, not once per task.
    """
    _WORKER_SHARED.clear()
    _WORKER_SHARED.update(payloads)


def shared_state(key: str) -> object:
    """Look up a broadcast payload inside a worker (or the coordinator).

    Task functions call this instead of carrying the payload in their
    ``args``, shrinking per-task pickles to identifiers.  Resolution order:
    the running thread pool's own store (thread kind), then the process
    worker store (process kind).
    """
    store = getattr(_THREAD_SHARED, "store", None)
    if store is not None and key in store:
        return store[key]
    try:
        return _WORKER_SHARED[key]
    except KeyError:
        raise KeyError(
            f"shared-state key {key!r} is not installed in this worker; "
            "call WorkerPool.broadcast(key, payload) before run() so the "
            "pool initializer ships it to every worker"
        ) from None


class WorkerPool(_FrontierBackend):
    """A persistent execution backend: one live pool, many ``run()`` calls.

    Parameters
    ----------
    kind:
        ``"process"`` (a :class:`ProcessPoolExecutor`; task payloads must
        pickle, per-host rate limiting is refused) or ``"thread"`` (the
        frontier-draining thread semantics over a persistent
        :class:`ThreadPoolExecutor`).  :attr:`name` mirrors the kind so
        string-based backend checks keep working.
    workers:
        Pool size (floored at 1).  Unlike the cold backends, the executor
        is sized once — not per batch — so small batches reuse the same
        warm workers as large ones.
    start_method:
        Process start method (``"fork"``/``"spawn"``/``None`` for the
        platform default); ignored by the thread kind.
    shared:
        Initial broadcast payloads (equivalent to calling
        :meth:`broadcast` per entry before the first run).
    max_task_attempts:
        Submission attempts per task across :class:`BrokenProcessPool`
        rebuilds before the task is reported as a failed outcome.  Floored
        at 1; the default tolerates a crashing neighbor twice.
    """

    def __init__(
        self,
        kind: str = "process",
        workers: int = 1,
        start_method: Optional[str] = None,
        rate_limiter: Optional[RateLimiter] = None,
        queue_factory: Callable[[], TaskQueue] = FIFOTaskQueue,
        shared: Optional[Mapping[str, object]] = None,
        max_task_attempts: int = 3,
    ) -> None:
        if kind not in POOL_KINDS:
            raise ValueError(
                f"unknown pool kind {kind!r}; known: {', '.join(POOL_KINDS)}"
            )
        if kind == "process" and rate_limiter is not None:
            raise ValueError(
                "a process WorkerPool cannot enforce a shared rate limiter; "
                "token buckets cannot span processes — use kind='thread' for "
                "rate-limited work"
            )
        super().__init__(rate_limiter=rate_limiter, queue_factory=queue_factory)
        self.kind = kind
        self.name = kind
        self.workers = max(1, workers)
        self.start_method = start_method
        self.max_task_attempts = max(1, max_task_attempts)
        self._shared: Dict[str, object] = dict(shared or {})
        self._executor = None
        self._dirty = False
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def is_process(self) -> bool:
        """Whether tasks cross a process boundary (payloads must pickle)."""
        return self.kind == "process"

    def handle(self) -> "PoolHandle":
        """A non-owning view to lend to consumers (their close is a no-op)."""
        return PoolHandle(self)

    def broadcast(self, key: str, payload: object) -> "WorkerPool":
        """Register a shared payload workers read via :func:`shared_state`.

        Process kind: the payload ships to each worker exactly once via
        the pool initializer.  Re-broadcasting the *same object* under an
        existing key is free; a different object marks the pool dirty and
        the next :meth:`run` restarts the executor with the update.
        Thread kind: the pool's own store updates immediately (shared
        memory, no restart); worker threads see it — and only it — while
        running this pool's tasks.
        """
        self._require_open()
        if key in self._shared and self._shared[key] is payload:
            return self
        self._shared[key] = payload
        if self.kind == "process" and self._executor is not None:
            self._dirty = True
        return self

    def close(self) -> None:
        """Shut the executor down (idempotent; runs after close raise)."""
        if self._closed:
            return
        self._closed = True
        self._discard_executor()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("WorkerPool is closed")

    def _discard_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _ensure_executor(self):
        if self._dirty:
            # A broadcast changed after spawn: initializers cannot reach
            # live workers, so restart the pool to re-install shared state.
            self._discard_executor()
            self._dirty = False
        if self._executor is None:
            if self.kind == "process":
                kwargs = {
                    "max_workers": self.workers,
                    "initializer": _install_shared,
                    "initargs": (dict(self._shared),),
                }
                if self.start_method is not None:
                    import multiprocessing

                    kwargs["mp_context"] = multiprocessing.get_context(
                        self.start_method
                    )
                self._executor = ProcessPoolExecutor(**kwargs)
            else:
                self._executor = ThreadPoolExecutor(max_workers=self.workers)
        return self._executor

    # ------------------------------------------------------------------
    def run(
        self,
        tasks: Sequence[ExecTask],
        on_result: Optional[Callable[[ExecOutcome], None]] = None,
        keep_results: bool = True,
    ) -> List[ExecOutcome]:
        self._require_open()
        task_list = list(tasks)
        keys = _check_unique_keys(task_list)
        if not task_list:
            return []
        if self.kind == "thread":
            return self._run_threads(task_list, keys, on_result, keep_results)
        return self._run_process(task_list, keys, on_result, keep_results)

    def _run_threads(
        self,
        task_list: List[ExecTask],
        keys: List[str],
        on_result: Optional[Callable[[ExecOutcome], None]],
        keep_results: bool,
    ) -> List[ExecOutcome]:
        self._stop.clear()
        outcomes: Dict[str, ExecOutcome] = {}
        queue = self.queue_factory()
        for task in task_list:
            queue.push(task)
        if self.workers <= 1:
            self._scoped_worker_loop(queue, outcomes, on_result, keep_results)
        else:
            executor = self._ensure_executor()
            futures = [
                executor.submit(
                    self._scoped_worker_loop, queue, outcomes, on_result, keep_results
                )
                for _ in range(self.workers)
            ]
            try:
                for future in futures:
                    # Surface worker crashes (queue/callback bugs); task
                    # exceptions are already folded into outcomes.
                    future.result()
            finally:
                # The cold ThreadBackend's ``with`` block joins every
                # worker before a crash propagates (keeps incremental
                # checkpoints consistent); a persistent executor must
                # wind the siblings down explicitly.
                wait(futures)
        return [outcomes[key] for key in keys]

    def _scoped_worker_loop(self, queue, outcomes, on_result, keep_results) -> None:
        """Run the frontier loop with this pool's store as the thread's
        active shared state (restored on exit, so nested or successive
        pools on the same thread never see a stale store)."""
        previous = getattr(_THREAD_SHARED, "store", None)
        _THREAD_SHARED.store = self._shared
        try:
            self._worker_loop(queue, outcomes, on_result, keep_results)
        finally:
            _THREAD_SHARED.store = previous

    def _run_process(
        self,
        task_list: List[ExecTask],
        keys: List[str],
        on_result: Optional[Callable[[ExecOutcome], None]],
        keep_results: bool,
    ) -> List[ExecOutcome]:
        outcomes: Dict[str, ExecOutcome] = {}
        pending: Dict[str, ExecTask] = {task.key: task for task in task_list}
        attempts: Dict[str, int] = {task.key: 0 for task in task_list}

        def settle(outcome: ExecOutcome) -> None:
            if on_result is not None:
                on_result(outcome)
                if not keep_results:
                    outcome.result = None
            outcomes[outcome.key] = outcome
            pending.pop(outcome.key, None)

        while pending:
            executor = self._ensure_executor()
            futures: Dict[object, str] = {}
            broken = False
            try:
                for task in list(pending.values()):
                    attempts[task.key] += 1
                    futures[executor.submit(_invoke_in_worker, task)] = task.key
            except BrokenProcessPool:
                broken = True
            not_done = set(futures)
            try:
                while not_done:
                    done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                    for future in done:
                        key = futures[future]
                        try:
                            settle(ExecOutcome(key=key, result=future.result()))
                        except BrokenProcessPool as exc:
                            # A worker died; the whole pool is poisoned.
                            # Unattributable — every in-flight task retries
                            # on a rebuilt pool (the initializer re-installs
                            # shared state) up to max_task_attempts.
                            broken = True
                            if attempts[key] >= self.max_task_attempts:
                                settle(
                                    ExecOutcome(
                                        key=key,
                                        error=(
                                            "worker process crashed "
                                            f"({attempts[key]} attempts): {exc}"
                                        ),
                                    )
                                )
                        except Exception as exc:  # noqa: BLE001 - outcomes carry it
                            settle(
                                ExecOutcome(key=key, error=f"{type(exc).__name__}: {exc}")
                            )
            except BaseException:
                # A KeyboardInterrupt (or an on_result bug) aborts the
                # batch: cancel queued work and discard the executor so an
                # interrupted pool cannot leak half-run state into a reuse.
                for future in not_done:
                    future.cancel()
                self._discard_executor()
                raise
            if broken:
                self._discard_executor()
        return [outcomes[key] for key in keys]


class PoolHandle(ExecutionBackend):
    """A non-owning view of a :class:`WorkerPool`.

    Forwards the execution contract (and :meth:`broadcast`) to the pool it
    wraps, but :meth:`close` is a no-op — hand one to a consumer whose
    cleanup must not tear down workers the owner is still reusing.
    """

    def __init__(self, pool: WorkerPool) -> None:
        self._pool = pool
        self.name = pool.name
        self.workers = pool.workers

    @property
    def pool(self) -> WorkerPool:
        """The owning pool behind this handle."""
        return self._pool

    @property
    def is_process(self) -> bool:
        return self._pool.is_process

    def broadcast(self, key: str, payload: object) -> "PoolHandle":
        self._pool.broadcast(key, payload)
        return self

    def run(
        self,
        tasks: Sequence[ExecTask],
        on_result: Optional[Callable[[ExecOutcome], None]] = None,
        keep_results: bool = True,
    ) -> List[ExecOutcome]:
        return self._pool.run(tasks, on_result=on_result, keep_results=keep_results)

    def close(self) -> None:
        """No-op: the owning :class:`WorkerPool` controls the lifecycle."""

    def __enter__(self) -> "PoolHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def resolve_pool(
    backend: Union[str, ExecutionBackend, None],
) -> Optional[WorkerPool]:
    """The :class:`WorkerPool` behind a backend spec, unwrapping handles.

    Returns ``None`` for names, cold backends, and ``None`` — callers use
    this to route onto the broadcast/shared-state path only when a warm
    pool is actually present.
    """
    if isinstance(backend, PoolHandle):
        return backend.pool
    if isinstance(backend, WorkerPool):
        return backend
    return None
