"""Pluggable execution backends (serial / thread / process).

See :mod:`repro.exec.backends` for the scheduling contract.  The crawl
engine (:mod:`repro.crawler.engine`), the shard-parallel streaming
analyses (:mod:`repro.analysis.streaming`), and the sweep engine
(:mod:`repro.experiments.sweep`) all fan out through this layer, so
switching a pipeline between GIL-bound threads and real CPU scaling on a
process pool is one knob (``--backend``) rather than a rewrite.
"""

from repro.exec.backends import (
    BACKEND_NAMES,
    ExecOutcome,
    ExecTask,
    ExecutionBackend,
    FIFOTaskQueue,
    LIFOTaskQueue,
    ProcessBackend,
    SerialBackend,
    TaskQueue,
    ThreadBackend,
    get_backend,
)

__all__ = [
    "BACKEND_NAMES",
    "ExecOutcome",
    "ExecTask",
    "ExecutionBackend",
    "FIFOTaskQueue",
    "LIFOTaskQueue",
    "ProcessBackend",
    "SerialBackend",
    "TaskQueue",
    "ThreadBackend",
    "get_backend",
]
