"""Pluggable execution backends (serial / thread / process) and warm pools.

See :mod:`repro.exec.backends` for the scheduling contract.  The crawl
engine (:mod:`repro.crawler.engine`), the shard-parallel streaming
analyses (:mod:`repro.analysis.streaming`), and the sweep engine
(:mod:`repro.experiments.sweep`) all fan out through this layer, so
switching a pipeline between GIL-bound threads and real CPU scaling on a
process pool is one knob (``--backend``) rather than a rewrite.

**Pool lifecycle.**  The cold backends spawn their pool per ``run()``
call; :class:`~repro.exec.pool.WorkerPool` instead owns one live
executor across many calls — explicit idempotent ``close()`` (or a
``with`` block), crashed-worker replacement with capped per-task
retries, and byte-identical results regardless of reuse (outcomes merge
in submission order; per-task RNG re-seeding runs on every invocation,
so fork/spawn agreement survives warm workers).  Consumers that are
*lent* a pool receive a :class:`~repro.exec.pool.PoolHandle`, whose
``close()`` is a no-op — only the owner tears workers down.  The string
knobs stay the API: a consumer given ``backend="process"`` builds (and
closes) its own pool; passing a ``WorkerPool``/``PoolHandle`` instance
keeps the workers warm across consumers.

**Shared-state broadcast contract.**  ``WorkerPool.broadcast(key,
payload)`` registers a picklable payload that ships to each worker
exactly once via the pool initializer; task functions fetch it with
:func:`~repro.exec.pool.shared_state` instead of carrying it, shrinking
per-task pickles from ecosystem-sized to identifier-sized.
Re-broadcasting a *different* object under a key restarts the pool at
the next ``run()`` (initializers cannot reach live workers), so
broadcast before the first run and reuse payload objects across runs.
"""

from repro.exec.backends import (
    BACKEND_NAMES,
    ExecOutcome,
    ExecTask,
    ExecutionBackend,
    FIFOTaskQueue,
    LIFOTaskQueue,
    ProcessBackend,
    SerialBackend,
    TaskQueue,
    ThreadBackend,
    get_backend,
)
from repro.exec.pool import (
    POOL_KINDS,
    PoolHandle,
    WorkerPool,
    resolve_pool,
    shared_state,
)

__all__ = [
    "BACKEND_NAMES",
    "POOL_KINDS",
    "ExecOutcome",
    "ExecTask",
    "ExecutionBackend",
    "FIFOTaskQueue",
    "LIFOTaskQueue",
    "PoolHandle",
    "ProcessBackend",
    "SerialBackend",
    "TaskQueue",
    "ThreadBackend",
    "WorkerPool",
    "get_backend",
    "resolve_pool",
    "shared_state",
]
