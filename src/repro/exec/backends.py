"""Pluggable execution backends: serial, thread-pool, and process-pool.

Every fan-out layer in the reproduction — the crawl engine's stages, the
shard-parallel streaming analyses, the sweep engine's experiment cells —
shares one scheduling contract: submit a batch of keyed tasks, observe
completions as they happen, and receive outcomes merged back in
**submission order** so seeded pipelines stay byte-reproducible at any
parallelism.  This module is that contract, factored out of the PR-2
:class:`~repro.crawler.engine.CrawlEngine` so the *policy* (which kind of
worker pool) is pluggable:

* :class:`SerialBackend` — drains the frontier inline on the calling
  thread.  The sequential baseline, and what ``workers <= 1`` resolves to.
* :class:`ThreadBackend` — the crawl engine's historical pool semantics: a
  :class:`~concurrent.futures.ThreadPoolExecutor` whose workers drain a
  shared (pluggable) task queue, with optional per-host rate limiting.
  Right for I/O-bound tasks (the simulated network) and for numpy-heavy
  tasks that release the GIL.
* :class:`ProcessBackend` — a
  :class:`~concurrent.futures.ProcessPoolExecutor` for **pure-Python,
  CPU-bound** fan-out (shard map steps, sweep cells), which the GIL caps at
  1 core on threads.  Task payloads must be picklable: a module-level
  ``fn`` plus plain-data ``args``/``kwargs``, never a closure.  Each task
  runs with the worker's module-level RNG re-seeded from the task payload
  (:attr:`ExecTask.seed`), so a draw a task forgets to seed explicitly is
  deterministic per task instead of inherited fork state — fork and spawn
  start methods produce identical results.

All three return outcomes in submission order and surface per-task
exceptions as :class:`ExecOutcome.error` strings rather than raising, so a
caller's merge loop is identical across backends.
"""

from __future__ import annotations

import random
import threading
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Mapping, Optional, Protocol, Sequence, Tuple, Union

#: Names accepted by :func:`get_backend` (and every ``--backend`` flag).
BACKEND_NAMES: Tuple[str, ...] = ("serial", "thread", "process")


@dataclass(frozen=True)
class ExecTask:
    """One schedulable unit of work.

    ``key`` must be unique within a batch — it names the result in the
    outcome list and in checkpoints.  ``host`` (optional) subjects the task
    to the backend's rate limiter.  ``args``/``kwargs`` are passed to
    ``fn``; on :class:`ProcessBackend` the whole triple must pickle, so
    ``fn`` has to be a module-level callable there.  ``seed`` (optional)
    re-seeds the worker's module-level :mod:`random` RNG before ``fn`` runs
    on the process backend, so stray global draws are a deterministic
    function of the task rather than of inherited interpreter state.
    """

    key: str
    fn: Callable[..., object]
    args: Tuple = ()
    kwargs: Optional[Mapping[str, object]] = None
    host: Optional[str] = None
    seed: Optional[int] = None

    def invoke(self) -> object:
        """Run the task's callable with its bound arguments."""
        return self.fn(*self.args, **(self.kwargs or {}))


@dataclass
class ExecOutcome:
    """What happened to one task."""

    key: str
    result: Optional[object] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the task completed without raising."""
        return self.error is None


class RateLimiter(Protocol):
    """Per-host admission control (e.g. the crawl engine's ``HostRateLimiter``)."""

    def acquire(self, host: Optional[str]) -> None:  # pragma: no cover - protocol
        ...


class TaskQueue(Protocol):
    """The pluggable work frontier serial/thread workers drain."""

    def push(self, task: ExecTask) -> None:  # pragma: no cover - protocol
        ...

    def pop(self) -> Optional[ExecTask]:  # pragma: no cover - protocol
        ...

    def __len__(self) -> int:  # pragma: no cover - protocol
        ...


class FIFOTaskQueue:
    """A thread-safe first-in-first-out frontier (the default)."""

    def __init__(self) -> None:
        self._items: Deque[ExecTask] = deque()
        self._lock = threading.Lock()

    def push(self, task: ExecTask) -> None:
        with self._lock:
            self._items.append(task)

    def pop(self) -> Optional[ExecTask]:
        with self._lock:
            if not self._items:
                return None
            return self._items.popleft()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class LIFOTaskQueue(FIFOTaskQueue):
    """A depth-first frontier; useful when fresh links should be crawled hot."""

    def pop(self) -> Optional[ExecTask]:
        with self._lock:
            if not self._items:
                return None
            return self._items.pop()


def _check_unique_keys(tasks: Sequence[ExecTask]) -> List[str]:
    keys = [task.key for task in tasks]
    if len(set(keys)) != len(keys):
        raise ValueError("task keys must be unique within a batch")
    return keys


class ExecutionBackend:
    """Shared batch-run contract of the three backends.

    :meth:`run` executes a batch and returns outcomes in submission order.
    ``on_result`` is called once per completed task in *completion* order
    (serialized — never concurrently); completion order is nondeterministic
    under parallelism, only the returned list is deterministic.  With
    ``keep_results=False`` a task's result is handed to ``on_result`` and
    then dropped from the returned outcome (``result=None``), so a caller
    streaming large payloads to disk holds one task's payload at a time
    instead of the whole batch.
    """

    name: str = "abstract"
    workers: int = 0

    def run(
        self,
        tasks: Sequence[ExecTask],
        on_result: Optional[Callable[[ExecOutcome], None]] = None,
        keep_results: bool = True,
    ) -> List[ExecOutcome]:
        raise NotImplementedError


class _FrontierBackend(ExecutionBackend):
    """Common frontier-draining machinery of the serial and thread backends."""

    def __init__(
        self,
        rate_limiter: Optional[RateLimiter] = None,
        queue_factory: Callable[[], TaskQueue] = FIFOTaskQueue,
    ) -> None:
        self.rate_limiter = rate_limiter
        self.queue_factory = queue_factory
        self._lock = threading.Lock()
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def _execute(self, task: ExecTask) -> ExecOutcome:
        if self.rate_limiter is not None:
            self.rate_limiter.acquire(task.host)
        try:
            result = task.invoke()
        except Exception as exc:  # noqa: BLE001 - outcomes carry the error
            return ExecOutcome(key=task.key, error=f"{type(exc).__name__}: {exc}")
        return ExecOutcome(key=task.key, result=result)

    def _worker_loop(
        self,
        queue: TaskQueue,
        outcomes: Dict[str, ExecOutcome],
        on_result: Optional[Callable[[ExecOutcome], None]],
        keep_results: bool,
    ) -> None:
        while not self._stop.is_set():
            task = queue.pop()
            if task is None:
                return
            try:
                outcome = self._execute(task)
                with self._lock:
                    if on_result is not None:
                        on_result(outcome)
                        if not keep_results:
                            outcome.result = None
                    outcomes[outcome.key] = outcome
            except BaseException:
                # Anything escaping here (KeyboardInterrupt from a task, a
                # bug in the on_result callback) aborts the whole batch:
                # stop sibling workers, then re-raise so ``run`` surfaces
                # it after the pool winds down.
                self._stop.set()
                raise


class SerialBackend(_FrontierBackend):
    """Runs tasks inline on the calling thread (the sequential baseline).

    Inline execution still drains the configured frontier, so a
    LIFO/priority queue schedules identically at any worker count.
    """

    name = "serial"
    workers = 0

    def run(
        self,
        tasks: Sequence[ExecTask],
        on_result: Optional[Callable[[ExecOutcome], None]] = None,
        keep_results: bool = True,
    ) -> List[ExecOutcome]:
        task_list = list(tasks)
        keys = _check_unique_keys(task_list)
        self._stop.clear()
        outcomes: Dict[str, ExecOutcome] = {}
        queue = self.queue_factory()
        for task in task_list:
            queue.push(task)
        self._worker_loop(queue, outcomes, on_result, keep_results)
        return [outcomes[key] for key in keys]


class ThreadBackend(_FrontierBackend):
    """The crawl engine's worker-pool semantics behind the backend contract.

    ``workers`` threads drain a shared frontier; a ``KeyboardInterrupt``
    raised by a task (or the caller's callback) propagates after in-flight
    workers wind down, so incremental checkpoints stay consistent.  With
    ``workers <= 1`` this degrades to inline serial execution.
    """

    name = "thread"

    def __init__(
        self,
        workers: int,
        rate_limiter: Optional[RateLimiter] = None,
        queue_factory: Callable[[], TaskQueue] = FIFOTaskQueue,
    ) -> None:
        super().__init__(rate_limiter=rate_limiter, queue_factory=queue_factory)
        self.workers = max(0, workers)

    def run(
        self,
        tasks: Sequence[ExecTask],
        on_result: Optional[Callable[[ExecOutcome], None]] = None,
        keep_results: bool = True,
    ) -> List[ExecOutcome]:
        task_list = list(tasks)
        keys = _check_unique_keys(task_list)
        self._stop.clear()
        outcomes: Dict[str, ExecOutcome] = {}
        queue = self.queue_factory()
        for task in task_list:
            queue.push(task)
        if self.workers <= 1:
            self._worker_loop(queue, outcomes, on_result, keep_results)
        else:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                futures = [
                    pool.submit(self._worker_loop, queue, outcomes, on_result, keep_results)
                    for _ in range(self.workers)
                ]
                for future in futures:
                    # Surface worker crashes (queue/callback bugs); task
                    # exceptions are already folded into outcomes.
                    future.result()
        return [outcomes[key] for key in keys]


def _invoke_in_worker(task: ExecTask) -> object:
    """Runs inside a process-pool worker: re-seed, then invoke.

    Re-seeding the module-level RNG from the task payload (rather than
    relying on whatever state the worker inherited at fork, or the fresh
    default state a spawn start gives) makes any stray global draw a pure
    function of the task — fork and spawn agree, and so do macOS and
    Linux CI.
    """
    if task.seed is not None:
        random.seed(task.seed)
    return task.invoke()


class ProcessBackend(ExecutionBackend):
    """Process-pool execution for pure-Python, CPU-bound fan-out.

    Parameters
    ----------
    workers:
        Pool size.  ``<= 1`` still goes through a single-process pool so
        the pickling contract is exercised identically at any size.
    start_method:
        ``"fork"``/``"spawn"``/``"forkserver"`` or ``None`` for the
        platform default.  Results are identical across start methods (the
        re-seeding contract above); spawn pays a per-worker interpreter
        start and module re-import.

    Task payloads (``fn``, ``args``, ``kwargs``) and results must pickle.
    Per-host rate limiting is not supported — token buckets cannot span
    processes; crawl-style tasks bring their own transport instead (the
    sharded crawl's per-shard sub-pipelines do exactly that).
    """

    name = "process"

    def __init__(self, workers: int, start_method: Optional[str] = None) -> None:
        self.workers = max(1, workers)
        self.start_method = start_method

    def _context(self):
        import multiprocessing

        if self.start_method is None:
            return None
        return multiprocessing.get_context(self.start_method)

    def run(
        self,
        tasks: Sequence[ExecTask],
        on_result: Optional[Callable[[ExecOutcome], None]] = None,
        keep_results: bool = True,
    ) -> List[ExecOutcome]:
        task_list = list(tasks)
        keys = _check_unique_keys(task_list)
        outcomes: Dict[str, ExecOutcome] = {}
        if not task_list:
            return []
        context = self._context()
        pool_kwargs = {"max_workers": min(self.workers, len(task_list))}
        if context is not None:
            pool_kwargs["mp_context"] = context
        with ProcessPoolExecutor(**pool_kwargs) as pool:
            futures = {
                pool.submit(_invoke_in_worker, task): task.key for task in task_list
            }
            pending = set(futures)
            try:
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        key = futures[future]
                        try:
                            outcome = ExecOutcome(key=key, result=future.result())
                        except Exception as exc:  # noqa: BLE001 - outcomes carry it
                            outcome = ExecOutcome(
                                key=key, error=f"{type(exc).__name__}: {exc}"
                            )
                        if on_result is not None:
                            on_result(outcome)
                            if not keep_results:
                                outcome.result = None
                        outcomes[key] = outcome
            except BaseException:
                # A KeyboardInterrupt (or an on_result bug) aborts the
                # batch: cancel queued work so pool shutdown doesn't run it.
                for future in pending:
                    future.cancel()
                raise
        return [outcomes[key] for key in keys]


def get_backend(
    spec: Union[str, ExecutionBackend, None],
    workers: int = 0,
    rate_limiter: Optional[RateLimiter] = None,
    queue_factory: Callable[[], TaskQueue] = FIFOTaskQueue,
    start_method: Optional[str] = None,
) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through).

    ``None`` picks the historical default: serial at ``workers <= 1``,
    threads above.  ``rate_limiter``/``queue_factory`` apply to the
    frontier-draining backends; requesting a rate limiter with the process
    backend raises (buckets cannot span processes).
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None:
        spec = "serial" if workers <= 1 else "thread"
    if spec not in BACKEND_NAMES:
        raise ValueError(
            f"unknown execution backend {spec!r}; known: {', '.join(BACKEND_NAMES)}"
        )
    if spec == "serial":
        return SerialBackend(rate_limiter=rate_limiter, queue_factory=queue_factory)
    if spec == "thread":
        return ThreadBackend(
            workers=workers, rate_limiter=rate_limiter, queue_factory=queue_factory
        )
    if rate_limiter is not None:
        raise ValueError(
            "the process backend cannot enforce a shared rate limiter; "
            "give each task its own transport instead"
        )
    return ProcessBackend(workers=workers, start_method=start_method)
