"""Per-store GPT listing crawlers.

Mirrors the paper's Selenium-based crawlers (Section 3.1): navigate through a
store's paginated or lazily-expanded listing pages, collect every GPT link,
and extract the GPT identifier from each link.  The crawler only depends on
the HTML a store serves, so the same code would work against a live store with
a real HTTP client.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.crawler.gizmo_api import GizmoAPIClient
from repro.crawler.http import HTTPError
from repro.crawler.transport import HTTPTransport

_LINK_RE = re.compile(r'<a[^>]*class="gpt-link"[^>]*href="([^"]+)"[^>]*>(.*?)</a>', re.DOTALL)
_NEXT_RE = re.compile(r'<a[^>]*class="(?:next-page|load-more)"[^>]*href="([^"]+)"')


@dataclass
class StoreCrawlResult:
    """The outcome of crawling one store."""

    store_name: str
    start_url: str
    links: List[str] = field(default_factory=list)
    gpt_ids: List[str] = field(default_factory=list)
    pages_visited: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def n_links(self) -> int:
        """Number of GPT links collected."""
        return len(self.links)

    @property
    def n_identifiers(self) -> int:
        """Number of distinct GPT identifiers extracted."""
        return len(set(self.gpt_ids))


class StoreCrawler:
    """Crawls one GPT store's listing pages.

    Parameters
    ----------
    http:
        The (simulated) HTTP transport — the raw layer or a retrying
        wrapper; anything exposing ``get(url)``.
    max_pages:
        Safety bound on pagination depth.
    """

    def __init__(self, http: HTTPTransport, max_pages: int = 10_000) -> None:
        if max_pages <= 0:
            raise ValueError("max_pages must be positive")
        self._http = http
        self.max_pages = max_pages

    # ------------------------------------------------------------------
    @staticmethod
    def parse_listing_page(page_html: str) -> List[str]:
        """Extract GPT links from one listing page."""
        return [match.group(1) for match in _LINK_RE.finditer(page_html)]

    @staticmethod
    def parse_next_link(page_html: str) -> Optional[str]:
        """Extract the next-page / load-more link from a page, if present."""
        match = _NEXT_RE.search(page_html)
        return match.group(1) if match else None

    # ------------------------------------------------------------------
    def crawl(self, store_name: str, start_url: str) -> StoreCrawlResult:
        """Crawl a store starting from its first listing page."""
        result = StoreCrawlResult(store_name=store_name, start_url=start_url)
        seen_urls: Set[str] = set()
        url: Optional[str] = start_url
        while url and result.pages_visited < self.max_pages:
            if url in seen_urls:
                break
            seen_urls.add(url)
            try:
                response = self._http.get(url)
            except HTTPError as exc:
                result.errors.append(str(exc))
                break
            result.pages_visited += 1
            if not response.ok:
                result.errors.append(f"HTTP {response.status} for {url}")
                break
            links = self.parse_listing_page(response.text)
            result.links.extend(links)
            for link in links:
                identifier = GizmoAPIClient.extract_identifier(link)
                if identifier:
                    result.gpt_ids.append(identifier)
            url = self.parse_next_link(response.text)
        return result
