"""A simulated HTTP layer.

Servers register handlers for URL prefixes; clients issue ``get`` requests and
receive :class:`SimulatedResponse` objects.  The layer also supports injected
failures (per-URL status overrides and flaky-host error rates), which the
pipeline uses to reproduce crawl-time failures such as unresponsive policy
servers (Section 5.1.1) and removed GPTs (404 from the gizmo API).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.web.urls import parse_url


class HTTPError(RuntimeError):
    """Raised for transport-level failures (connection refused, timeouts)."""

    def __init__(self, url: str, reason: str) -> None:
        super().__init__(f"{reason}: {url}")
        self.url = url
        self.reason = reason


@dataclass
class SimulatedResponse:
    """An HTTP response from the simulated network."""

    url: str
    status: int
    text: str = ""
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the response has a 2xx status."""
        return 200 <= self.status < 300

    def json(self) -> object:
        """Parse the body as JSON."""
        return json.loads(self.text)


#: A handler receives the full URL and returns a response.
Handler = Callable[[str], SimulatedResponse]


class SimulatedHTTPLayer:
    """An in-memory HTTP transport with prefix-routed handlers."""

    def __init__(self, seed: int = 0) -> None:
        self._handlers: List[Tuple[str, Handler]] = []
        self._status_overrides: Dict[str, int] = {}
        self._flaky_hosts: Dict[str, float] = {}
        self._rng = random.Random(seed)
        self.request_log: List[str] = []

    # ------------------------------------------------------------------
    # Server-side registration
    # ------------------------------------------------------------------
    def register(self, url_prefix: str, handler: Handler) -> None:
        """Register a handler for all URLs starting with ``url_prefix``."""
        self._handlers.append((url_prefix, handler))
        # Longest prefixes win so that specific routes shadow generic ones.
        self._handlers.sort(key=lambda item: len(item[0]), reverse=True)

    def register_static(self, url: str, text: str, status: int = 200,
                        content_type: str = "text/html") -> None:
        """Register a static document at an exact URL."""

        def handler(request_url: str) -> SimulatedResponse:
            return SimulatedResponse(
                url=request_url,
                status=status,
                text=text,
                headers={"content-type": content_type},
            )

        self.register(url, handler)

    def set_status_override(self, url: str, status: int) -> None:
        """Force a specific status code for an exact URL (e.g. 500, 404)."""
        self._status_overrides[url] = status

    def set_flaky_host(self, host: str, failure_rate: float) -> None:
        """Make a host fail (connection error) with the given probability."""
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be within [0, 1]")
        self._flaky_hosts[host.lower()] = failure_rate

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def get(self, url: str) -> SimulatedResponse:
        """Fetch a URL, raising :class:`HTTPError` for transport failures."""
        self.request_log.append(url)
        parsed = parse_url(url)
        failure_rate = self._flaky_hosts.get(parsed.host)
        if failure_rate and self._rng.random() < failure_rate:
            raise HTTPError(url, "connection reset by peer")
        if url in self._status_overrides:
            return SimulatedResponse(url=url, status=self._status_overrides[url], text="")
        for prefix, handler in self._handlers:
            if url.startswith(prefix):
                response = handler(url)
                return response
        return SimulatedResponse(url=url, status=404, text="Not Found")

    def get_json(self, url: str) -> object:
        """Fetch a URL and parse its JSON body (raises on non-2xx)."""
        response = self.get(url)
        if not response.ok:
            raise HTTPError(url, f"HTTP {response.status}")
        return response.json()

    @property
    def request_count(self) -> int:
        """Number of requests issued so far."""
        return len(self.request_log)
