"""A simulated HTTP layer.

Servers register handlers for URL prefixes (or exact URLs); clients issue
``get`` requests and receive :class:`SimulatedResponse` objects.  The layer
also supports injected failures (per-URL status overrides and flaky-host error
rates), which the pipeline uses to reproduce crawl-time failures such as
unresponsive policy servers (Section 5.1.1) and removed GPTs (404 from the
gizmo API).

The layer is thread-safe and deterministic under concurrency: flaky-host
failures are drawn from a seeded hash of ``(seed, url, per-URL attempt
index)`` rather than a shared RNG stream, so whether the Nth request to a URL
fails does not depend on how worker threads interleave requests to *other*
URLs.  This is what lets the concurrent crawl engine produce bit-identical
corpora for a fixed seed regardless of worker count.
"""

from __future__ import annotations

import json
import random
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.web.urls import parse_url


class HTTPError(RuntimeError):
    """Raised for transport-level failures (connection refused, timeouts)."""

    def __init__(self, url: str, reason: str) -> None:
        super().__init__(f"{reason}: {url}")
        self.url = url
        self.reason = reason


@dataclass
class SimulatedResponse:
    """An HTTP response from the simulated network."""

    url: str
    status: int
    text: str = ""
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the response has a 2xx status."""
        return 200 <= self.status < 300

    def json(self) -> object:
        """Parse the body as JSON."""
        return json.loads(self.text)


#: A handler receives the full URL and returns a response.
Handler = Callable[[str], SimulatedResponse]

#: Default capacity of the recent-request ring buffer.
DEFAULT_RECENT_CAPACITY = 1024


class SimulatedHTTPLayer:
    """An in-memory HTTP transport with exact- and prefix-routed handlers.

    Parameters
    ----------
    seed:
        Seed for the deterministic flaky-host failure draws.
    recent_capacity:
        Size of the bounded ring buffer behind :meth:`recent_requests`.
        Request *counting* is always exact (a plain integer); only the
        retained URLs are capped, so multi-million-request crawls hold
        O(capacity) memory instead of O(requests).
    """

    def __init__(self, seed: int = 0,
                 recent_capacity: int = DEFAULT_RECENT_CAPACITY) -> None:
        self._handlers: List[Tuple[str, Handler]] = []
        self._exact_handlers: Dict[str, Handler] = {}
        self._status_overrides: Dict[str, int] = {}
        self._flaky_hosts: Dict[str, float] = {}
        self._seed = seed
        self._lock = threading.Lock()
        self._request_count = 0
        self._recent: Deque[str] = deque(maxlen=max(0, recent_capacity))
        self._url_attempts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Server-side registration
    # ------------------------------------------------------------------
    def register(self, url_prefix: str, handler: Handler) -> None:
        """Register a handler for all URLs starting with ``url_prefix``."""
        self._handlers.append((url_prefix, handler))
        # Longest prefixes win so that specific routes shadow generic ones.
        self._handlers.sort(key=lambda item: len(item[0]), reverse=True)

    def register_exact(self, url: str, handler: Handler) -> None:
        """Register a handler for one exact URL.

        Exact routes are consulted before the prefix scan and never act as
        prefixes themselves, so a document at ``…/policy`` cannot shadow a
        separately-registered ``…/policy/v2``.
        """
        self._exact_handlers[url] = handler

    def register_static(self, url: str, text: str, status: int = 200,
                        content_type: str = "text/html") -> None:
        """Register a static document at an exact URL."""

        def handler(request_url: str) -> SimulatedResponse:
            return SimulatedResponse(
                url=request_url,
                status=status,
                text=text,
                headers={"content-type": content_type},
            )

        self.register_exact(url, handler)

    def set_status_override(self, url: str, status: int) -> None:
        """Force a specific status code for an exact URL (e.g. 500, 404)."""
        self._status_overrides[url] = status

    def set_flaky_host(self, host: str, failure_rate: float) -> None:
        """Make a host fail (connection error) with the given probability.

        Failures are deterministic for a fixed layer seed: the Nth request to
        a given URL either always fails or always succeeds, independent of
        requests to other URLs.  This keeps seeded crawls reproducible even
        when requests are issued concurrently.
        """
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be within [0, 1]")
        self._flaky_hosts[host.lower()] = failure_rate

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def _flaky_draw(self, url: str, attempt: int) -> float:
        # String seeding hashes with SHA-512 under the hood, so draws are
        # stable across processes and independent per (url, attempt).
        return random.Random(f"{self._seed}:{url}:{attempt}").random()

    def get(self, url: str) -> SimulatedResponse:
        """Fetch a URL, raising :class:`HTTPError` for transport failures."""
        parsed = parse_url(url)
        failure_rate = self._flaky_hosts.get(parsed.host)
        with self._lock:
            self._request_count += 1
            self._recent.append(url)
            # Per-URL attempt indices are only tracked for flaky hosts (the
            # only consumer is the failure draw), so crawls over mostly
            # healthy hosts keep O(flaky URLs) memory, not O(URLs).
            if failure_rate:
                attempt = self._url_attempts.get(url, 0)
                self._url_attempts[url] = attempt + 1
        if failure_rate and self._flaky_draw(url, attempt) < failure_rate:
            raise HTTPError(url, "connection reset by peer")
        if url in self._status_overrides:
            return SimulatedResponse(url=url, status=self._status_overrides[url], text="")
        exact = self._exact_handlers.get(url)
        if exact is not None:
            return exact(url)
        for prefix, handler in self._handlers:
            if url.startswith(prefix):
                response = handler(url)
                return response
        return SimulatedResponse(url=url, status=404, text="Not Found")

    def get_json(self, url: str) -> object:
        """Fetch a URL and parse its JSON body (raises on non-2xx)."""
        response = self.get(url)
        if not response.ok:
            raise HTTPError(url, f"HTTP {response.status}")
        return response.json()

    @property
    def seed(self) -> int:
        """The seed behind the deterministic failure draws."""
        return self._seed

    @property
    def flaky_host_rates(self) -> Dict[str, float]:
        """Configured host → failure-rate map (for rebuilding the layer).

        The shard-partitioned crawl's process workers reconstruct the
        simulated network from the ecosystem plus this map, so failure
        injection configured on the coordinator's layer carries over.
        """
        return dict(self._flaky_hosts)

    @property
    def request_count(self) -> int:
        """Number of requests issued so far (exact, unbounded counter)."""
        return self._request_count

    def recent_requests(self, n: Optional[int] = None) -> List[str]:
        """The most recent request URLs, oldest first (capped ring buffer)."""
        with self._lock:
            recent = list(self._recent)
        if n is not None:
            return recent[-n:] if n > 0 else []
        return recent

    @property
    def request_log(self) -> List[str]:
        """Backwards-compatible view of :meth:`recent_requests`.

        Unlike the pre-engine implementation this is *bounded* — it holds at
        most ``recent_capacity`` URLs; use :attr:`request_count` for totals.
        """
        return self.recent_requests()
