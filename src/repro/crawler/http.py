"""A simulated HTTP layer.

Servers register handlers for URL prefixes (or exact URLs); clients issue
``get`` requests and receive :class:`SimulatedResponse` objects.  The layer
also supports injected failures (per-URL status overrides and flaky-host error
rates), which the pipeline uses to reproduce crawl-time failures such as
unresponsive policy servers (Section 5.1.1) and removed GPTs (404 from the
gizmo API).

The layer is thread-safe and deterministic under concurrency: flaky-host
failures are drawn from a seeded hash of ``(seed, url, per-URL attempt
index)`` rather than a shared RNG stream, so whether the Nth request to a URL
fails does not depend on how worker threads interleave requests to *other*
URLs.  This is what lets the concurrent crawl engine produce bit-identical
corpora for a fixed seed regardless of worker count.

Beyond flaky errors and static status overrides, the layer models four
*adversarial host* behaviors (ROADMAP item 5a — the hostile-web half of the
paper's Section 5.1.1 failure landscape), all keyed by the same seeded
``(seed, url, attempt)`` draws so hostile crawls stay reproducible:

* **redirect chains and loops** (:meth:`set_redirect_chain`,
  :meth:`set_redirect_loop`) — every URL on the host answers with a 3xx +
  ``Location`` chain of synthesized hop URLs; loops never terminate and must
  be detected by the client;
* **429 rate-limit storms** (:meth:`set_rate_limit_storm`) — the first
  ``burst`` requests to each URL return 429 with a ``Retry-After`` header;
* **heavy-tailed latency** (:meth:`set_host_latency`) — each response
  reports a simulated service time via the ``x-simulated-latency-s`` header
  (or the ``simulated_latency_s`` attribute on :class:`HTTPError`); the
  layer never sleeps, so clients charge the reported time against their own
  deadline budget and wall-clock stays interleaving-independent;
* **content flapping** (:meth:`set_flapping_host`) — repeat visits to the
  same URL serve different policy revisions (a deterministic variant marker
  per attempt).

Hostile behaviors are exportable as a plain-JSON spec (:attr:`hostile_spec`
/ :meth:`apply_hostile_spec`) so process workers can rebuild an identical
network from the ecosystem alone.
"""

from __future__ import annotations

import json
import random
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.web.urls import parse_url


class HTTPError(RuntimeError):
    """Raised for transport-level failures (connection refused, timeouts)."""

    def __init__(self, url: str, reason: str) -> None:
        super().__init__(f"{reason}: {url}")
        self.url = url
        self.reason = reason


@dataclass
class SimulatedResponse:
    """An HTTP response from the simulated network."""

    url: str
    status: int
    text: str = ""
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the response has a 2xx status."""
        return 200 <= self.status < 300

    def json(self) -> object:
        """Parse the body as JSON."""
        return json.loads(self.text)


#: A handler receives the full URL and returns a response.
Handler = Callable[[str], SimulatedResponse]

#: Default capacity of the recent-request ring buffer.
DEFAULT_RECENT_CAPACITY = 1024


class SimulatedHTTPLayer:
    """An in-memory HTTP transport with exact- and prefix-routed handlers.

    Parameters
    ----------
    seed:
        Seed for the deterministic flaky-host failure draws.
    recent_capacity:
        Size of the bounded ring buffer behind :meth:`recent_requests`.
        Request *counting* is always exact (a plain integer); only the
        retained URLs are capped, so multi-million-request crawls hold
        O(capacity) memory instead of O(requests).
    """

    def __init__(self, seed: int = 0,
                 recent_capacity: int = DEFAULT_RECENT_CAPACITY) -> None:
        self._handlers: List[Tuple[str, Handler]] = []
        self._exact_handlers: Dict[str, Handler] = {}
        self._status_overrides: Dict[str, int] = {}
        self._flaky_hosts: Dict[str, float] = {}
        self._redirect_hosts: Dict[str, Dict[str, int]] = {}
        self._ratelimit_hosts: Dict[str, Dict[str, float]] = {}
        self._latency_hosts: Dict[str, Dict[str, float]] = {}
        self._flapping_hosts: Dict[str, int] = {}
        self._seed = seed
        self._lock = threading.Lock()
        self._request_count = 0
        self._recent: Deque[str] = deque(maxlen=max(0, recent_capacity))
        self._url_attempts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Server-side registration
    # ------------------------------------------------------------------
    def register(self, url_prefix: str, handler: Handler) -> None:
        """Register a handler for all URLs starting with ``url_prefix``."""
        self._handlers.append((url_prefix, handler))
        # Longest prefixes win so that specific routes shadow generic ones.
        self._handlers.sort(key=lambda item: len(item[0]), reverse=True)

    def register_exact(self, url: str, handler: Handler) -> None:
        """Register a handler for one exact URL.

        Exact routes are consulted before the prefix scan and never act as
        prefixes themselves, so a document at ``…/policy`` cannot shadow a
        separately-registered ``…/policy/v2``.
        """
        self._exact_handlers[url] = handler

    def register_static(self, url: str, text: str, status: int = 200,
                        content_type: str = "text/html") -> None:
        """Register a static document at an exact URL."""

        def handler(request_url: str) -> SimulatedResponse:
            return SimulatedResponse(
                url=request_url,
                status=status,
                text=text,
                headers={"content-type": content_type},
            )

        self.register_exact(url, handler)

    def set_status_override(self, url: str, status: int) -> None:
        """Force a specific status code for an exact URL (e.g. 500, 404)."""
        self._status_overrides[url] = status

    def set_flaky_host(self, host: str, failure_rate: float) -> None:
        """Make a host fail (connection error) with the given probability.

        Failures are deterministic for a fixed layer seed: the Nth request to
        a given URL either always fails or always succeeds, independent of
        requests to other URLs.  This keeps seeded crawls reproducible even
        when requests are issued concurrently.
        """
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be within [0, 1]")
        self._flaky_hosts[host.lower()] = failure_rate

    def set_redirect_chain(self, host: str, hops: int = 2) -> None:
        """Make every URL on a host answer with a ``hops``-long 302 chain.

        The chain visits synthesized hop URLs (``…?__hop=k``) on the same
        host; the final hop serves the content the base URL would have
        served.  A client that follows redirects loses nothing; one that
        does not sees only 302s.
        """
        if hops < 1:
            raise ValueError("hops must be at least 1")
        self._redirect_hosts[host.lower()] = {"hops": int(hops), "loop": 0}

    def set_redirect_loop(self, host: str, period: int = 3) -> None:
        """Make every URL on a host redirect in an endless ``period``-cycle.

        The chain never reaches content: after ``period`` hops the
        ``Location`` points back at the first hop, so only loop detection
        (not a larger redirect budget) can save the client.
        """
        if period < 1:
            raise ValueError("period must be at least 1")
        self._redirect_hosts[host.lower()] = {"hops": int(period), "loop": 1}

    def set_rate_limit_storm(self, host: str, burst: int = 3,
                             retry_after_s: float = 0.0) -> None:
        """Return 429 for the first ``burst`` requests to each URL on a host.

        Each 429 carries a ``Retry-After`` header advertising
        ``retry_after_s`` seconds.  The storm is per-URL, so the (burst+1)th
        request to a given URL succeeds regardless of traffic to other URLs
        — which keeps the behavior deterministic under concurrency.
        """
        if burst < 1:
            raise ValueError("burst must be at least 1")
        if retry_after_s < 0:
            raise ValueError("retry_after_s must be non-negative")
        self._ratelimit_hosts[host.lower()] = {
            "burst": int(burst), "retry_after_s": float(retry_after_s),
        }

    def set_host_latency(self, host: str, base_s: float,
                         tail_s: float = 0.0, tail_p: float = 0.0) -> None:
        """Give a host a (possibly heavy-tailed) simulated service time.

        With probability ``tail_p`` — drawn deterministically per
        ``(url, attempt)`` — a request costs ``base_s + tail_s`` instead of
        ``base_s``.  The layer does not sleep; it *reports* the cost via the
        ``x-simulated-latency-s`` response header (or the
        ``simulated_latency_s`` attribute of a raised :class:`HTTPError`) so
        clients can charge it against a deadline budget without wall-clock
        time entering any decision.
        """
        if base_s < 0 or tail_s < 0:
            raise ValueError("latencies must be non-negative")
        if not 0.0 <= tail_p <= 1.0:
            raise ValueError("tail_p must be within [0, 1]")
        self._latency_hosts[host.lower()] = {
            "base_s": float(base_s), "tail_s": float(tail_s),
            "tail_p": float(tail_p),
        }

    def set_flapping_host(self, host: str, variants: int = 2) -> None:
        """Make a host serve a different policy revision on repeat visits.

        Successful responses gain a deterministic ``<!-- policy-rev N -->``
        marker where ``N`` is drawn per ``(url, attempt)`` from ``variants``
        possibilities, modeling hosts that flap content between visits.
        """
        if variants < 2:
            raise ValueError("variants must be at least 2")
        self._flapping_hosts[host.lower()] = int(variants)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def _flaky_draw(self, url: str, attempt: int) -> float:
        # String seeding hashes with SHA-512 under the hood, so draws are
        # stable across processes and independent per (url, attempt).
        return random.Random(f"{self._seed}:{url}:{attempt}").random()

    def _behavior_draw(self, kind: str, url: str, attempt: int) -> float:
        # Separate key-space from the flaky draw so enabling a new behavior
        # on a host never perturbs existing failure schedules.
        return random.Random(f"{self._seed}:{kind}:{url}:{attempt}").random()

    @staticmethod
    def _hop_url(base: str, hop: int) -> str:
        sep = "&" if "?" in base else "?"
        return f"{base}{sep}__hop={hop}"

    @staticmethod
    def _split_hop(url: str) -> Tuple[str, int]:
        """Split a synthesized redirect-hop URL into ``(base, hop_index)``."""
        for sep in ("&__hop=", "?__hop="):
            idx = url.rfind(sep)
            if idx == -1:
                continue
            try:
                hop = int(url[idx + len(sep):])
            except ValueError:
                continue
            return url[:idx], hop
        return url, 0

    def _dispatch(self, url: str) -> SimulatedResponse:
        """Route a URL to its override/exact/prefix handler (no behaviors)."""
        if url in self._status_overrides:
            return SimulatedResponse(url=url, status=self._status_overrides[url], text="")
        exact = self._exact_handlers.get(url)
        if exact is not None:
            return exact(url)
        for prefix, handler in self._handlers:
            if url.startswith(prefix):
                return handler(url)
        return SimulatedResponse(url=url, status=404, text="Not Found")

    @staticmethod
    def _with_latency(response: SimulatedResponse,
                      latency_s: float) -> SimulatedResponse:
        if latency_s > 0:
            response.headers["x-simulated-latency-s"] = f"{latency_s:g}"
        return response

    def get(self, url: str) -> SimulatedResponse:
        """Fetch a URL, raising :class:`HTTPError` for transport failures."""
        parsed = parse_url(url)
        host = parsed.host
        failure_rate = self._flaky_hosts.get(host)
        ratelimit = self._ratelimit_hosts.get(host)
        latency = self._latency_hosts.get(host)
        flapping = self._flapping_hosts.get(host)
        tracked = bool(failure_rate or ratelimit or latency or flapping)
        attempt = 0
        with self._lock:
            self._request_count += 1
            self._recent.append(url)
            # Per-URL attempt indices are only tracked for hosts with
            # attempt-dependent behavior (flaky draws, 429 bursts, latency
            # tails, content flapping), so crawls over mostly healthy hosts
            # keep O(misbehaving URLs) memory, not O(URLs).
            if tracked:
                attempt = self._url_attempts.get(url, 0)
                self._url_attempts[url] = attempt + 1
        latency_s = 0.0
        if latency is not None:
            latency_s = latency["base_s"]
            if (latency["tail_p"] > 0
                    and self._behavior_draw("latency", url, attempt) < latency["tail_p"]):
                latency_s += latency["tail_s"]
        if failure_rate and self._flaky_draw(url, attempt) < failure_rate:
            error = HTTPError(url, "connection reset by peer")
            error.simulated_latency_s = latency_s
            raise error
        if ratelimit is not None and attempt < int(ratelimit["burst"]):
            response = SimulatedResponse(
                url=url, status=429, text="rate limited",
                headers={"retry-after": f"{ratelimit['retry_after_s']:g}"},
            )
            return self._with_latency(response, latency_s)
        redirect = self._redirect_hosts.get(host)
        if redirect is not None:
            base, hop = self._split_hop(url)
            period = int(redirect["hops"])
            if hop < period:
                target = self._hop_url(base, hop + 1)
            elif redirect["loop"]:
                # Endless cycle: the terminal hop points back at hop 1.
                target = self._hop_url(base, 1)
            else:
                target = None
            if target is not None:
                response = SimulatedResponse(
                    url=url, status=302, text="",
                    headers={"location": target},
                )
                return self._with_latency(response, latency_s)
            # Terminal hop of a finite chain: serve the base URL's content
            # directly (routing back to the base URL would look like a loop
            # to any redirect-following client).
            response = self._dispatch(base)
        else:
            response = self._dispatch(url)
        if flapping and response.ok:
            variant = int(self._behavior_draw("flap", url, attempt) * flapping)
            response = SimulatedResponse(
                url=response.url, status=response.status,
                text=f"{response.text}\n<!-- policy-rev {variant} -->",
                headers=dict(response.headers),
            )
        return self._with_latency(response, latency_s)

    def get_json(self, url: str) -> object:
        """Fetch a URL and parse its JSON body (raises on non-2xx)."""
        response = self.get(url)
        if not response.ok:
            raise HTTPError(url, f"HTTP {response.status}")
        return response.json()

    @property
    def seed(self) -> int:
        """The seed behind the deterministic failure draws."""
        return self._seed

    @property
    def flaky_host_rates(self) -> Dict[str, float]:
        """Configured host → failure-rate map (for rebuilding the layer).

        The shard-partitioned crawl's process workers reconstruct the
        simulated network from the ecosystem plus this map, so failure
        injection configured on the coordinator's layer carries over.
        """
        return dict(self._flaky_hosts)

    @property
    def hostile_spec(self) -> Dict[str, Dict[str, object]]:
        """Configured adversarial behaviors as a plain-JSON spec.

        Like :attr:`flaky_host_rates`, this exists so shard workers in other
        processes can rebuild a byte-identical hostile network via
        :meth:`apply_hostile_spec`.  Empty sub-maps mean the behavior is
        unused.
        """
        return {
            "redirect": {h: dict(c) for h, c in self._redirect_hosts.items()},
            "ratelimit": {h: dict(c) for h, c in self._ratelimit_hosts.items()},
            "latency": {h: dict(c) for h, c in self._latency_hosts.items()},
            "flapping": dict(self._flapping_hosts),
        }

    def apply_hostile_spec(self, spec: Dict[str, Dict[str, object]]) -> None:
        """Install the behaviors captured by :attr:`hostile_spec`."""
        for host, cfg in (spec.get("redirect") or {}).items():
            if cfg.get("loop"):
                self.set_redirect_loop(host, int(cfg.get("hops", 3)))
            else:
                self.set_redirect_chain(host, int(cfg.get("hops", 2)))
        for host, cfg in (spec.get("ratelimit") or {}).items():
            self.set_rate_limit_storm(
                host, int(cfg["burst"]), float(cfg.get("retry_after_s", 0.0)))
        for host, cfg in (spec.get("latency") or {}).items():
            self.set_host_latency(
                host, float(cfg["base_s"]), float(cfg.get("tail_s", 0.0)),
                float(cfg.get("tail_p", 0.0)))
        for host, variants in (spec.get("flapping") or {}).items():
            self.set_flapping_host(host, int(variants))

    @property
    def has_hostile_hosts(self) -> bool:
        """Whether any adversarial behavior is configured."""
        return bool(self._redirect_hosts or self._ratelimit_hosts
                    or self._latency_hosts or self._flapping_hosts)

    @property
    def request_count(self) -> int:
        """Number of requests issued so far (exact, unbounded counter)."""
        return self._request_count

    def recent_requests(self, n: Optional[int] = None) -> List[str]:
        """The most recent request URLs, oldest first (capped ring buffer)."""
        with self._lock:
            recent = list(self._recent)
        if n is not None:
            return recent[-n:] if n > 0 else []
        return recent

    @property
    def request_log(self) -> List[str]:
        """Backwards-compatible view of :meth:`recent_requests`.

        Unlike the pre-engine implementation this is *bounded* — it holds at
        most ``recent_capacity`` URLs; use :attr:`request_count` for totals.
        """
        return self.recent_requests()
