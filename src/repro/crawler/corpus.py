"""The crawled measurement corpus.

A :class:`CrawlCorpus` contains only what a crawler could observe: manifest
JSON documents (parsed into :class:`CrawledGPT` / :class:`CrawledAction`),
fetched privacy-policy documents, and per-store crawl statistics.  It contains
no generator ground truth, so every analysis that runs on it exercises the same
inference steps the paper performs on live data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.crawler.policy_fetcher import PolicyFetchResult
from repro.web.urls import url_host


@dataclass
class CrawledAction:
    """An Action as reconstructed from a crawled GPT manifest."""

    action_id: str
    title: str
    description: str
    server_url: str
    legal_info_url: Optional[str]
    functionality: str
    auth_type: str
    #: ``(parameter name, parameter description)`` pairs across all endpoints.
    parameters: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def domain(self) -> str:
        """The API server host of the Action."""
        return url_host(self.server_url)

    def data_descriptions(self) -> List[str]:
        """Combined name-and-description strings for every parameter.

        Mirrors :meth:`repro.ecosystem.models.ActionParameter.name_and_description`
        but works from the crawled representation.
        """
        descriptions: List[str] = []
        for name, description in self.parameters:
            text = (description or "").strip()
            if not text or text.lower() in ("null", "none", "n/a", "-"):
                descriptions.append(name)
            else:
                descriptions.append(f"{name}: {text}")
        return descriptions

    @classmethod
    def from_manifest_tool(cls, tool: Mapping[str, object]) -> "CrawledAction":
        """Parse an Action from a manifest ``tools`` entry."""
        metadata = tool.get("metadata", {}) or {}
        spec = tool.get("json_spec", {}) or {}
        info = spec.get("info", {}) if isinstance(spec, Mapping) else {}
        servers = spec.get("servers", []) if isinstance(spec, Mapping) else []
        server_url = ""
        if servers and isinstance(servers, list) and isinstance(servers[0], Mapping):
            server_url = str(servers[0].get("url", ""))
        parameters: List[Tuple[str, str]] = []
        paths = spec.get("paths", {}) if isinstance(spec, Mapping) else {}
        if isinstance(paths, Mapping):
            for path_item in paths.values():
                if not isinstance(path_item, Mapping):
                    continue
                for operation in path_item.values():
                    if not isinstance(operation, Mapping):
                        continue
                    for parameter in operation.get("parameters", []) or []:
                        if isinstance(parameter, Mapping):
                            parameters.append(
                                (
                                    str(parameter.get("name", "")),
                                    str(parameter.get("description", "")),
                                )
                            )
        return cls(
            action_id=str(tool.get("id", "")),
            title=str(info.get("title", "")) if isinstance(info, Mapping) else "",
            description=str(info.get("description", "")) if isinstance(info, Mapping) else "",
            server_url=server_url,
            legal_info_url=(
                str(metadata.get("privacy_policy_url"))
                if isinstance(metadata, Mapping) and metadata.get("privacy_policy_url")
                else None
            ),
            functionality=(
                str(metadata.get("functionality", "")) if isinstance(metadata, Mapping) else ""
            ),
            auth_type=(
                str((metadata.get("auth") or {}).get("type", "none"))
                if isinstance(metadata, Mapping) and isinstance(metadata.get("auth"), Mapping)
                else "none"
            ),
            parameters=parameters,
        )


@dataclass
class CrawledGPT:
    """A GPT as reconstructed from its crawled manifest."""

    gpt_id: str
    name: str
    description: str
    author_name: str
    author_website: Optional[str]
    vendor_domain: Optional[str]
    tags: List[str] = field(default_factory=list)
    tool_types: List[str] = field(default_factory=list)
    actions: List[CrawledAction] = field(default_factory=list)
    n_files: int = 0
    source_stores: List[str] = field(default_factory=list)

    @property
    def has_actions(self) -> bool:
        """Whether the GPT embeds at least one Action."""
        return bool(self.actions)

    def has_tool(self, tool_type: str) -> bool:
        """Whether the GPT enables a tool type (manifest ``type`` string)."""
        return tool_type in self.tool_types

    @classmethod
    def from_manifest(
        cls, manifest: Mapping[str, object], source_store: Optional[str] = None
    ) -> "CrawledGPT":
        """Parse a gizmo manifest JSON document."""
        gizmo = manifest.get("gizmo", {}) or {}
        display = gizmo.get("display", {}) if isinstance(gizmo, Mapping) else {}
        author = gizmo.get("author", {}) if isinstance(gizmo, Mapping) else {}
        tools = manifest.get("tools", []) or []
        tool_types: List[str] = []
        actions: List[CrawledAction] = []
        for tool in tools:
            if not isinstance(tool, Mapping):
                continue
            tool_type = str(tool.get("type", ""))
            tool_types.append(tool_type)
            if tool_type.startswith("action"):
                actions.append(CrawledAction.from_manifest_tool(tool))
        return cls(
            gpt_id=str(gizmo.get("id", "")) if isinstance(gizmo, Mapping) else "",
            name=str(display.get("name", "")) if isinstance(display, Mapping) else "",
            description=(
                str(display.get("description", "")) if isinstance(display, Mapping) else ""
            ),
            author_name=str(author.get("display_name", "")) if isinstance(author, Mapping) else "",
            author_website=(
                str(author.get("link_to")) if isinstance(author, Mapping) and author.get("link_to") else None
            ),
            vendor_domain=(
                str(gizmo.get("vendor_domain"))
                if isinstance(gizmo, Mapping) and gizmo.get("vendor_domain")
                else None
            ),
            tags=[str(tag) for tag in (gizmo.get("tags", []) if isinstance(gizmo, Mapping) else [])],
            tool_types=tool_types,
            actions=actions,
            n_files=len(manifest.get("files", []) or []),
            source_stores=[source_store] if source_store else [],
        )


@dataclass
class CrawlCorpus:
    """Everything a crawl produced."""

    gpts: Dict[str, CrawledGPT] = field(default_factory=dict)
    policies: Dict[str, PolicyFetchResult] = field(default_factory=dict)
    #: Store name → number of GPTs successfully crawled from that store.
    store_counts: Dict[str, int] = field(default_factory=dict)
    #: Store name → number of listing links collected from that store.
    store_link_counts: Dict[str, int] = field(default_factory=dict)
    #: GPT identifiers that failed to resolve on the gizmo API.
    unresolved_gpt_ids: List[str] = field(default_factory=list)
    #: GPT id → global discovery index: the identifier's position in the
    #: coordinator's listing order.  Unresolved identifiers consume an
    #: index too, so indices may have holes.  Stamped by the crawl
    #: pipeline (and by ``ShardedCorpusStore.load_corpus``); empty on
    #: hand-built corpora, where insertion order is the discovery order.
    discovery_indices: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Incremental merging (used by the crawl engine's stages, and for
    # combining shard corpora from partitioned crawls)
    # ------------------------------------------------------------------
    def merge_listing(self, store_name: str, n_links: int) -> None:
        """Record the listing crawl of one store."""
        self.store_link_counts[store_name] = (
            self.store_link_counts.get(store_name, 0) + n_links
        )

    def merge_gpt(self, gpt: CrawledGPT, discovery_index: Optional[int] = None) -> None:
        """Add one resolved GPT, updating per-store success counts."""
        if discovery_index is not None:
            self.discovery_indices[gpt.gpt_id] = discovery_index
        previous = self.gpts.get(gpt.gpt_id)
        if previous is not None:
            # Re-crawled GPT: retract the old store attribution first.
            for store in previous.source_stores:
                remaining = self.store_counts.get(store, 0) - 1
                if remaining > 0:
                    self.store_counts[store] = remaining
                else:
                    self.store_counts.pop(store, None)
        self.gpts[gpt.gpt_id] = gpt
        for store in gpt.source_stores:
            self.store_counts[store] = self.store_counts.get(store, 0) + 1

    def merge_unresolved(self, gpt_id: str) -> None:
        """Record an identifier that failed to resolve."""
        if gpt_id not in self.unresolved_gpt_ids:
            self.unresolved_gpt_ids.append(gpt_id)

    def merge_policy(self, url: str, result: PolicyFetchResult) -> None:
        """Record the fetch outcome for one policy URL."""
        self.policies[url] = result

    def merge(self, other: "CrawlCorpus") -> None:
        """Fold another corpus (e.g. a crawl shard) into this one."""
        for store, n_links in other.store_link_counts.items():
            self.merge_listing(store, n_links)
        for gpt in other.iter_gpts():
            self.merge_gpt(gpt, discovery_index=other.discovery_indices.get(gpt.gpt_id))
        for gpt_id in other.unresolved_gpt_ids:
            self.merge_unresolved(gpt_id)
        for url, result in other.policies.items():
            self.merge_policy(url, result)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.gpts)

    def iter_gpts(self) -> Iterator[CrawledGPT]:
        """Iterate over crawled GPTs."""
        return iter(self.gpts.values())

    # ------------------------------------------------------------------
    # CorpusSource protocol (see repro.io.CorpusSource)
    # ------------------------------------------------------------------
    def iter_records(self) -> Iterator[CrawledGPT]:
        """Stream every GPT record in discovery order.

        Insertion order *is* discovery order for a crawled corpus (the
        pipeline merges resolve results in listing order), so this is
        plain dict iteration.
        """
        return iter(self.gpts.values())

    def iter_shard(self, index: int) -> Iterator[CrawledGPT]:
        """Stream one shard's records: an in-memory corpus is one shard."""
        if index != 0:
            raise IndexError(f"in-memory corpus has exactly one shard, not {index + 1}")
        return iter(self.gpts.values())

    @property
    def n_shards(self) -> int:
        """An in-memory corpus always presents as a single shard."""
        return 1

    @property
    def n_records(self) -> int:
        """Total GPT records."""
        return len(self.gpts)

    def fingerprint(self) -> str:
        """Content address of the corpus (records + policies + metadata)."""
        # Imported lazily: repro.io.corpus imports this module.
        from repro.io.artifacts import config_fingerprint
        from repro.io.corpus import corpus_to_payload, policies_to_payload

        return config_fingerprint(
            {"corpus": corpus_to_payload(self), "policies": policies_to_payload(self)}
        )

    def action_embedding_gpts(self) -> List[CrawledGPT]:
        """GPTs that embed at least one Action."""
        return [gpt for gpt in self.gpts.values() if gpt.has_actions]

    def unique_actions(self) -> Dict[str, CrawledAction]:
        """Distinct Actions across the corpus, keyed by action id."""
        actions: Dict[str, CrawledAction] = {}
        for gpt in self.gpts.values():
            for action in gpt.actions:
                actions.setdefault(action.action_id, action)
        return actions

    def n_unique_actions(self) -> int:
        """Number of distinct Actions."""
        return len(self.unique_actions())

    def policy_text(self, url: Optional[str]) -> Optional[str]:
        """The fetched text of a policy URL (``None`` when unavailable)."""
        if not url:
            return None
        result = self.policies.get(url)
        if result is None or not result.ok:
            return None
        return result.text

    def policy_availability(self) -> float:
        """Fraction of Actions with a ``legal_info_url`` whose policy was retrieved."""
        total = 0
        available = 0
        for action in self.unique_actions().values():
            if not action.legal_info_url:
                continue
            total += 1
            if self.policy_text(action.legal_info_url) is not None:
                available += 1
        return available / total if total else 0.0

    def total_unique_gpts(self) -> int:
        """Number of unique GPTs successfully crawled."""
        return len(self.gpts)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"CrawlCorpus: {len(self.gpts)} GPTs from {len(self.store_counts)} stores, "
            f"{self.n_unique_actions()} unique Actions, {len(self.policies)} policy URLs fetched"
        )
