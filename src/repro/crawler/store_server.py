"""Simulated GPT store servers.

Each store publishes paginated HTML listing pages of the GPTs it indexes,
mirroring the third-party GPT indices the paper crawls (Table 1).  The two
pagination styles the paper's crawlers had to handle — numbered pagination and
"load more" style cursors — are both supported so the crawler's navigation
logic is genuinely exercised.
"""

from __future__ import annotations

import html
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.crawler.http import SimulatedHTTPLayer, SimulatedResponse
from repro.ecosystem.models import StoreListing
from repro.ecosystem.stores import store_domain


@dataclass
class GPTStoreServer:
    """One GPT store serving paginated listing pages.

    Parameters
    ----------
    name:
        Store name (e.g. ``"plugin.surf"``).
    listings:
        The GPT listings this store indexes.
    page_size:
        Listings per page.
    pagination_style:
        ``"numbered"`` (``?page=N`` links) or ``"cursor"`` (``?after=<id>``
        "load more" links).
    """

    name: str
    listings: List[StoreListing]
    page_size: int = 50
    pagination_style: str = "numbered"

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if self.pagination_style not in ("numbered", "cursor"):
            raise ValueError("pagination_style must be 'numbered' or 'cursor'")

    @property
    def domain(self) -> str:
        """The store's web domain."""
        return store_domain(self.name)

    @property
    def base_url(self) -> str:
        """URL of the store's first listing page."""
        return f"https://{self.domain}/gpts"

    @property
    def n_pages(self) -> int:
        """Number of listing pages."""
        if not self.listings:
            return 1
        return math.ceil(len(self.listings) / self.page_size)

    # ------------------------------------------------------------------
    def install(self, http: SimulatedHTTPLayer) -> None:
        """Register this store's routes on the HTTP layer."""
        http.register(self.base_url, self._handle)

    def _page_for(self, url: str) -> int:
        from repro.web.urls import parse_url

        params = parse_url(url).query_params()
        if self.pagination_style == "numbered":
            try:
                return max(1, int(params.get("page", "1")))
            except ValueError:
                return 1
        cursor = params.get("after")
        if not cursor:
            return 1
        for index, listing in enumerate(self.listings):
            if listing.gpt_id == cursor:
                return index // self.page_size + 2
        return self.n_pages + 1

    def _handle(self, url: str) -> SimulatedResponse:
        page = self._page_for(url)
        start = (page - 1) * self.page_size
        chunk = self.listings[start:start + self.page_size]
        return SimulatedResponse(
            url=url,
            status=200,
            text=self.render_page(page, chunk),
            headers={"content-type": "text/html"},
        )

    # ------------------------------------------------------------------
    def render_page(self, page: int, chunk: Sequence[StoreListing]) -> str:
        """Render one listing page as HTML."""
        items = "\n".join(
            f'  <li class="gpt-card"><a class="gpt-link" href="{html.escape(listing.link)}">'
            f"{html.escape(listing.title)}</a></li>"
            for listing in chunk
        )
        navigation = self._render_navigation(page, chunk)
        return (
            f"<html><head><title>{html.escape(self.name)} — GPT directory</title></head>\n"
            f"<body>\n<h1>{html.escape(self.name)}</h1>\n"
            f'<ul class="gpt-list">\n{items}\n</ul>\n{navigation}\n</body></html>'
        )

    def _render_navigation(self, page: int, chunk: Sequence[StoreListing]) -> str:
        if self.pagination_style == "numbered":
            if page < self.n_pages:
                return f'<a class="next-page" href="{self.base_url}?page={page + 1}">Next page</a>'
            return '<span class="end-of-list">End of list</span>'
        if chunk and (page * self.page_size) < len(self.listings):
            cursor = chunk[-1].gpt_id
            return (
                f'<a class="load-more" href="{self.base_url}?after={cursor}">Load more GPTs</a>'
            )
        return '<span class="end-of-list">End of list</span>'


def install_store_servers(
    http: SimulatedHTTPLayer,
    store_listings: Dict[str, List[StoreListing]],
    page_size: int = 50,
) -> List[GPTStoreServer]:
    """Create and install one store server per store.

    Stores alternate between numbered and cursor pagination so both crawler
    navigation paths get exercised.
    """
    servers: List[GPTStoreServer] = []
    for index, (name, listings) in enumerate(store_listings.items()):
        server = GPTStoreServer(
            name=name,
            listings=list(listings),
            page_size=page_size,
            pagination_style="numbered" if index % 2 == 0 else "cursor",
        )
        server.install(http)
        servers.append(server)
    return servers
