"""Seeded hostile-host scenario installer for the simulated web.

The paper's crawl had to survive actively misbehaving policy servers
(Section 5.1.1); ROADMAP item 5(a) calls for reproducing that landscape:
redirect loops, 429 rate-limit storms, heavy-tailed (tarpit) latency, and
hosts that flap content between visits.  :func:`install_hostile_hosts`
assigns those behaviors to a deterministic, *disjoint* subset of an
ecosystem's policy hosts — never store or gizmo-API hosts, and never hosts
already configured flaky — so a hostile crawl degrades on exactly the hosts
the spec names and nowhere else.

Determinism: the host assignment is a seeded shuffle of the sorted policy
host list, and every behavior the layer then exhibits is a pure function of
``(seed, url, attempt)``; combined with the deadline-aware transport this
keeps hostile crawls byte-identical across execution backends, worker
counts, and kill+resume.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.crawler.http import SimulatedHTTPLayer
from repro.ecosystem.models import SyntheticEcosystem
from repro.web.urls import url_host

#: Role names, in assignment order (slices of the shuffled host list).
HOSTILE_ROLES = ("redirect-chain", "redirect-loop", "ratelimit", "tarpit", "flapping")

#: Default hostile-web battery: a couple of hosts per role, tuned so the
#: default transport (with a small deadline) resolves every record on the
#: chain/ratelimit/flapping hosts and quarantines the loop hosts visibly.
DEFAULT_HOSTILE_SPEC: Dict[str, object] = {
    "redirect_chain_hosts": 2,
    "redirect_hops": 2,
    "redirect_loop_hosts": 2,
    "redirect_loop_period": 3,
    "ratelimit_hosts": 2,
    "ratelimit_burst": 3,
    "retry_after_s": 0.002,
    "tarpit_hosts": 2,
    "tarpit_base_s": 0.001,
    "tarpit_tail_s": 0.05,
    "tarpit_tail_p": 0.25,
    "flapping_hosts": 2,
    "flapping_variants": 3,
}


def _protected_hosts(ecosystem: SyntheticEcosystem) -> set:
    """Hosts the crawl cannot afford to lose: stores and the gizmo API."""
    protected = {"chat.openai.com"}
    for listings in ecosystem.store_listings.values():
        for listing in listings:
            host = url_host(listing.link)
            if host:
                protected.add(host)
    return protected


def hostile_host_candidates(http: SimulatedHTTPLayer,
                            ecosystem: SyntheticEcosystem) -> List[str]:
    """Policy hosts eligible for a hostile role, sorted for determinism.

    Store/gizmo hosts are excluded (hostility there would break the crawl
    frontier itself, not degrade it), as are hosts already configured flaky
    — roles stay disjoint so each host fails in exactly one describable way.
    """
    protected = _protected_hosts(ecosystem)
    flaky = set(http.flaky_host_rates)
    hosts = {
        url_host(url)
        for url in ecosystem.policies
    }
    return sorted(h for h in hosts if h and h not in protected and h not in flaky)


def install_hostile_hosts(
    http: SimulatedHTTPLayer,
    ecosystem: SyntheticEcosystem,
    spec: Optional[Dict[str, object]] = None,
    seed: int = 0,
) -> Dict[str, List[str]]:
    """Install the hostile-host battery on a simulated network.

    Parameters
    ----------
    http:
        The layer serving ``ecosystem`` (e.g. built by
        ``CrawlPipeline.from_ecosystem``).
    ecosystem:
        The generating ecosystem (identifies policy hosts and the hosts
        that must stay healthy).
    spec:
        Role counts and behavior parameters; missing keys fall back to
        :data:`DEFAULT_HOSTILE_SPEC`.  Counts are clamped to the available
        candidate hosts (each host gets at most one role).
    seed:
        Seed for the role-assignment shuffle (independent of the layer's
        own draw seed).

    Returns
    -------
    The role → assigned hosts map (roles with zero hosts included), so
    callers and tests can assert exactly which hosts degrade.
    """
    merged = dict(DEFAULT_HOSTILE_SPEC)
    merged.update(spec or {})
    candidates = hostile_host_candidates(http, ecosystem)
    random.Random(f"hostile:{seed}").shuffle(candidates)

    assignment: Dict[str, List[str]] = {role: [] for role in HOSTILE_ROLES}
    cursor = 0
    for role, count_key in (
        ("redirect-chain", "redirect_chain_hosts"),
        ("redirect-loop", "redirect_loop_hosts"),
        ("ratelimit", "ratelimit_hosts"),
        ("tarpit", "tarpit_hosts"),
        ("flapping", "flapping_hosts"),
    ):
        count = max(0, int(merged[count_key]))
        assignment[role] = candidates[cursor:cursor + count]
        cursor += count

    for host in assignment["redirect-chain"]:
        http.set_redirect_chain(host, hops=int(merged["redirect_hops"]))
    for host in assignment["redirect-loop"]:
        http.set_redirect_loop(host, period=int(merged["redirect_loop_period"]))
    for host in assignment["ratelimit"]:
        http.set_rate_limit_storm(
            host,
            burst=int(merged["ratelimit_burst"]),
            retry_after_s=float(merged["retry_after_s"]),
        )
    for host in assignment["tarpit"]:
        http.set_host_latency(
            host,
            base_s=float(merged["tarpit_base_s"]),
            tail_s=float(merged["tarpit_tail_s"]),
            tail_p=float(merged["tarpit_tail_p"]),
        )
    for host in assignment["flapping"]:
        http.set_flapping_host(host, variants=int(merged["flapping_variants"]))
    return assignment
