"""Store crawling over a simulated HTTP layer.

The paper crawls 13 GPT stores with per-store Selenium crawlers, resolves the
extracted GPT identifiers against OpenAI's ``gizmos`` backend API, and
downloads each Action's privacy policy (Section 3.1).  Offline, the same
crawl logic runs against :class:`SimulatedHTTPLayer`: store servers publish
paginated listing pages, the gizmo API serves manifests (or 404s for removed
GPTs), and policy URLs serve the generated policy documents (or 5xx errors for
the unavailable share).

The output of a crawl is a :class:`CrawlCorpus` — the raw measurement corpus
that every downstream analysis consumes.  The crawl itself is scheduled by
the concurrent engine in :mod:`repro.crawler.engine` over the retrying
transport in :mod:`repro.crawler.transport`.

**Degraded mode.**  The simulated web can be made actively hostile
(:mod:`repro.crawler.hostile`): redirect chains and loops, 429 rate-limit
storms, heavy-tailed tarpit latency, and content-flapping hosts.  The
transport retries transient errors and rate limits, follows bounded redirect
chains, and enforces a per-request accounted-time deadline; what cannot be
salvaged fails *visibly* — terminal failures are tallied per host and kind
(``exhausted-retries`` / ``circuit-open`` / ``deadline`` /
``redirect-loop``) in :class:`CrawlStatistics.host_failure_taxonomy`, and
``CrawlStatistics.quarantined_hosts`` lists the hosts that degraded.  A
crawl over hostile hosts still completes, still checkpoints/resumes, and is
still byte-identical across execution backends and worker counts, because
every hostile behavior and every transport decision is a pure function of
the configured seeds.  See the :mod:`repro.crawler.transport` docstring for
the exact retry/circuit/quarantine semantics.
"""

from repro.crawler.http import HTTPError, SimulatedHTTPLayer, SimulatedResponse
from repro.crawler.transport import (
    CircuitOpenError,
    DeadlineExceededError,
    HTTPTransport,
    RedirectLoopError,
    RetryingTransport,
    TransportConfig,
    TransportStatistics,
)
from repro.crawler.engine import (
    CrawlEngine,
    CrawlTask,
    FIFOTaskQueue,
    HostRateLimiter,
    LIFOTaskQueue,
    TaskOutcome,
    TokenBucket,
)
from repro.crawler.store_server import GPTStoreServer, install_store_servers
from repro.crawler.gizmo_api import GizmoAPIClient, GizmoAPIServer, GIZMO_API_PREFIX
from repro.crawler.store_crawler import StoreCrawler, StoreCrawlResult
from repro.crawler.policy_fetcher import PolicyFetcher, PolicyFetchResult
from repro.crawler.corpus import CrawlCorpus, CrawledAction, CrawledGPT
from repro.crawler.hostile import (
    DEFAULT_HOSTILE_SPEC,
    HOSTILE_ROLES,
    install_hostile_hosts,
)
from repro.crawler.pipeline import CrawlPipeline, CrawlStage, CrawlStatistics

__all__ = [
    "HTTPError",
    "SimulatedHTTPLayer",
    "SimulatedResponse",
    "CircuitOpenError",
    "DeadlineExceededError",
    "RedirectLoopError",
    "HTTPTransport",
    "RetryingTransport",
    "TransportConfig",
    "TransportStatistics",
    "CrawlEngine",
    "CrawlTask",
    "FIFOTaskQueue",
    "HostRateLimiter",
    "LIFOTaskQueue",
    "TaskOutcome",
    "TokenBucket",
    "CrawlStage",
    "GPTStoreServer",
    "install_store_servers",
    "GizmoAPIClient",
    "GizmoAPIServer",
    "GIZMO_API_PREFIX",
    "StoreCrawler",
    "StoreCrawlResult",
    "PolicyFetcher",
    "PolicyFetchResult",
    "CrawlCorpus",
    "CrawledAction",
    "CrawledGPT",
    "DEFAULT_HOSTILE_SPEC",
    "HOSTILE_ROLES",
    "install_hostile_hosts",
    "CrawlPipeline",
    "CrawlStatistics",
]
