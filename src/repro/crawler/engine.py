"""The concurrent crawl engine: frontier scheduler, worker pool, rate limits.

The paper's measurement opens with a large-scale crawl (Sections 3.1, 5.1.1);
at production scale that crawl is a *scheduler* problem — thousands of
independent fetch tasks that should saturate the network while respecting
per-host politeness limits — not a for-loop.  This module provides the
scheduling layer the rebuilt :class:`~repro.crawler.pipeline.CrawlPipeline`
stages run on:

* :class:`CrawlTask` — one unit of work (a key, a thunk, and the host it
  touches, used for rate limiting);
* :class:`TaskQueue` / :class:`FIFOTaskQueue` — the pluggable work frontier
  workers drain (swap in a priority queue for e.g. recrawl scheduling);
* :class:`TokenBucket` / :class:`HostRateLimiter` — per-host token-bucket
  politeness limits;
* :class:`CrawlEngine` — runs a batch of tasks on a
  :mod:`concurrent.futures` worker pool (or inline when ``workers <= 1``)
  and merges outcomes **deterministically**: results are returned in task
  submission order no matter which worker finished first, so a seeded crawl
  produces an identical corpus at any worker count.

Task functions run concurrently, so anything they share (the simulated HTTP
layer, the retrying transport) must be thread-safe — both are.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterable, List, Optional, Protocol, Sequence


@dataclass(frozen=True)
class CrawlTask:
    """One schedulable unit of crawl work.

    ``key`` must be unique within a batch — it names the result in the
    engine's outcome map and in checkpoints.  ``host`` (optional) subjects
    the task to that host's rate limit.
    """

    key: str
    fn: Callable[[], object]
    host: Optional[str] = None


@dataclass
class TaskOutcome:
    """What happened to one task."""

    key: str
    result: Optional[object] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the task completed without raising."""
        return self.error is None


class TaskQueue(Protocol):
    """The pluggable work frontier the scheduler drains."""

    def push(self, task: CrawlTask) -> None:  # pragma: no cover - protocol
        ...

    def pop(self) -> Optional[CrawlTask]:  # pragma: no cover - protocol
        ...

    def __len__(self) -> int:  # pragma: no cover - protocol
        ...


class FIFOTaskQueue:
    """A thread-safe first-in-first-out frontier (the default)."""

    def __init__(self) -> None:
        self._items: Deque[CrawlTask] = deque()
        self._lock = threading.Lock()

    def push(self, task: CrawlTask) -> None:
        with self._lock:
            self._items.append(task)

    def pop(self) -> Optional[CrawlTask]:
        with self._lock:
            if not self._items:
                return None
            return self._items.popleft()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class LIFOTaskQueue(FIFOTaskQueue):
    """A depth-first frontier; useful when fresh links should be crawled hot."""

    def pop(self) -> Optional[CrawlTask]:
        with self._lock:
            if not self._items:
                return None
            return self._items.pop()


class TokenBucket:
    """A thread-safe token bucket (``rate`` tokens/second, burst ``capacity``)."""

    def __init__(self, rate: float, capacity: Optional[float] = None) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.capacity = capacity if capacity is not None else max(1.0, rate)
        self._tokens = self.capacity
        self._updated = time.monotonic()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._updated
        self._updated = now
        self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)

    def try_acquire(self) -> bool:
        """Take a token if one is available (non-blocking)."""
        with self._lock:
            self._refill(time.monotonic())
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    def acquire(self) -> None:
        """Block until a token is available, then take it."""
        while True:
            with self._lock:
                now = time.monotonic()
                self._refill(now)
                if self._tokens >= 1.0:
                    self._tokens -= 1.0
                    return
                wait = (1.0 - self._tokens) / self.rate
            time.sleep(wait)


class HostRateLimiter:
    """Per-host token buckets (politeness limits for the crawl frontier).

    ``rates`` maps host → requests/second; ``default_rate`` (optional)
    applies to hosts not listed.  Hosts with no applicable rate are
    unthrottled.
    """

    def __init__(self, rates: Optional[Dict[str, float]] = None,
                 default_rate: Optional[float] = None) -> None:
        self._rates = {host.lower(): rate for host, rate in (rates or {}).items()}
        self._default_rate = default_rate
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def acquire(self, host: Optional[str]) -> None:
        """Block until ``host`` may issue one request (no-op if unthrottled)."""
        if not host:
            return
        host = host.lower()
        rate = self._rates.get(host, self._default_rate)
        if rate is None:
            return
        with self._lock:
            bucket = self._buckets.get(host)
            if bucket is None:
                # Burst capacity of one: politeness limits space requests at
                # 1/rate rather than allowing an initial burst.
                bucket = TokenBucket(rate, capacity=1.0)
                self._buckets[host] = bucket
        bucket.acquire()


@dataclass
class EngineStatistics:
    """Aggregate counters for one engine run."""

    n_tasks: int = 0
    n_completed: int = 0
    n_failed: int = 0
    wall_time_s: float = 0.0


class CrawlEngine:
    """Schedules crawl tasks over a worker pool with deterministic merging.

    Parameters
    ----------
    workers:
        Worker-pool size.  ``<= 1`` runs tasks inline on the calling thread
        (the sequential baseline); larger values use a
        :class:`~concurrent.futures.ThreadPoolExecutor` whose workers drain
        the task queue.
    rate_limiter:
        Optional per-host admission control applied once before each *task*
        runs.  A task may issue several requests (pagination, retries), so
        for true requests/second politeness hand the limiter to
        :class:`~repro.crawler.transport.RetryingTransport` instead, which
        consults it before every attempt — the pipeline does exactly that.
    queue_factory:
        Builds the work frontier for each :meth:`run` (default FIFO).
    on_result:
        Called once per completed task, in *completion* order, under the
        engine lock — the pipeline uses it for incremental checkpointing.
        Completion order is nondeterministic under concurrency; only the
        returned outcome list is deterministic.
    """

    def __init__(
        self,
        workers: int = 1,
        rate_limiter: Optional[HostRateLimiter] = None,
        queue_factory: Callable[[], TaskQueue] = FIFOTaskQueue,
        on_result: Optional[Callable[[TaskOutcome], None]] = None,
    ) -> None:
        self.workers = max(0, workers)
        self.rate_limiter = rate_limiter
        self.queue_factory = queue_factory
        self.on_result = on_result
        self.statistics = EngineStatistics()
        self._lock = threading.Lock()
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def _execute(self, task: CrawlTask) -> TaskOutcome:
        if self.rate_limiter is not None:
            self.rate_limiter.acquire(task.host)
        try:
            result = task.fn()
        except Exception as exc:  # noqa: BLE001 - outcomes carry the error
            return TaskOutcome(key=task.key, error=f"{type(exc).__name__}: {exc}")
        return TaskOutcome(key=task.key, result=result)

    def _complete(self, outcome: TaskOutcome,
                  outcomes: Dict[str, TaskOutcome]) -> None:
        with self._lock:
            outcomes[outcome.key] = outcome
            self.statistics.n_completed += 1
            if not outcome.ok:
                self.statistics.n_failed += 1
            if self.on_result is not None:
                self.on_result(outcome)

    def _worker_loop(self, queue: TaskQueue,
                     outcomes: Dict[str, TaskOutcome]) -> None:
        while not self._stop.is_set():
            task = queue.pop()
            if task is None:
                return
            try:
                outcome = self._execute(task)
                self._complete(outcome, outcomes)
            except BaseException:
                # Anything escaping here (KeyboardInterrupt from a task, a
                # bug in the on_result callback) aborts the whole batch:
                # stop sibling workers, then re-raise so ``run`` surfaces it
                # after the pool winds down.
                self._stop.set()
                raise

    # ------------------------------------------------------------------
    def run(self, tasks: Iterable[CrawlTask]) -> List[TaskOutcome]:
        """Run a batch of tasks; outcomes are returned in submission order.

        A ``KeyboardInterrupt`` raised by a task (or the caller) propagates
        after in-flight workers wind down, so an interrupted run leaves any
        incremental checkpoints consistent.
        """
        task_list: Sequence[CrawlTask] = list(tasks)
        keys = [task.key for task in task_list]
        if len(set(keys)) != len(keys):
            raise ValueError("task keys must be unique within a batch")
        start = time.monotonic()
        self.statistics.n_tasks += len(task_list)
        self._stop.clear()
        outcomes: Dict[str, TaskOutcome] = {}
        queue = self.queue_factory()
        for task in task_list:
            queue.push(task)
        if self.workers <= 1:
            # Inline execution still drains the configured frontier, so a
            # LIFO/priority queue schedules identically at any worker count.
            self._worker_loop(queue, outcomes)
        else:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                futures = [
                    pool.submit(self._worker_loop, queue, outcomes)
                    for _ in range(self.workers)
                ]
                for future in futures:
                    # Surface worker crashes (queue/callback bugs); task
                    # exceptions are already folded into outcomes.
                    future.result()
        self.statistics.wall_time_s += time.monotonic() - start
        return [outcomes[key] for key in keys]
