"""The concurrent crawl engine: frontier scheduling over a pluggable backend.

The paper's measurement opens with a large-scale crawl (Sections 3.1, 5.1.1);
at production scale that crawl is a *scheduler* problem — thousands of
independent fetch tasks that should saturate the network while respecting
per-host politeness limits — not a for-loop.  The generic scheduling
machinery (task/outcome types, pluggable frontier queues, the serial and
thread-pool execution loops, and the process-pool backend) lives in
:mod:`repro.exec.backends`; this module keeps the crawl-specific pieces and
the historical entry point:

* :class:`TokenBucket` / :class:`HostRateLimiter` — per-host token-bucket
  politeness limits;
* :class:`CrawlEngine` — runs a batch of tasks on an execution backend
  (serial inline when ``workers <= 1``, the thread pool above, or any
  :class:`~repro.exec.backends.ExecutionBackend` passed explicitly) and
  merges outcomes **deterministically**: results are returned in task
  submission order no matter which worker finished first, so a seeded crawl
  produces an identical corpus at any worker count and on any backend.

``CrawlTask`` / ``TaskOutcome`` / the queue classes are re-exported from
:mod:`repro.exec` for compatibility — they are the same objects every other
fan-out layer (streaming analysis, the sweep engine) schedules with.

Task functions run concurrently, so anything they share (the simulated HTTP
layer, the retrying transport) must be thread-safe — both are.  On the
process backend, task payloads must be picklable instead (module-level
functions with plain-data arguments); closure-style tasks are a programming
error there and surface as task failures.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.exec.backends import (
    ExecOutcome,
    ExecTask,
    ExecutionBackend,
    FIFOTaskQueue,
    LIFOTaskQueue,
    TaskQueue,
    get_backend,
)

#: Compatibility aliases: the crawl engine's task vocabulary *is* the
#: execution layer's (one scheduling contract across crawl, streaming
#: analysis, and sweeps).
CrawlTask = ExecTask
TaskOutcome = ExecOutcome

__all__ = [
    "CrawlEngine",
    "CrawlTask",
    "EngineStatistics",
    "FIFOTaskQueue",
    "HostRateLimiter",
    "LIFOTaskQueue",
    "TaskOutcome",
    "TaskQueue",
    "TokenBucket",
]


class TokenBucket:
    """A thread-safe token bucket (``rate`` tokens/second, burst ``capacity``)."""

    def __init__(self, rate: float, capacity: Optional[float] = None) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.capacity = capacity if capacity is not None else max(1.0, rate)
        self._tokens = self.capacity
        self._updated = time.monotonic()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._updated
        self._updated = now
        self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)

    def try_acquire(self) -> bool:
        """Take a token if one is available (non-blocking)."""
        with self._lock:
            self._refill(time.monotonic())
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    def acquire(self) -> None:
        """Block until a token is available, then take it."""
        while True:
            with self._lock:
                now = time.monotonic()
                self._refill(now)
                if self._tokens >= 1.0:
                    self._tokens -= 1.0
                    return
                wait = (1.0 - self._tokens) / self.rate
            time.sleep(wait)


class HostRateLimiter:
    """Per-host token buckets (politeness limits for the crawl frontier).

    ``rates`` maps host → requests/second; ``default_rate`` (optional)
    applies to hosts not listed.  Hosts with no applicable rate are
    unthrottled.
    """

    def __init__(self, rates: Optional[Dict[str, float]] = None,
                 default_rate: Optional[float] = None) -> None:
        self._rates = {host.lower(): rate for host, rate in (rates or {}).items()}
        self._default_rate = default_rate
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def acquire(self, host: Optional[str]) -> None:
        """Block until ``host`` may issue one request (no-op if unthrottled)."""
        if not host:
            return
        host = host.lower()
        rate = self._rates.get(host, self._default_rate)
        if rate is None:
            return
        with self._lock:
            bucket = self._buckets.get(host)
            if bucket is None:
                # Burst capacity of one: politeness limits space requests at
                # 1/rate rather than allowing an initial burst.
                bucket = TokenBucket(rate, capacity=1.0)
                self._buckets[host] = bucket
        bucket.acquire()


@dataclass
class EngineStatistics:
    """Aggregate counters for one engine run."""

    n_tasks: int = 0
    n_completed: int = 0
    n_failed: int = 0
    wall_time_s: float = 0.0


class CrawlEngine:
    """Schedules crawl tasks over an execution backend with deterministic merging.

    Parameters
    ----------
    workers:
        Worker-pool size.  ``<= 1`` runs tasks inline on the calling thread
        (the sequential baseline); larger values use the thread backend —
        unless ``backend`` overrides the choice.
    rate_limiter:
        Optional per-host admission control applied once before each *task*
        runs.  A task may issue several requests (pagination, retries), so
        for true requests/second politeness hand the limiter to
        :class:`~repro.crawler.transport.RetryingTransport` instead, which
        consults it before every attempt — the pipeline does exactly that.
        Incompatible with the process backend (buckets cannot span
        processes).
    queue_factory:
        Builds the work frontier for each :meth:`run` (default FIFO); only
        meaningful on the frontier-draining (serial/thread) backends.
    on_result:
        Called once per completed task, in *completion* order, serialized
        under the scheduler's lock — the pipeline uses it for incremental
        checkpointing.  Completion order is nondeterministic under
        concurrency; only the returned outcome list is deterministic.
    backend:
        ``"serial"`` / ``"thread"`` / ``"process"``, an
        :class:`~repro.exec.backends.ExecutionBackend` instance, or ``None``
        for the historical default (serial at ``workers <= 1``, threads
        above).
    """

    def __init__(
        self,
        workers: int = 1,
        rate_limiter: Optional[HostRateLimiter] = None,
        queue_factory: Callable[[], TaskQueue] = FIFOTaskQueue,
        on_result: Optional[Callable[[TaskOutcome], None]] = None,
        backend: Union[str, ExecutionBackend, None] = None,
    ) -> None:
        self.workers = max(0, workers)
        self.rate_limiter = rate_limiter
        self.queue_factory = queue_factory
        self.on_result = on_result
        self.statistics = EngineStatistics()
        if isinstance(backend, ExecutionBackend):
            # A pre-built backend carries its own rate limiter and frontier;
            # accepting (and silently dropping) engine-level ones here would
            # unthrottle a crawl or discard a custom queue without warning.
            if rate_limiter is not None:
                raise ValueError(
                    "pass rate_limiter to the backend itself (SerialBackend/"
                    "ThreadBackend) when supplying a backend instance; the "
                    "process backend cannot enforce a shared rate limiter"
                )
            if queue_factory is not FIFOTaskQueue:
                raise ValueError(
                    "pass queue_factory to the backend itself when supplying "
                    "a backend instance"
                )
            self.backend: ExecutionBackend = backend
        else:
            self.backend = get_backend(
                backend,
                workers=self.workers,
                rate_limiter=rate_limiter,
                queue_factory=queue_factory,
            )

    # ------------------------------------------------------------------
    def run(
        self, tasks: Iterable[CrawlTask], keep_results: bool = True
    ) -> List[TaskOutcome]:
        """Run a batch of tasks; outcomes are returned in submission order.

        A ``KeyboardInterrupt`` raised by a task (or the caller) propagates
        after in-flight workers wind down, so an interrupted run leaves any
        incremental checkpoints consistent.  ``keep_results=False`` hands
        each result to ``on_result`` and then drops it from the returned
        outcome, bounding memory for streaming consumers.
        """
        task_list = list(tasks)
        start = time.monotonic()
        self.statistics.n_tasks += len(task_list)
        outcomes = self.backend.run(
            task_list, on_result=self.on_result, keep_results=keep_results
        )
        self.statistics.n_completed += len(outcomes)
        self.statistics.n_failed += sum(1 for outcome in outcomes if not outcome.ok)
        self.statistics.wall_time_s += time.monotonic() - start
        return outcomes
