"""A retrying, rate-aware transport over the simulated HTTP layer.

The paper's crawl had to survive unresponsive policy servers and transient
connection failures (Section 5.1.1); a production crawler does so with
retries, backoff, and per-host circuit breaking rather than by giving up on
the first error.  :class:`RetryingTransport` wraps any object exposing the
``get(url)`` interface of :class:`~repro.crawler.http.SimulatedHTTPLayer`
and adds:

* a per-request retry budget for transport errors and (configurably)
  transient 5xx statuses, with exponential backoff;
* *seeded* backoff jitter — the delay for attempt ``k`` of a URL is a pure
  function of ``(seed, url, k)``, so retry schedules are reproducible no
  matter how worker threads interleave;
* optional per-host circuit breaking: after a run of consecutive transport
  failures a host is "open" and requests fail fast until a cooldown elapses;
* optional simulated per-request latency, which stands in for network RTT so
  concurrency speedups are measurable offline.

The transport is thread-safe and duck-type compatible with
``SimulatedHTTPLayer``, so :class:`~repro.crawler.store_crawler.StoreCrawler`,
:class:`~repro.crawler.gizmo_api.GizmoAPIClient`, and
:class:`~repro.crawler.policy_fetcher.PolicyFetcher` run unchanged on top of
it.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Protocol

from repro.crawler.http import HTTPError, SimulatedResponse
from repro.web.urls import parse_url


class HTTPTransport(Protocol):
    """The minimal client interface shared by the HTTP layer and wrappers."""

    def get(self, url: str) -> SimulatedResponse:  # pragma: no cover - protocol
        ...


class RateLimiter(Protocol):
    """Per-host admission control (e.g. ``engine.HostRateLimiter``)."""

    def acquire(self, host: Optional[str]) -> None:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class TransportConfig:
    """Tuning knobs for :class:`RetryingTransport`."""

    #: Total attempts per request (1 = no retries).
    max_attempts: int = 3
    #: Backoff before retry ``k`` is ``backoff_base_s * backoff_factor**(k-1)``
    #: (plus jitter), capped at ``backoff_max_s``.
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 0.05
    #: Fraction of the backoff randomized (seeded per ``(url, attempt)``).
    jitter: float = 0.5
    #: 5xx statuses treated as transient and retried.  Plain 500s are *not*
    #: retried by default: the generator uses them for permanently broken
    #: policy hosts, matching the paper's unrecoverable-failure share.
    retry_statuses: FrozenSet[int] = frozenset({502, 503, 504})
    #: Consecutive transport failures that open a host's circuit
    #: (0 disables circuit breaking).
    circuit_threshold: int = 0
    #: How long an open circuit rejects requests before a trial is allowed.
    circuit_cooldown_s: float = 0.05
    #: Simulated network round-trip time added to every attempt.
    latency_s: float = 0.0
    #: Seed for the jittered backoff schedule.
    seed: int = 0


@dataclass
class TransportStatistics:
    """Counters the transport accumulates across all requests."""

    n_requests: int = 0
    n_attempts: int = 0
    n_retries: int = 0
    n_transport_errors: int = 0
    n_circuit_rejections: int = 0
    per_host_failures: Dict[str, int] = field(default_factory=dict)


class CircuitOpenError(HTTPError):
    """Raised when a host's circuit is open and the request is rejected."""

    def __init__(self, url: str) -> None:
        super().__init__(url, "circuit open")


class _HostCircuit:
    """Consecutive-failure circuit state for one host."""

    __slots__ = ("consecutive_failures", "opened_at", "trial_in_flight")

    def __init__(self) -> None:
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        #: Whether the single half-open trial request is currently running.
        self.trial_in_flight = False


class RetryingTransport:
    """Wraps a transport with retries, backoff, and circuit breaking."""

    def __init__(self, inner: HTTPTransport,
                 config: Optional[TransportConfig] = None,
                 rate_limiter: Optional[RateLimiter] = None) -> None:
        if config is not None and config.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self._inner = inner
        self.config = config or TransportConfig()
        #: Per-host politeness limits, consulted before **every attempt**
        #: (retries included), so a requests/second limit means exactly that.
        self.rate_limiter = rate_limiter
        self.statistics = TransportStatistics()
        self._lock = threading.Lock()
        self._circuits: Dict[str, _HostCircuit] = {}

    # ------------------------------------------------------------------
    def _backoff_delay(self, url: str, retry_index: int) -> float:
        """Deterministic backoff before retry ``retry_index`` (1-based)."""
        config = self.config
        if config.backoff_base_s <= 0:
            return 0.0
        delay = config.backoff_base_s * (config.backoff_factor ** (retry_index - 1))
        delay = min(delay, config.backoff_max_s)
        if config.jitter > 0:
            fraction = random.Random(f"{config.seed}:{url}:{retry_index}").random()
            delay *= (1.0 - config.jitter) + config.jitter * fraction
        return delay

    def _check_circuit(self, host: str, url: str) -> None:
        if self.config.circuit_threshold <= 0:
            return
        with self._lock:
            circuit = self._circuits.get(host)
            if circuit is None or circuit.opened_at is None:
                return
            elapsed = time.monotonic() - circuit.opened_at
            if elapsed >= self.config.circuit_cooldown_s and not circuit.trial_in_flight:
                # Half-open: admit exactly one trial request; concurrent
                # callers keep getting rejected until its outcome is known.
                circuit.trial_in_flight = True
                return
            self.statistics.n_circuit_rejections += 1
        raise CircuitOpenError(url)

    def _record_outcome(self, host: str, failed: bool) -> None:
        if self.config.circuit_threshold <= 0:
            return
        with self._lock:
            circuit = self._circuits.setdefault(host, _HostCircuit())
            was_trial = circuit.trial_in_flight
            circuit.trial_in_flight = False
            if failed:
                circuit.consecutive_failures += 1
                if was_trial or circuit.consecutive_failures >= self.config.circuit_threshold:
                    # A failed trial re-opens the circuit for a full cooldown.
                    circuit.opened_at = time.monotonic()
            else:
                circuit.consecutive_failures = 0
                circuit.opened_at = None

    # ------------------------------------------------------------------
    def get(self, url: str) -> SimulatedResponse:
        """Fetch a URL with retries; raises :class:`HTTPError` when the
        budget is exhausted or the host's circuit is open."""
        config = self.config
        host = parse_url(url).host
        with self._lock:
            self.statistics.n_requests += 1
        last_error: Optional[HTTPError] = None
        for attempt in range(config.max_attempts):
            self._check_circuit(host, url)
            if attempt > 0:
                with self._lock:
                    self.statistics.n_retries += 1
                delay = self._backoff_delay(url, attempt)
                if delay > 0:
                    time.sleep(delay)
            if self.rate_limiter is not None:
                self.rate_limiter.acquire(host)
            if config.latency_s > 0:
                time.sleep(config.latency_s)
            with self._lock:
                self.statistics.n_attempts += 1
            try:
                response = self._inner.get(url)
            except HTTPError as exc:
                last_error = exc
                with self._lock:
                    self.statistics.n_transport_errors += 1
                    self.statistics.per_host_failures[host] = (
                        self.statistics.per_host_failures.get(host, 0) + 1
                    )
                self._record_outcome(host, failed=True)
                continue
            self._record_outcome(host, failed=False)
            if response.status in config.retry_statuses and attempt + 1 < config.max_attempts:
                last_error = HTTPError(url, f"HTTP {response.status}")
                continue
            return response
        assert last_error is not None
        raise last_error

    def get_json(self, url: str) -> object:
        """Fetch a URL and parse its JSON body (raises on non-2xx)."""
        response = self.get(url)
        if not response.ok:
            raise HTTPError(url, f"HTTP {response.status}")
        return response.json()
