"""A retrying, rate-aware transport over the simulated HTTP layer.

The paper's crawl had to survive unresponsive and actively misbehaving policy
servers (Section 5.1.1); a production crawler does so with retries, backoff,
redirect handling, and per-host circuit breaking rather than by giving up on
the first error.  :class:`RetryingTransport` wraps any object exposing the
``get(url)`` interface of :class:`~repro.crawler.http.SimulatedHTTPLayer`
and adds:

* a per-request retry budget for transport errors and (configurably)
  transient 5xx statuses, with exponential backoff;
* *seeded* backoff jitter — the delay for attempt ``k`` of a URL is a pure
  function of ``(seed, url, k)``, so retry schedules are reproducible no
  matter how worker threads interleave;
* bounded redirect following with loop detection (a ``Location`` already on
  the chain, or more than ``max_redirects`` hops, raises
  :class:`RedirectLoopError`);
* ``Retry-After``-aware 429 handling: rate-limited responses are retried up
  to ``max_ratelimit_retries`` times (counted separately from error retries
  in :class:`TransportStatistics`), honoring the advertised wait capped at
  ``retry_after_cap_s``;
* a per-request deadline (``deadline_s``): a total-time budget across all
  redirect hops, retries, backoff waits, and simulated latencies, so a
  tarpit host cannot stall a worker indefinitely.  The budget is charged in
  *accounted simulated time* (configured latency, layer-reported service
  time, backoff and Retry-After waits) — never wall clock — so deadline
  decisions, like everything else here, are byte-identical across worker
  counts and execution backends;
* optional per-host circuit breaking: after a run of consecutive failures a
  host is "open" and requests fail fast until a cooldown elapses;
* optional simulated per-request latency, which stands in for network RTT so
  concurrency speedups are measurable offline.

Degraded-mode semantics
-----------------------

What is **retried**: transport errors (connection resets) and statuses in
``retry_statuses`` consume the ``max_attempts`` budget with exponential
backoff; 429 responses consume the separate ``max_ratelimit_retries`` budget
with the advertised ``Retry-After`` wait.

What **opens a circuit** (counts as a consecutive per-host failure):
transport errors, retryable 5xx responses, deadline exhaustion, and redirect
loops.  A 429 is *neutral* — the host is alive, merely throttling — so it
neither opens nor closes a circuit.  Any success (2xx/3xx/permanent non-2xx)
closes it.  A half-open trial releases its slot on **every** outcome,
including non-``HTTPError`` exceptions raised through the inner transport.

What **quarantines a host**: terminal failures are tallied per host and
kind in ``TransportStatistics.per_host_taxonomy`` under the keys
``exhausted-retries`` (retry budget spent, including terminal retryable
statuses handed back to the caller), ``circuit-open``, ``deadline``, and
``redirect-loop``.  The crawl pipeline surfaces these as quarantined hosts
in its own statistics; records on quarantined hosts fail visibly instead of
silently vanishing.

The transport is thread-safe and duck-type compatible with
``SimulatedHTTPLayer``, so :class:`~repro.crawler.store_crawler.StoreCrawler`,
:class:`~repro.crawler.gizmo_api.GizmoAPIClient`, and
:class:`~repro.crawler.policy_fetcher.PolicyFetcher` run unchanged on top of
it.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Protocol, Union

from repro.crawler.http import HTTPError, SimulatedResponse
from repro.web.urls import join_url, parse_url

#: Taxonomy keys used in ``TransportStatistics.per_host_taxonomy``.
FAILURE_KINDS = ("exhausted-retries", "circuit-open", "deadline", "redirect-loop")


class HTTPTransport(Protocol):
    """The minimal client interface shared by the HTTP layer and wrappers."""

    def get(self, url: str) -> SimulatedResponse:  # pragma: no cover - protocol
        ...


class RateLimiter(Protocol):
    """Per-host admission control (e.g. ``engine.HostRateLimiter``)."""

    def acquire(self, host: Optional[str]) -> None:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class TransportConfig:
    """Tuning knobs for :class:`RetryingTransport`."""

    #: Total attempts per request (1 = no retries).
    max_attempts: int = 3
    #: Backoff before retry ``k`` is ``backoff_base_s * backoff_factor**(k-1)``
    #: (plus jitter), capped at ``backoff_max_s``.
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 0.05
    #: Fraction of the backoff randomized (seeded per ``(url, attempt)``).
    jitter: float = 0.5
    #: 5xx statuses treated as transient and retried.  Plain 500s are *not*
    #: retried by default: the generator uses them for permanently broken
    #: policy hosts, matching the paper's unrecoverable-failure share.
    retry_statuses: FrozenSet[int] = frozenset({502, 503, 504})
    #: Redirect hops followed per request before declaring a loop.
    max_redirects: int = 5
    #: 429 retries per request (counted separately from error retries).
    max_ratelimit_retries: int = 4
    #: Cap on any single honored ``Retry-After`` wait.
    retry_after_cap_s: float = 0.05
    #: Total accounted-time budget per request across redirect hops, retries,
    #: backoff, Retry-After waits, and simulated latency (0 = unlimited).
    deadline_s: float = 0.0
    #: Consecutive transport failures that open a host's circuit
    #: (0 disables circuit breaking).
    circuit_threshold: int = 0
    #: How long an open circuit rejects requests before a trial is allowed.
    circuit_cooldown_s: float = 0.05
    #: Simulated network round-trip time added to every attempt.
    latency_s: float = 0.0
    #: Seed for the jittered backoff schedule.
    seed: int = 0

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TransportConfig":
        """Build a config from a plain-JSON mapping (sweep scenarios store
        their overrides as JSON, so ``retry_statuses`` arrives as a list)."""
        kwargs = dict(data)
        if "retry_statuses" in kwargs:
            kwargs["retry_statuses"] = frozenset(
                int(s) for s in kwargs["retry_statuses"])  # type: ignore[union-attr]
        return cls(**kwargs)  # type: ignore[arg-type]

    @classmethod
    def coerce(cls, value: Union["TransportConfig", Mapping[str, object], None],
               ) -> Optional["TransportConfig"]:
        """Accept a config, a plain mapping, or ``None``."""
        if value is None or isinstance(value, cls):
            return value
        return cls.from_dict(value)


@dataclass
class TransportStatistics:
    """Counters the transport accumulates across all requests."""

    n_requests: int = 0
    n_attempts: int = 0
    n_retries: int = 0
    n_ratelimit_retries: int = 0
    n_redirects: int = 0
    n_transport_errors: int = 0
    n_circuit_rejections: int = 0
    n_deadline_exceeded: int = 0
    per_host_failures: Dict[str, int] = field(default_factory=dict)
    #: host → {failure kind → count} for terminal failures; kinds are the
    #: :data:`FAILURE_KINDS` quarantine taxonomy.
    per_host_taxonomy: Dict[str, Dict[str, int]] = field(default_factory=dict)


class CircuitOpenError(HTTPError):
    """Raised when a host's circuit is open and the request is rejected."""

    def __init__(self, url: str) -> None:
        super().__init__(url, "circuit open")


class DeadlineExceededError(HTTPError):
    """Raised when a request's accounted-time budget is exhausted."""

    def __init__(self, url: str, spent_s: float = 0.0, budget_s: float = 0.0) -> None:
        super().__init__(url, "deadline exceeded")
        self.spent_s = spent_s
        self.budget_s = budget_s


class RedirectLoopError(HTTPError):
    """Raised on a redirect cycle or when ``max_redirects`` is exceeded."""

    def __init__(self, url: str, reason: str = "redirect loop") -> None:
        super().__init__(url, reason)


class _Budget:
    """Accounted-time budget for one logical request.

    Charges are simulated time (latency knobs, layer-reported service time,
    backoff/Retry-After waits), never wall-clock measurements, so whether a
    request exceeds its deadline is a pure function of the seeds — identical
    across worker counts and backends.  ``charge`` raises *before* the
    caller sleeps, so wall time also stays bounded.
    """

    __slots__ = ("limit_s", "spent_s")

    def __init__(self, limit_s: float) -> None:
        self.limit_s = limit_s
        self.spent_s = 0.0

    def charge(self, amount_s: float, url: str) -> None:
        if amount_s <= 0:
            return
        self.spent_s += amount_s
        if self.limit_s > 0 and self.spent_s > self.limit_s:
            raise DeadlineExceededError(url, self.spent_s, self.limit_s)


def _reported_latency(source: object) -> float:
    """Simulated service time reported by the layer (response or error)."""
    if isinstance(source, SimulatedResponse):
        raw = source.headers.get("x-simulated-latency-s", "")
    else:
        raw = getattr(source, "simulated_latency_s", 0.0)
    try:
        return float(raw or 0.0)
    except (TypeError, ValueError):
        return 0.0


def _parse_retry_after(response: SimulatedResponse) -> float:
    try:
        return max(0.0, float(response.headers.get("retry-after", 0.0) or 0.0))
    except (TypeError, ValueError):
        return 0.0


class _HostCircuit:
    """Consecutive-failure circuit state for one host."""

    __slots__ = ("consecutive_failures", "opened_at", "trial_in_flight")

    def __init__(self) -> None:
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        #: Whether the single half-open trial request is currently running.
        self.trial_in_flight = False


class RetryingTransport:
    """Wraps a transport with retries, backoff, redirect handling, deadline
    enforcement, and circuit breaking (see the module docstring for the
    degraded-mode semantics)."""

    def __init__(self, inner: HTTPTransport,
                 config: Optional[TransportConfig] = None,
                 rate_limiter: Optional[RateLimiter] = None) -> None:
        if config is not None and config.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self._inner = inner
        self.config = config or TransportConfig()
        #: Per-host politeness limits, consulted before **every attempt**
        #: (retries included), so a requests/second limit means exactly that.
        self.rate_limiter = rate_limiter
        self.statistics = TransportStatistics()
        self._lock = threading.Lock()
        self._circuits: Dict[str, _HostCircuit] = {}

    # ------------------------------------------------------------------
    def _backoff_delay(self, url: str, retry_index: int) -> float:
        """Deterministic backoff before retry ``retry_index`` (1-based)."""
        config = self.config
        if config.backoff_base_s <= 0:
            return 0.0
        delay = config.backoff_base_s * (config.backoff_factor ** (retry_index - 1))
        delay = min(delay, config.backoff_max_s)
        if config.jitter > 0:
            fraction = random.Random(f"{config.seed}:{url}:{retry_index}").random()
            delay *= (1.0 - config.jitter) + config.jitter * fraction
        return delay

    def _check_circuit(self, host: str, url: str) -> bool:
        """Admit or reject an attempt; returns whether it is the half-open
        trial (the caller must release the slot on every outcome)."""
        if self.config.circuit_threshold <= 0:
            return False
        with self._lock:
            circuit = self._circuits.get(host)
            if circuit is None or circuit.opened_at is None:
                return False
            elapsed = time.monotonic() - circuit.opened_at
            if elapsed >= self.config.circuit_cooldown_s and not circuit.trial_in_flight:
                # Half-open: admit exactly one trial request; concurrent
                # callers keep getting rejected until its outcome is known.
                circuit.trial_in_flight = True
                return True
            self.statistics.n_circuit_rejections += 1
            bucket = self.statistics.per_host_taxonomy.setdefault(host, {})
            bucket["circuit-open"] = bucket.get("circuit-open", 0) + 1
        raise CircuitOpenError(url)

    def _record_outcome(self, host: str, failed: bool) -> None:
        if self.config.circuit_threshold <= 0:
            return
        with self._lock:
            circuit = self._circuits.setdefault(host, _HostCircuit())
            was_trial = circuit.trial_in_flight
            circuit.trial_in_flight = False
            if failed:
                circuit.consecutive_failures += 1
                if was_trial or circuit.consecutive_failures >= self.config.circuit_threshold:
                    # A failed trial re-opens the circuit for a full cooldown.
                    circuit.opened_at = time.monotonic()
            else:
                circuit.consecutive_failures = 0
                circuit.opened_at = None

    def _release_trial(self, host: str) -> None:
        """Free the half-open trial slot without judging the host either way
        (429 responses and non-HTTP exceptions land here)."""
        if self.config.circuit_threshold <= 0:
            return
        with self._lock:
            circuit = self._circuits.get(host)
            if circuit is not None:
                circuit.trial_in_flight = False

    def _note_taxonomy(self, host: str, kind: str) -> None:
        with self._lock:
            bucket = self.statistics.per_host_taxonomy.setdefault(host, {})
            bucket[kind] = bucket.get(kind, 0) + 1

    def _bump_host_failures(self, host: str) -> None:
        with self._lock:
            self.statistics.per_host_failures[host] = (
                self.statistics.per_host_failures.get(host, 0) + 1
            )

    # ------------------------------------------------------------------
    def get(self, url: str) -> SimulatedResponse:
        """Fetch a URL, following redirects, with retries and a deadline;
        raises :class:`HTTPError` (or a subclass) on terminal failure."""
        config = self.config
        with self._lock:
            self.statistics.n_requests += 1
        budget = _Budget(config.deadline_s)
        visited = {url}
        current = url
        hops = 0
        while True:
            response = self._fetch_with_retries(current, budget)
            location = response.headers.get("location")
            if not (300 <= response.status < 400) or not location:
                return response
            if "://" not in location:
                location = join_url(current, location)
            host = parse_url(current).host
            with self._lock:
                self.statistics.n_redirects += 1
            hops += 1
            if hops > config.max_redirects or location in visited:
                reason = ("redirect loop" if location in visited
                          else "too many redirects")
                self._bump_host_failures(host)
                self._note_taxonomy(host, "redirect-loop")
                self._record_outcome(host, failed=True)
                raise RedirectLoopError(url, reason)
            visited.add(location)
            current = location

    def _fetch_with_retries(self, url: str,
                            budget: _Budget) -> SimulatedResponse:
        """One redirect hop: the retry loop for a single URL."""
        config = self.config
        host = parse_url(url).host
        last_error: Optional[HTTPError] = None
        attempt = 0
        ratelimit_retries = 0
        while True:
            is_trial = self._check_circuit(host, url)
            settled = False  # whether this attempt's circuit outcome is recorded
            try:
                if self.rate_limiter is not None:
                    self.rate_limiter.acquire(host)
                if config.latency_s > 0:
                    budget.charge(config.latency_s, url)
                    time.sleep(config.latency_s)
                with self._lock:
                    self.statistics.n_attempts += 1
                response: Optional[SimulatedResponse] = None
                try:
                    response = self._inner.get(url)
                except HTTPError as exc:
                    last_error = exc
                    budget.charge(_reported_latency(exc), url)
                    with self._lock:
                        self.statistics.n_transport_errors += 1
                    self._bump_host_failures(host)
                    settled = True
                    self._record_outcome(host, failed=True)
                if response is not None:
                    budget.charge(_reported_latency(response), url)
                    status = response.status
                    if status == 429:
                        # Throttling is circuit-neutral: the host answered.
                        settled = True
                        if is_trial:
                            self._release_trial(host)
                        if ratelimit_retries >= config.max_ratelimit_retries:
                            # Storm outlasted the budget: hand the 429 back
                            # but remember the host in the taxonomy.
                            self._note_taxonomy(host, "exhausted-retries")
                            return response
                        ratelimit_retries += 1
                        with self._lock:
                            self.statistics.n_ratelimit_retries += 1
                        wait = min(_parse_retry_after(response),
                                   config.retry_after_cap_s)
                        if wait > 0:
                            budget.charge(wait, url)
                            time.sleep(wait)
                        continue
                    if status in config.retry_statuses:
                        # A retryable 5xx is a *failure* for the circuit and
                        # the per-host tally, even when the response is
                        # ultimately handed back to the caller.
                        last_error = HTTPError(url, f"HTTP {status}")
                        self._bump_host_failures(host)
                        settled = True
                        self._record_outcome(host, failed=True)
                        if attempt + 1 >= config.max_attempts:
                            self._note_taxonomy(host, "exhausted-retries")
                            return response
                    else:
                        settled = True
                        self._record_outcome(host, failed=False)
                        return response
                elif attempt + 1 >= config.max_attempts:
                    self._note_taxonomy(host, "exhausted-retries")
                    assert last_error is not None
                    raise last_error
                # Retry path (transport error or retryable status with
                # budget remaining).
                attempt += 1
                with self._lock:
                    self.statistics.n_retries += 1
                delay = self._backoff_delay(url, attempt)
                if delay > 0:
                    budget.charge(delay, url)
                    time.sleep(delay)
            except DeadlineExceededError:
                with self._lock:
                    self.statistics.n_deadline_exceeded += 1
                self._bump_host_failures(host)
                self._note_taxonomy(host, "deadline")
                if not settled:
                    # Tarpits count against the circuit; this also releases
                    # a held trial slot.
                    self._record_outcome(host, failed=True)
                raise
            except BaseException:
                # A non-HTTP exception (rate-limiter interrupt, handler bug)
                # must still free the half-open trial slot, or the circuit
                # wedges open forever.
                if is_trial and not settled:
                    self._release_trial(host)
                raise

    def get_json(self, url: str) -> object:
        """Fetch a URL and parse its JSON body (raises on non-2xx)."""
        response = self.get(url)
        if not response.ok:
            raise HTTPError(url, f"HTTP {response.status}")
        return response.json()
