"""End-to-end crawl pipeline on the concurrent crawl engine.

``CrawlPipeline.from_ecosystem`` wires a :class:`SyntheticEcosystem` into a
simulated network — store servers, the gizmo manifest API, and the privacy
policy documents — and :meth:`CrawlPipeline.run` then performs the same crawl
the paper describes in Section 3.1, rebuilt as three declarative stages
scheduled by :class:`~repro.crawler.engine.CrawlEngine`:

1. **listing** — crawl every store's listing pages and extract GPT
   identifiers (one task per store);
2. **resolve** — de-duplicate identifiers across stores and resolve each one
   against the gizmo API (one task per identifier; 404s are recorded);
3. **policies** — fetch every Action's privacy policy (one task per unique
   URL; some fail with server errors, as in Section 5.1.1).

All network traffic goes through a
:class:`~repro.crawler.transport.RetryingTransport` (retry budgets, seeded
backoff, optional circuit breaking and simulated latency).  Stage results are
merged into the corpus in deterministic task order regardless of worker
count, so a seeded crawl is bit-reproducible sequentially or with 8 workers.

When a checkpoint directory is configured, completed task payloads are
flushed incrementally through :class:`repro.io.CrawlCheckpoint`; a run
killed mid-stage and restarted with ``resume=True`` skips everything already
fetched and produces a corpus identical to an uninterrupted run.

**Shard-partitioned crawls.**  With ``shards > 1``, :meth:`CrawlPipeline.run_sharded`
partitions the listing frontier by the same SHA-256 record hash the sharded
corpus store uses (:func:`repro.io.shards.shard_index`): after the listing
stage, each shard runs its own resolve and policy sub-stages — own
checkpoint shard files, own (rate-limit-sharing) transport — on the
configured execution backend (:mod:`repro.exec`), and the resulting records
stream straight into a :class:`~repro.io.shards.ShardedCorpusWriter`.  No
whole-run :class:`CrawlCorpus` is ever materialized: the coordinator holds
one shard's payload batch at a time plus O(#identifiers) routing metadata,
so peak memory is bounded by the largest shard, not the corpus.  Because
shards partition the URL space (identifiers route resolve URLs, policy URLs
route themselves) and every failure/retry draw is a pure function of
``(seed, url, attempt)``, the produced store is **byte-identical** to
sharding the unsharded crawl's corpus — at any backend (serial, thread,
process), any worker count, cold or resumed.  Each record is stamped with its
global **discovery index** (the identifier's position in the coordinator's
listing frontier — the same index the unsharded resolve merge assigns), so
:meth:`CrawlPipeline.run` keeps the unsharded API exactly: with
``shards > 1`` (or the process backend) it runs the partitioned crawl and
rebuilds the corpus via :meth:`~repro.io.shards.ShardedCorpusStore.load_corpus`,
in byte-identical discovery order.

On the process backend, each shard sub-pipeline is rebuilt inside the
worker from a picklable :class:`ShardCrawlSpec` (ecosystem + seed + failure
injection), so the simulated network state is reconstructed — never
inherited through fork — and per-task RNG re-seeding keeps fork and spawn
start methods in agreement.

**Incremental epoch crawls.**  :meth:`CrawlPipeline.run_incremental` is the
delta-aware variant of :meth:`run_sharded` for a world that *churned*
(:mod:`repro.ecosystem.evolution`): it crawls the new listing frontier in
full (listings are cheap), then diffs the frontier against the parent
epoch's store — identifiers that existed before and are not in the change
feed are **carried forward shard-locally without any HTTP traffic**,
re-stamped with this epoch's discovery indices and store attributions;
only new/changed identifiers (and drifted or flapping-host policies) are
fetched.  Because unchanged records' bytes are pure functions of the
manifest they were fetched from, the produced store is byte-identical to
a cold crawl of the evolved ecosystem — at any backend, worker count,
cold or resumed — while paying HTTP only for the churn delta.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.crawler.corpus import CrawlCorpus, CrawledGPT
from repro.crawler.engine import (
    CrawlEngine,
    CrawlTask,
    HostRateLimiter,
    TaskOutcome,
    TaskQueue,
    FIFOTaskQueue,
)
from repro.crawler.gizmo_api import GizmoAPIClient, GizmoAPIServer
from repro.crawler.http import SimulatedHTTPLayer
from repro.crawler.policy_fetcher import PolicyFetcher, PolicyFetchResult
from repro.crawler.store_crawler import StoreCrawler
from repro.crawler.store_server import GPTStoreServer, install_store_servers
from repro.crawler.transport import RetryingTransport, TransportConfig
from repro.ecosystem.models import SyntheticEcosystem
from repro.exec import (
    ExecutionBackend,
    ProcessBackend,
    WorkerPool,
    get_backend,
    resolve_pool,
    shared_state,
)
from repro.io import CrawlCheckpoint
from repro.web.urls import url_host


@dataclass
class CrawlStatistics:
    """Aggregate statistics about one crawl run.

    Per-store numbers are *derived* from the corpus (the single source of
    truth) rather than mirrored into separate counters.
    """

    n_unique_identifiers: int = 0
    n_resolved: int = 0
    n_unresolved: int = 0
    n_policy_urls: int = 0
    n_policy_failures: int = 0
    n_http_requests: int = 0
    #: Retry attempts the transport issued beyond first tries.
    n_retries: int = 0
    #: 429 retries honored via Retry-After (separate from error retries).
    n_ratelimit_retries: int = 0
    #: Tasks skipped because a checkpoint already held their results.
    n_tasks_resumed: int = 0
    #: GPT records carried forward from a parent epoch without any HTTP
    #: traffic (incremental crawls only).
    n_records_carried: int = 0
    #: Policy records carried forward from a parent epoch without HTTP.
    n_policies_carried: int = 0
    #: host → {failure kind → count} for terminal transport failures during
    #: this run (kinds: exhausted-retries / circuit-open / deadline /
    #: redirect-loop).  Hosts that appear here degraded visibly instead of
    #: losing records silently; see :attr:`quarantined_hosts`.
    host_failure_taxonomy: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: The corpus this run produced (set by the pipeline).
    corpus: Optional[CrawlCorpus] = field(default=None, repr=False)

    @property
    def quarantined_hosts(self) -> List[str]:
        """Hosts with at least one terminal failure this run (sorted)."""
        return sorted(self.host_failure_taxonomy)

    @property
    def per_store_counts(self) -> Dict[str, int]:
        """Store → successfully crawled GPTs (from ``corpus.store_counts``)."""
        return dict(self.corpus.store_counts) if self.corpus is not None else {}

    @property
    def n_store_links(self) -> int:
        """Total listing links collected (from ``corpus.store_link_counts``)."""
        if self.corpus is None:
            return 0
        return sum(self.corpus.store_link_counts.values())

    @property
    def resolution_rate(self) -> float:
        """Fraction of identifiers that resolved to a manifest."""
        total = self.n_resolved + self.n_unresolved
        return self.n_resolved / total if total else 0.0


def _taxonomy_snapshot(taxonomy: Dict[str, Dict[str, int]]) -> Dict[str, Dict[str, int]]:
    """Deep-copy a per-host failure taxonomy (transport counters are
    cumulative across runs; snapshots keep statistics per-run)."""
    return {host: dict(kinds) for host, kinds in taxonomy.items()}


def _taxonomy_delta(
    before: Dict[str, Dict[str, int]], after: Dict[str, Dict[str, int]]
) -> Dict[str, Dict[str, int]]:
    """Per-host counts accumulated between two snapshots."""
    delta: Dict[str, Dict[str, int]] = {}
    for host, kinds in after.items():
        base = before.get(host, {})
        grown = {
            kind: count - base.get(kind, 0)
            for kind, count in kinds.items()
            if count - base.get(kind, 0) > 0
        }
        if grown:
            delta[host] = grown
    return delta


def _merge_taxonomy(
    target: Dict[str, Dict[str, int]], delta: Dict[str, Dict[str, int]]
) -> None:
    """Accumulate a taxonomy delta (order-independent, so shard completion
    order cannot perturb the merged counts)."""
    for host, kinds in delta.items():
        bucket = target.setdefault(host, {})
        for kind, count in kinds.items():
            bucket[kind] = bucket.get(kind, 0) + count


@dataclass(frozen=True)
class CrawlStage:
    """One declarative pipeline stage.

    ``build_tasks`` is evaluated when the stage starts (earlier stages have
    already merged, so it can depend on their output); ``encode`` turns a
    task result into a JSON-serializable checkpoint payload; ``merge``
    applies one payload — checkpointed or fresh — to the corpus.  Merging
    runs single-threaded in task order, which is what keeps seeded crawls
    deterministic at any worker count.
    """

    name: str
    build_tasks: Callable[[], List[CrawlTask]]
    encode: Callable[[object], object]
    merge: Callable[[str, object], None]


#: Structural key markers in canonical-JSON shard lines.  canonical_json
#: escapes quotes inside string values, so the unescaped marker can only
#: occur as the record's own key — a substring scan replaces a full JSON
#: parse on the incremental crawl's id-inventory passes.
_GPT_ID_MARKER = '"gpt_id":"'
_POLICY_URL_MARKER = '"url":"'


def _scan_string_field(line: str, marker: str, key: str) -> str:
    """Extract one top-level string field from a canonical-JSON line."""
    start = line.find(marker)
    if start >= 0:
        start += len(marker)
        end = line.index('"', start)
        value = line[start:end]
        if "\\" not in value:
            return value
    # Escaped or missing value: fall back to a real parse (never hit by
    # generated ids/URLs, which are plain ASCII without quotes).
    return str(json.loads(line)[key])


def _payload_gpt_id(line: str) -> str:
    """``gpt_id`` of one GPT shard line, without parsing the record."""
    return _scan_string_field(line, _GPT_ID_MARKER, "gpt_id")


def _payload_policy_url(line: str) -> str:
    """``url`` of one policy shard line, without parsing the record."""
    return _scan_string_field(line, _POLICY_URL_MARKER, "url")


_DISCOVERY_INDEX_MARKER = '"discovery_index":'
_SOURCE_STORES_MARKER = '"source_stores":['
_LEGAL_INFO_MARKER = '"legal_info_url":"'


def _serialize_store_list(stores: Sequence[str]) -> Optional[str]:
    """``canonical_json`` of a flat store-name list, without the encoder.

    Valid only for names that need no JSON escaping (anything the generator
    produces; ``ensure_ascii=False`` keeps non-ASCII raw, so only quotes,
    backslashes, and control characters disqualify a name).  Returns
    ``None`` when a name would need escaping — callers fall back to the
    real encoder path.
    """
    for store in stores:
        if '"' in store or "\\" in store or any(ord(char) < 0x20 for char in store):
            return None
    return "[" + ",".join(f'"{store}"' for store in stores) + "]"


def _restamp_carried_line(line: str, discovery_index: int, stores_json: str) -> Optional[str]:
    """Splice the two epoch-local fields into a carried record's raw line.

    A carried record's *content* bytes are already canonical (the parent
    wrote them with :func:`canonical_json`, which is deterministic), so the
    only bytes that change between epochs are the ``discovery_index`` value
    and the ``source_stores`` array — both epoch-N+1 facts.  Splicing them
    in place (``stores_json`` is the pre-serialized replacement array)
    yields the exact line a fresh serialization would produce at a fraction
    of the cost of the ``json.loads``/re-dump round trip, which is what
    dominated the carry phase's wall time at 50k records.  Returns ``None``
    when the line doesn't match the expected shape (the caller falls back
    to a real parse).
    """
    start = line.find(_DISCOVERY_INDEX_MARKER)
    if start < 0:
        return None
    start += len(_DISCOVERY_INDEX_MARKER)
    end = start
    while end < len(line) and line[end].isdigit():
        end += 1
    if end == start or end >= len(line) or line[end] not in ",}":
        return None
    line = f"{line[:start]}{discovery_index}{line[end:]}"

    start = line.find(_SOURCE_STORES_MARKER)
    if start < 0:
        return None
    start += len(_SOURCE_STORES_MARKER) - 1  # index of the opening '['
    end = line.find("]", start)
    if end < 0 or end + 1 >= len(line) or line[end + 1] not in ",}":
        return None
    segment = line[start:end]
    # The first ']' is the array's close only if no store name hides one
    # inside a string: no escapes, balanced quotes, and a single '[' mean
    # every quote in the segment is a real delimiter and the array is flat.
    if "\\" in segment or segment.count('"') % 2 or segment.count("[") != 1:
        return None
    return f"{line[:start]}{stores_json}{line[end + 1:]}"


def _scan_policy_urls(line: str) -> Optional[List[str]]:
    """Every action ``legal_info_url`` in a GPT record's raw line.

    Returns ``None`` when any URL contains an escape sequence (the caller
    must fall back to parsing the record); ``null`` and empty URLs simply
    don't match the marker or are dropped.
    """
    urls: List[str] = []
    cursor = 0
    while True:
        cursor = line.find(_LEGAL_INFO_MARKER, cursor)
        if cursor < 0:
            return urls
        cursor += len(_LEGAL_INFO_MARKER)
        end = line.index('"', cursor)
        value = line[cursor:end]
        if "\\" in value:
            return None
        if value:
            urls.append(value)
        cursor = end


class CrawlPipeline:
    """Runs the store-crawl → manifest-resolve → policy-fetch pipeline.

    Parameters
    ----------
    http:
        The simulated network.
    store_servers:
        The installed store servers to crawl.
    page_size:
        Listing page size (mirrors the store servers' configuration).
    workers:
        Worker-pool size for each stage (``<= 1`` crawls sequentially).
    transport_config:
        Retry/backoff/latency knobs for the transport wrapper.
    rate_limits:
        Optional host → requests/second politeness limits, enforced by the
        transport before every attempt (pagination pages and retries each
        consume a token).
    checkpoint_dir:
        Directory for incremental stage checkpoints (``None`` disables).
    resume:
        Load existing checkpoints and skip completed tasks.  When false, any
        checkpoints in ``checkpoint_dir`` are cleared at run start.
    checkpoint_every:
        Flush the checkpoint after this many completed tasks.
    checkpoint_shards:
        Partition each checkpoint stage into this many hash-routed shard
        files (mirrors :mod:`repro.io.shards`); ``1`` keeps the flat
        single-file layout.  Ignored when ``shards > 1`` — the partitioned
        crawl always checkpoints one shard file per crawl shard.
    shards:
        Partition the crawl itself into this many hash-routed shards (see
        the module docstring).  ``1`` keeps the classic single-corpus
        dataflow.
    backend:
        Execution backend for the per-shard sub-pipelines: ``"serial"``,
        ``"thread"``, ``"process"``, an
        :class:`~repro.exec.backends.ExecutionBackend` instance, or ``None``
        (serial at ``workers <= 1``, threads above).  The process backend
        requires an ecosystem-built pipeline (:meth:`from_ecosystem`), since
        workers reconstruct the simulated network from the ecosystem.
    """

    def __init__(
        self,
        http: SimulatedHTTPLayer,
        store_servers: List[GPTStoreServer],
        page_size: int = 50,
        workers: int = 0,
        transport_config: Optional[TransportConfig] = None,
        rate_limits: Optional[Dict[str, float]] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        checkpoint_every: int = 100,
        checkpoint_shards: int = 1,
        queue_factory: Callable[[], TaskQueue] = FIFOTaskQueue,
        shards: int = 1,
        backend: Union[str, ExecutionBackend, None] = None,
    ) -> None:
        self.http = http
        self.store_servers = store_servers
        self.page_size = page_size
        self.workers = workers
        # Accept a plain mapping (sweep scenarios store JSON overrides).
        transport_config = TransportConfig.coerce(transport_config)
        self.transport_config = transport_config
        self.rate_limits = dict(rate_limits) if rate_limits else None
        self.transport = RetryingTransport(
            http,
            transport_config,
            rate_limiter=HostRateLimiter(rate_limits) if rate_limits else None,
        )
        self.backend = backend
        # Stage tasks are closures over the shared transport, so the stage
        # engine never runs on the process backend; a process-backend
        # pipeline routes whole shard sub-pipelines there instead (run()
        # falls through to the partitioned dataflow).
        stage_backend = backend if not self._wants_process_backend() else None
        self.engine = CrawlEngine(
            workers=workers, queue_factory=queue_factory, backend=stage_backend
        )
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.checkpoint_every = max(1, checkpoint_every)
        self.checkpoint_shards = max(1, checkpoint_shards)
        self.shards = max(1, shards)
        #: The generating ecosystem, when known (set by from_ecosystem);
        #: required for process-backend shard workers.
        self.ecosystem: Optional[SyntheticEcosystem] = None
        self.statistics = CrawlStatistics()
        #: Warm pool this pipeline built for backend="process" (owned:
        #: closed when run_sharded finishes).  Instance backends are
        #: borrowed and never closed here.
        self._owned_pool: Optional[WorkerPool] = None
        #: The ShardCrawlSpec broadcast to process workers — built once per
        #: pipeline so pool.broadcast sees the same object across the
        #: resolve and policy phases (a new object would restart the pool).
        self._shard_spec_cache: Optional["ShardCrawlSpec"] = None
        #: Parent lineage of an in-flight incremental crawl, folded into the
        #: checkpoint fingerprint so a checkpoint taken against one parent
        #: epoch refuses to resume against another; ``None`` outside
        #: :meth:`run_incremental`.
        self._incremental_meta: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_ecosystem(
        cls,
        ecosystem: SyntheticEcosystem,
        page_size: int = 50,
        seed: int = 0,
        **kwargs: object,
    ) -> "CrawlPipeline":
        """Build a pipeline whose simulated network serves ``ecosystem``.

        Extra keyword arguments (``workers``, ``transport_config``,
        ``checkpoint_dir``, ``resume``, …) are forwarded to the constructor.
        """
        http = SimulatedHTTPLayer(seed=seed)
        store_servers = install_store_servers(http, ecosystem.store_listings, page_size=page_size)
        GizmoAPIServer(manifests=ecosystem.gpts).install(http)

        # Serve the generated policy documents; Actions whose policy the
        # generator marked unavailable get a 500 (internal server error), the
        # failure mode the paper reports in Section 5.1.1.
        for url, document in ecosystem.policies.items():
            content_type = "text/html" if document.kind != "tracking_pixel" else "image/gif"
            http.register_static(url, document.text, content_type=content_type)
        for action in ecosystem.actions.values():
            if action.legal_info_url and action.legal_info_url not in ecosystem.policies:
                http.set_status_override(action.legal_info_url, 500)
        pipeline = cls(http=http, store_servers=store_servers, page_size=page_size, **kwargs)
        pipeline.ecosystem = ecosystem
        return pipeline

    # ------------------------------------------------------------------
    # Stage definitions
    # ------------------------------------------------------------------
    def _listing_stage(self, corpus: CrawlCorpus,
                       identifier_sources: Dict[str, List[str]]) -> CrawlStage:
        crawler = StoreCrawler(self.transport)

        def build_tasks() -> List[CrawlTask]:
            return [
                CrawlTask(
                    key=server.name,
                    fn=lambda s=server: crawler.crawl(s.name, s.base_url),
                    host=server.domain,
                )
                for server in self.store_servers
            ]

        def encode(result: object) -> object:
            return {
                "n_links": result.n_links,
                "gpt_ids": result.gpt_ids,
                "pages_visited": result.pages_visited,
                "errors": result.errors,
            }

        def merge(store_name: str, payload: object) -> None:
            corpus.merge_listing(store_name, int(payload["n_links"]))
            for identifier in payload["gpt_ids"]:
                identifier_sources.setdefault(identifier, []).append(store_name)

        return CrawlStage("listing", build_tasks, encode, merge)

    def _resolve_stage(self, corpus: CrawlCorpus,
                       identifier_sources: Dict[str, List[str]]) -> CrawlStage:
        client = GizmoAPIClient(self.transport)

        def build_tasks() -> List[CrawlTask]:
            return [
                CrawlTask(
                    key=identifier,
                    fn=lambda i=identifier: client.fetch(i),
                    host="chat.openai.com",
                )
                for identifier in identifier_sources
            ]

        def encode(result: object) -> object:
            return {"status": result.status, "manifest": result.manifest}

        # Global discovery indices: each identifier's position in the
        # de-duplicated listing frontier.  Unresolved identifiers consume
        # an index too, so the sharded coordinator (which stamps from the
        # same frontier before resolution outcomes are known) agrees
        # byte-for-byte.  Built lazily: the frontier is final once the
        # listing stage has merged, before the first resolve merge runs.
        positions: Dict[str, int] = {}

        def merge(identifier: str, payload: object) -> None:
            if not positions:
                positions.update(
                    {ident: index for index, ident in enumerate(identifier_sources)}
                )
            manifest = payload.get("manifest")
            if manifest is None:
                corpus.merge_unresolved(identifier)
                self.statistics.n_unresolved += 1
                return
            self.statistics.n_resolved += 1
            stores = identifier_sources.get(identifier, [])
            gpt = CrawledGPT.from_manifest(manifest, source_store=stores[0] if stores else None)
            gpt.source_stores = sorted(set(stores))
            corpus.merge_gpt(gpt, discovery_index=positions[identifier])

        return CrawlStage("resolve", build_tasks, encode, merge)

    def _policy_stage(self, corpus: CrawlCorpus) -> CrawlStage:
        fetcher = PolicyFetcher(self.transport)

        def build_tasks() -> List[CrawlTask]:
            urls = sorted(
                {
                    action.legal_info_url
                    for action in corpus.unique_actions().values()
                    if action.legal_info_url
                }
            )
            return [
                CrawlTask(key=url, fn=lambda u=url: fetcher.fetch(u), host=url_host(url))
                for url in urls
            ]

        def encode(result: object) -> object:
            return {"status": result.status, "text": result.text, "error": result.error}

        def merge(url: str, payload: object) -> None:
            result = PolicyFetchResult(
                url=url,
                status=int(payload.get("status", 0)),
                text=payload.get("text"),
                error=payload.get("error"),
            )
            corpus.merge_policy(url, result)
            self.statistics.n_policy_urls += 1
            if not result.ok:
                self.statistics.n_policy_failures += 1

        return CrawlStage("policies", build_tasks, encode, merge)

    # ------------------------------------------------------------------
    # Shard-partitioned crawl
    # ------------------------------------------------------------------
    def _wants_process_backend(self) -> bool:
        pool = resolve_pool(self.backend)
        return (
            self.backend == "process"
            or isinstance(self.backend, ProcessBackend)
            or (pool is not None and pool.is_process)
        )

    def _shard_backend(self) -> ExecutionBackend:
        """The backend shard sub-pipelines run on.

        ``backend="process"`` builds one warm :class:`WorkerPool` reused
        across the resolve and policy phases (closed when ``run_sharded``
        finishes) instead of a cold pool per phase.  Never rate-limited at
        the task level: on the serial/thread backends the sub-pipelines
        share this pipeline's transport (and so its per-host buckets); the
        process backend refuses configured rate limits outright (see
        :meth:`_shard_crawl_spec`)."""
        if isinstance(self.backend, ExecutionBackend):
            return self.backend
        workers = self.workers if self.workers > 0 else 1
        if self.backend == "process":
            if self._owned_pool is None:
                self._owned_pool = WorkerPool(kind="process", workers=workers)
            return self._owned_pool
        return get_backend(self.backend, workers=workers)

    def _close_owned_pool(self) -> None:
        if self._owned_pool is not None:
            self._owned_pool.close()
            self._owned_pool = None

    def _shard_crawl_spec(self) -> "ShardCrawlSpec":
        if self._shard_spec_cache is not None:
            return self._shard_spec_cache
        if self.ecosystem is None:
            raise ValueError(
                "the process backend needs an ecosystem-built pipeline "
                "(CrawlPipeline.from_ecosystem) so shard workers can rebuild "
                "the simulated network"
            )
        if self.rate_limits:
            # Refuse rather than silently weaken politeness: each worker
            # process would rebuild its own token buckets, admitting up to
            # workers x the configured per-host rate (the same contract
            # CrawlEngine enforces for process + rate limiter).
            raise ValueError(
                "per-host rate limits cannot be enforced across process-"
                "backend shard workers (each would admit the full rate); "
                "re-run with `--backend thread` (or backend=\"thread\"), "
                "which shares one rate-limited transport across shard "
                "workers, or drop the rate limits to keep the process backend"
            )
        self._shard_spec_cache = ShardCrawlSpec(
            ecosystem=self.ecosystem,
            seed=self.http.seed,
            page_size=self.page_size,
            transport_config=self.transport_config,
            flaky_hosts=self.http.flaky_host_rates,
            checkpoint_dir=self.checkpoint_dir,
            checkpoint_every=self.checkpoint_every,
            shards=self.shards,
            hostile_spec=(
                self.http.hostile_spec if self.http.has_hostile_hosts else None
            ),
        )
        return self._shard_spec_cache

    def _run_shard_stage(
        self,
        stage_name: str,
        shard: int,
        keys: Sequence[str],
        report_network_stats: bool = False,
    ) -> Dict[str, object]:
        """Fetch one shard's slice of a stage, checkpointing incrementally.

        Runs in the coordinator (serial/thread backends, sharing the
        pipeline transport and therefore its rate limits) or inside a
        process worker on a rebuilt pipeline.  Returns the shard's records
        in key order plus resume/network counters.  Fetches within a shard
        are sequential; parallelism is across shards.
        """
        checkpoint: Optional[CrawlCheckpoint] = None
        if self.checkpoint_dir is not None:
            checkpoint = CrawlCheckpoint(self.checkpoint_dir, n_shards=self.shards)
        if stage_name == "resolve":
            client = GizmoAPIClient(self.transport)

            def fetch(key: str) -> Dict[str, object]:
                result = client.fetch(key)
                return {"status": result.status, "manifest": result.manifest}
        elif stage_name == "policies":
            fetcher = PolicyFetcher(self.transport)

            def fetch(key: str) -> Dict[str, object]:
                result = fetcher.fetch(key)
                return {"status": result.status, "text": result.text, "error": result.error}
        else:  # pragma: no cover - guarded by the phase runner
            raise ValueError(f"unknown shard stage {stage_name!r}")

        requests_before = self.http.request_count
        retries_before = self.transport.statistics.n_retries
        ratelimit_before = self.transport.statistics.n_ratelimit_retries
        taxonomy_before = _taxonomy_snapshot(self.transport.statistics.per_host_taxonomy)
        # Shard-sliced load + loadless append: the sub-pipeline's memory is
        # bounded by its own shard's records even when resuming a huge
        # checkpoint (load_stage would materialize every shard's payloads).
        done = (
            checkpoint.load_stage_for_shard(stage_name, shard)
            if checkpoint is not None
            else {}
        )
        records: List = []
        n_resumed = 0
        since_flush = 0
        for key in keys:
            payload = done.get(key)
            if payload is not None:
                n_resumed += 1
            else:
                payload = fetch(key)
                if checkpoint is not None:
                    checkpoint.append(stage_name, key, payload)
                    since_flush += 1
                    if since_flush % self.checkpoint_every == 0:
                        checkpoint.flush(stage_name)
            records.append((key, payload))
        if checkpoint is not None:
            checkpoint.flush(stage_name)
        result: Dict[str, object] = {"records": records, "n_resumed": n_resumed}
        if report_network_stats:
            result["n_http_requests"] = self.http.request_count - requests_before
            result["n_retries"] = self.transport.statistics.n_retries - retries_before
            result["n_ratelimit_retries"] = (
                self.transport.statistics.n_ratelimit_retries - ratelimit_before
            )
            result["host_taxonomy"] = _taxonomy_delta(
                taxonomy_before, self.transport.statistics.per_host_taxonomy
            )
        return result

    def _run_shard_phase(
        self,
        stage_name: str,
        shard_keys: Sequence[Sequence[str]],
        consume: Callable[[int, Sequence], None],
    ) -> None:
        """Fan one stage's shards out on the backend and stream the results.

        ``consume(shard, records)`` is called once per completed shard,
        serialized, in completion order; the backend drops each shard's
        payload after consumption (``keep_results=False``), so the
        coordinator holds at most one shard's records at a time.  Writes are
        order-safe under completion-order consumption because each shard's
        records route to that shard's files alone.
        """
        backend = self._shard_backend()
        pool = resolve_pool(backend)
        tasks: List[CrawlTask] = []
        if pool is not None and pool.is_process:
            # Warm-pool path: the ShardCrawlSpec (ecosystem included) is
            # broadcast once via the pool initializer; tasks carry only
            # (stage, shard, keys), so per-task pickles are identifier-sized.
            pool.broadcast(SHARD_SPEC_KEY, self._shard_crawl_spec())
            for shard, keys in enumerate(shard_keys):
                if not keys:
                    continue
                tasks.append(
                    CrawlTask(
                        key=f"{stage_name}-{shard:05d}",
                        fn=_shard_stage_task_shared,
                        args=(stage_name, shard, list(keys)),
                        seed=_shard_task_seed(self.http.seed, stage_name, shard),
                    )
                )
        elif isinstance(backend, ProcessBackend):
            spec = self._shard_crawl_spec()
            for shard, keys in enumerate(shard_keys):
                if not keys:
                    continue
                tasks.append(
                    CrawlTask(
                        key=f"{stage_name}-{shard:05d}",
                        fn=_shard_stage_task,
                        args=(spec, stage_name, shard, list(keys)),
                        seed=_shard_task_seed(self.http.seed, stage_name, shard),
                    )
                )
        else:
            for shard, keys in enumerate(shard_keys):
                if not keys:
                    continue
                tasks.append(
                    CrawlTask(
                        key=f"{stage_name}-{shard:05d}",
                        fn=self._run_shard_stage,
                        args=(stage_name, shard, list(keys)),
                    )
                )

        def on_result(outcome: TaskOutcome) -> None:
            if not outcome.ok:
                # Fetchers fold expected network failures into their
                # results, so an engine-level error is a code bug (or an
                # unpicklable payload on the process backend).
                raise RuntimeError(
                    f"shard crawl task {outcome.key!r} failed: {outcome.error}"
                )
            shard = int(outcome.key.rsplit("-", 1)[1])
            payload = outcome.result
            self.statistics.n_tasks_resumed += int(payload.get("n_resumed", 0))
            self.statistics.n_http_requests += int(payload.get("n_http_requests", 0))
            self.statistics.n_retries += int(payload.get("n_retries", 0))
            self.statistics.n_ratelimit_retries += int(
                payload.get("n_ratelimit_retries", 0)
            )
            _merge_taxonomy(
                self.statistics.host_failure_taxonomy,
                payload.get("host_taxonomy") or {},
            )
            consume(shard, payload["records"])

        backend.run(tasks, on_result=on_result, keep_results=False)

    def run_sharded(
        self,
        shard_dir: str,
        flush_every: int = 1000,
        epoch: int = 0,
        parent_fingerprint: Optional[str] = None,
    ):
        """Run the shard-partitioned crawl, streaming into a sharded store.

        Returns the published :class:`~repro.io.shards.ShardedCorpusStore`
        at ``shard_dir`` — byte-identical to
        ``ShardedCorpusStore.write_corpus(self.run(), self.shards)`` without
        ever materializing the whole-run corpus.  See the module docstring
        for the dataflow.  With ``backend="process"`` one warm
        :class:`~repro.exec.WorkerPool` spans the resolve and policy phases
        and is closed on the way out (interrupted runs included); a
        caller-supplied pool instance stays open for reuse.

        ``epoch``/``parent_fingerprint`` stamp the produced store's lineage
        without changing a single record byte — the byte-identity oracle for
        :meth:`run_incremental` is a cold ``run_sharded`` of the evolved
        ecosystem stamped with the incremental store's lineage.
        """
        try:
            return self._run_sharded(shard_dir, flush_every, epoch, parent_fingerprint)
        finally:
            self._close_owned_pool()

    def _run_sharded(
        self,
        shard_dir: str,
        flush_every: int,
        epoch: int = 0,
        parent_fingerprint: Optional[str] = None,
    ):
        from repro.io.shards import ShardedCorpusWriter, shard_index

        self.statistics = CrawlStatistics()
        requests_before = self.http.request_count
        retries_before = self.transport.statistics.n_retries
        ratelimit_before = self.transport.statistics.n_ratelimit_retries
        taxonomy_before = _taxonomy_snapshot(self.transport.statistics.per_host_taxonomy)
        checkpoint = self._open_checkpoint(n_shards=self.shards)
        if checkpoint is not None:
            # Settle the layout marker before any shard sub-pipeline opens
            # its own view of the directory (their flushes would otherwise
            # race to write it).
            checkpoint.ensure_layout()

        # Stage 1 — listing, in the coordinator: the identifier frontier
        # must exist before it can be partitioned.  The throwaway corpus
        # holds per-store link counts only, never GPT records.
        identifier_sources: Dict[str, List[str]] = {}
        listing_counts = CrawlCorpus()
        self._run_stage(self._listing_stage(listing_counts, identifier_sources), checkpoint)
        self.statistics.n_unique_identifiers = len(identifier_sources)
        identifier_order = list(identifier_sources)
        shard_ids: List[List[str]] = [[] for _ in range(self.shards)]
        for identifier in identifier_order:
            shard_ids[shard_index(identifier, self.shards)].append(identifier)

        writer = ShardedCorpusWriter(
            shard_dir,
            n_shards=self.shards,
            flush_every=flush_every,
            epoch=epoch,
            parent_fingerprint=parent_fingerprint,
        )
        unresolved: Set[str] = set()
        policy_urls: Set[str] = set()
        # The coordinator owns the listing order, so it stamps each record's
        # global discovery index — the identifier's frontier position, the
        # same index the unsharded ``_resolve_stage`` merge assigns.  Each
        # shard's id list is a frontier subsequence and records come back in
        # key order, so every shard file is written index-ascending (the
        # invariant the store's discovery-order merge reads rely on).
        frontier_position = {
            identifier: position for position, identifier in enumerate(identifier_order)
        }

        # Stage 2 — resolve, one sub-pipeline per shard.  Resolved GPTs
        # stream straight into the shard writer (each shard's records route
        # to its own shard file, so completion-order consumption is safe).
        def consume_resolve(shard: int, records: Sequence) -> None:
            for identifier, payload in records:
                manifest = payload.get("manifest")
                if manifest is None:
                    unresolved.add(identifier)
                    self.statistics.n_unresolved += 1
                    continue
                self.statistics.n_resolved += 1
                stores = identifier_sources.get(identifier, [])
                gpt = CrawledGPT.from_manifest(
                    manifest, source_store=stores[0] if stores else None
                )
                gpt.source_stores = sorted(set(stores))
                for action in gpt.actions:
                    if action.legal_info_url:
                        policy_urls.add(action.legal_info_url)
                writer.add_gpt(gpt, discovery_index=frontier_position[identifier])

        self._run_shard_phase("resolve", shard_ids, consume_resolve)

        # Stage 3 — policies: the global URL set (sorted, as in the
        # unsharded pipeline) routes each URL to exactly one shard, so a
        # policy referenced by GPTs in several shards is fetched once.
        shard_urls: List[List[str]] = [[] for _ in range(self.shards)]
        for url in sorted(policy_urls):
            shard_urls[shard_index(url, self.shards)].append(url)

        def consume_policies(shard: int, records: Sequence) -> None:
            for url, payload in records:
                result = PolicyFetchResult(
                    url=url,
                    status=int(payload.get("status", 0)),
                    text=payload.get("text"),
                    error=payload.get("error"),
                )
                writer.add_policy(result)
                self.statistics.n_policy_urls += 1
                if not result.ok:
                    self.statistics.n_policy_failures += 1

        self._run_shard_phase("policies", shard_urls, consume_policies)

        # Manifest metadata: unresolved identifiers re-interleaved into the
        # global discovery order the unsharded corpus records them in.
        writer.set_metadata(
            store_link_counts=listing_counts.store_link_counts,
            unresolved_gpt_ids=[i for i in identifier_order if i in unresolved],
        )
        store = writer.close()
        # Coordinator-side network counters (listing pages always; resolve
        # and policy fetches too on the serial/thread backends, which share
        # this pipeline's transport — process workers reported their own).
        self.statistics.n_http_requests += self.http.request_count - requests_before
        self.statistics.n_retries += self.transport.statistics.n_retries - retries_before
        self.statistics.n_ratelimit_retries += (
            self.transport.statistics.n_ratelimit_retries - ratelimit_before
        )
        _merge_taxonomy(
            self.statistics.host_failure_taxonomy,
            _taxonomy_delta(taxonomy_before, self.transport.statistics.per_host_taxonomy),
        )
        return store

    # ------------------------------------------------------------------
    # Incremental (delta-aware) crawl
    # ------------------------------------------------------------------
    def run_incremental(
        self,
        shard_dir: str,
        parent,
        changed_gpt_ids: Sequence[str] = (),
        changed_policy_urls: Sequence[str] = (),
        epoch: Optional[int] = None,
        flush_every: int = 1000,
    ):
        """Re-crawl the (evolved) ecosystem as a delta over a parent store.

        ``parent`` is the :class:`~repro.io.shards.ShardedCorpusStore` a
        previous epoch's crawl published; ``changed_gpt_ids`` /
        ``changed_policy_urls`` are the change feed (e.g. an
        :class:`~repro.ecosystem.evolution.EpochDelta`'s ``changed_gpt_ids``
        and ``changed_policy_urls``).  The listing stage runs in full —
        discovering *what exists now* is the one question the parent cannot
        answer, and listings are ~2% of a cold crawl's requests — then every
        frontier identifier the parent already answered that the feed does
        not name is carried forward shard-locally **without HTTP traffic**;
        only new/changed identifiers (and drifted or flapping-host policies)
        are fetched.  The published store is byte-identical to a cold
        :meth:`run_sharded` of the evolved ecosystem (same lineage stamp),
        at any backend, worker count, cold or resumed.

        Raises
        ------
        ValueError
            When the parent store predates discovery indices (schema 1),
            when its shard count differs from this pipeline's, or when
            resuming a checkpoint taken against a different parent epoch.
        """
        try:
            return self._run_incremental(
                shard_dir,
                parent,
                set(changed_gpt_ids),
                set(changed_policy_urls),
                epoch,
                flush_every,
            )
        finally:
            self._close_owned_pool()
            self._incremental_meta = None

    def _run_incremental(
        self,
        shard_dir: str,
        parent,
        changed_ids: Set[str],
        changed_policies: Set[str],
        epoch: Optional[int],
        flush_every: int,
    ):
        from repro.io.corpus import gpt_to_payload
        from repro.io.shards import ShardedCorpusWriter, shard_index

        parent_manifest = parent.manifest
        if not parent_manifest.supports_discovery_order:
            raise ValueError(
                "incremental crawls need a parent store with per-record "
                "discovery indices (manifest schema >= 2); this store is "
                f"schema {parent_manifest.schema} — re-crawl it cold first"
            )
        if parent_manifest.n_shards != self.shards:
            raise ValueError(
                f"parent store has {parent_manifest.n_shards} shards but this "
                f"pipeline is configured for {self.shards}; carry-forward is "
                "shard-local, so the layouts must match"
            )
        parent_fingerprint = parent.fingerprint()
        if epoch is None:
            epoch = parent_manifest.epoch + 1

        self.statistics = CrawlStatistics()
        requests_before = self.http.request_count
        retries_before = self.transport.statistics.n_retries
        ratelimit_before = self.transport.statistics.n_ratelimit_retries
        taxonomy_before = _taxonomy_snapshot(self.transport.statistics.per_host_taxonomy)
        self._incremental_meta = {"parent": parent_fingerprint, "epoch": epoch}
        checkpoint = self._open_checkpoint(n_shards=self.shards)
        if checkpoint is not None:
            checkpoint.ensure_layout()

        # Stage 1 — listing, in full (same as run_sharded).
        identifier_sources: Dict[str, List[str]] = {}
        listing_counts = CrawlCorpus()
        self._run_stage(self._listing_stage(listing_counts, identifier_sources), checkpoint)
        self.statistics.n_unique_identifiers = len(identifier_sources)
        identifier_order = list(identifier_sources)
        shard_ids: List[List[str]] = [[] for _ in range(self.shards)]
        for identifier in identifier_order:
            shard_ids[shard_index(identifier, self.shards)].append(identifier)
        frontier_position = {
            identifier: position for position, identifier in enumerate(identifier_order)
        }

        # Parent inventory: one id-only pass per shard.  shard_index is the
        # same hash at equal shard counts, so parent shard s holds exactly
        # shard s's carry-forward candidates.
        parent_resolved: List[Set[str]] = [
            {_payload_gpt_id(line) for line in parent.iter_shard_lines("gpts", shard)}
            for shard in range(self.shards)
        ]
        parent_unresolved = set(parent_manifest.unresolved_gpt_ids)

        # Partition the frontier: anything the parent answered that the
        # change feed does not name is carried without HTTP — including
        # identifiers the parent saw 404 for (dead listing links recur
        # epoch to epoch).
        unresolved: Set[str] = set()
        carried: List[Set[str]] = [set() for _ in range(self.shards)]
        fetch_ids: List[List[str]] = [[] for _ in range(self.shards)]
        for shard, keys in enumerate(shard_ids):
            for identifier in keys:
                if identifier not in changed_ids:
                    if identifier in parent_resolved[shard]:
                        carried[shard].add(identifier)
                        continue
                    if identifier in parent_unresolved:
                        unresolved.add(identifier)
                        self.statistics.n_unresolved += 1
                        continue
                fetch_ids[shard].append(identifier)

        # Stage 2 — resolve only the delta.  Fetched payloads are buffered
        # per shard (the delta is the churn, not the corpus), so each shard
        # file can then be written carried+fetched in one index-ascending
        # pass — the same write order a cold sharded crawl produces.
        fetched: Dict[int, List] = {}
        self._run_shard_phase(
            "resolve",
            fetch_ids,
            lambda shard, records: fetched.setdefault(shard, []).extend(records),
        )

        writer = ShardedCorpusWriter(
            shard_dir,
            n_shards=self.shards,
            flush_every=flush_every,
            epoch=epoch,
            parent_fingerprint=parent_fingerprint,
        )
        policy_urls: Set[str] = set()
        # Store sets repeat across records, so each unique set is serialized
        # for the line splice exactly once (None = needs the real encoder).
        stores_json_cache: Dict[Tuple[str, ...], Optional[str]] = {}
        for shard in range(self.shards):
            entries: List = []
            for identifier, payload in fetched.get(shard, ()):
                manifest = payload.get("manifest")
                if manifest is None:
                    unresolved.add(identifier)
                    self.statistics.n_unresolved += 1
                    continue
                self.statistics.n_resolved += 1
                stores = identifier_sources.get(identifier, [])
                gpt = CrawledGPT.from_manifest(
                    manifest, source_store=stores[0] if stores else None
                )
                gpt.source_stores = sorted(set(stores))
                entries.append((frontier_position[identifier], gpt_to_payload(gpt)))
            if carried[shard]:
                for line in parent.iter_shard_lines("gpts", shard):
                    identifier = _payload_gpt_id(line)
                    if identifier not in carried[shard]:
                        continue
                    # Store attribution is an epoch-N+1 fact (listings
                    # re-shuffle), not a carried byte: re-stamp it from this
                    # frontier, like the discovery index.  The splice keeps
                    # the record's content bytes untouched; only when the
                    # line doesn't match the canonical shape does the slow
                    # parse/re-dump path run.
                    stores = sorted(set(identifier_sources.get(identifier, [])))
                    position = frontier_position[identifier]
                    key = tuple(stores)
                    if key not in stores_json_cache:
                        stores_json_cache[key] = _serialize_store_list(stores)
                    stores_json = stores_json_cache[key]
                    restamped = (
                        None
                        if stores_json is None
                        else _restamp_carried_line(line, position, stores_json)
                    )
                    if restamped is None:
                        record = json.loads(line)
                        record["source_stores"] = stores
                        entries.append((position, record))
                    else:
                        entries.append((position, (restamped, identifier, stores)))
                    self.statistics.n_resolved += 1
                    self.statistics.n_records_carried += 1
            entries.sort(key=lambda entry: entry[0])
            for position, record in entries:
                if isinstance(record, dict):
                    for action in record["actions"]:
                        url = action.get("legal_info_url")
                        if url:
                            policy_urls.add(url)
                    writer.add_gpt_payload(record, discovery_index=position)
                    continue
                line, identifier, stores = record
                urls = _scan_policy_urls(line)
                if urls is None:
                    urls = [
                        action.get("legal_info_url")
                        for action in json.loads(line)["actions"]
                        if action.get("legal_info_url")
                    ]
                policy_urls.update(urls)
                writer.add_gpt_line(
                    line, gpt_id=identifier, discovery_index=position, source_stores=stores
                )

        # Stage 3 — policies.  A URL is carried when the parent fetched it,
        # the drift feed does not name it, and its host is not flapping:
        # flapping hosts stamp responses with per-visit revision markers the
        # parent cannot vouch for, so refetching (at attempt 0, like a cold
        # crawl's first visit) is what keeps byte-identity.
        flapping_hosts = (
            set(self.http.hostile_spec.get("flapping", {}))
            if self.http.has_hostile_hosts
            else set()
        )
        shard_urls: List[List[str]] = [[] for _ in range(self.shards)]
        for url in sorted(policy_urls):
            shard_urls[shard_index(url, self.shards)].append(url)
        parent_policies: List[Set[str]] = [
            {_payload_policy_url(line) for line in parent.iter_shard_lines("policies", shard)}
            for shard in range(self.shards)
        ]
        carried_urls: List[Set[str]] = [set() for _ in range(self.shards)]
        fetch_urls: List[List[str]] = [[] for _ in range(self.shards)]
        for shard, urls in enumerate(shard_urls):
            for url in urls:
                if (
                    url in parent_policies[shard]
                    and url not in changed_policies
                    and url_host(url) not in flapping_hosts
                ):
                    carried_urls[shard].add(url)
                else:
                    fetch_urls[shard].append(url)

        fetched_policies: Dict[int, Dict[str, Dict[str, object]]] = {}
        self._run_shard_phase(
            "policies",
            fetch_urls,
            lambda shard, records: fetched_policies.setdefault(shard, {}).update(
                dict(records)
            ),
        )

        for shard, urls in enumerate(shard_urls):
            if not urls:
                continue
            carried_payloads: Dict[str, Dict[str, object]] = {}
            if carried_urls[shard]:
                for line in parent.iter_shard_lines("policies", shard):
                    url = _payload_policy_url(line)
                    if url in carried_urls[shard]:
                        carried_payloads[url] = json.loads(line)
            fresh = fetched_policies.get(shard, {})
            for url in urls:
                payload = carried_payloads.get(url)
                if payload is not None:
                    writer.add_policy_payload(url, payload)
                    self.statistics.n_policies_carried += 1
                    self.statistics.n_policy_urls += 1
                    if payload.get("text") is None:
                        self.statistics.n_policy_failures += 1
                    continue
                raw = fresh[url]
                result = PolicyFetchResult(
                    url=url,
                    status=int(raw.get("status", 0)),
                    text=raw.get("text"),
                    error=raw.get("error"),
                )
                writer.add_policy(result)
                self.statistics.n_policy_urls += 1
                if not result.ok:
                    self.statistics.n_policy_failures += 1

        writer.set_metadata(
            store_link_counts=listing_counts.store_link_counts,
            unresolved_gpt_ids=[i for i in identifier_order if i in unresolved],
        )
        store = writer.close()
        self.statistics.n_http_requests += self.http.request_count - requests_before
        self.statistics.n_retries += self.transport.statistics.n_retries - retries_before
        self.statistics.n_ratelimit_retries += (
            self.transport.statistics.n_ratelimit_retries - ratelimit_before
        )
        _merge_taxonomy(
            self.statistics.host_failure_taxonomy,
            _taxonomy_delta(taxonomy_before, self.transport.statistics.per_host_taxonomy),
        )
        return store

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run_stage(self, stage: CrawlStage,
                   checkpoint: Optional[CrawlCheckpoint]) -> None:
        tasks = stage.build_tasks()
        done: Dict[str, object] = (
            dict(checkpoint.load_stage(stage.name)) if checkpoint is not None else {}
        )
        pending = [task for task in tasks if task.key not in done]
        self.statistics.n_tasks_resumed += len(tasks) - len(pending)

        fresh: Dict[str, object] = {}
        if pending:
            flush_counter = {"n": 0}

            def on_result(outcome: TaskOutcome) -> None:
                if not outcome.ok:
                    # Fetchers fold expected network failures into their
                    # results, so an engine-level error is a code bug.
                    raise RuntimeError(
                        f"crawl task {outcome.key!r} failed: {outcome.error}"
                    )
                payload = stage.encode(outcome.result)
                fresh[outcome.key] = payload
                if checkpoint is not None:
                    checkpoint.record(stage.name, outcome.key, payload)
                    flush_counter["n"] += 1
                    if flush_counter["n"] % self.checkpoint_every == 0:
                        checkpoint.flush(stage.name)

            self.engine.on_result = on_result
            try:
                self.engine.run(pending)
            finally:
                self.engine.on_result = None
                if checkpoint is not None:
                    checkpoint.flush(stage.name)

        # Deterministic merge: apply payloads in task order, whether they
        # came from the checkpoint or from this run.
        for task in tasks:
            payload = done.get(task.key, fresh.get(task.key))
            stage.merge(task.key, payload)

    def _checkpoint_fingerprint(self) -> Dict[str, object]:
        """What must match for a checkpoint to be resumable by this crawl."""
        fingerprint: Dict[str, object] = {
            "seed": self.http.seed,
            "page_size": self.page_size,
            "stores": [server.name for server in self.store_servers],
            "n_listings": sum(len(server.listings) for server in self.store_servers),
        }
        if self.http.has_hostile_hosts:
            # Hostile behaviors change which fetches fail, so a checkpoint
            # from a differently-hostile crawl must not be resumed.
            fingerprint["hostile"] = self.http.hostile_spec
        if self._incremental_meta is not None:
            # An incremental crawl's fetch set is derived from the parent
            # store: resuming against a different parent (or epoch) would
            # splice two deltas into one corpus.
            fingerprint["incremental"] = dict(self._incremental_meta)
        return fingerprint

    def _open_checkpoint(self, n_shards: int) -> Optional[CrawlCheckpoint]:
        """Open (and clear or fingerprint-check) the configured checkpoint."""
        if self.checkpoint_dir is None:
            return None
        checkpoint = CrawlCheckpoint(self.checkpoint_dir, n_shards=n_shards)
        fingerprint = self._checkpoint_fingerprint()
        if not self.resume:
            checkpoint.clear()
        else:
            existing = checkpoint.load_meta()
            if existing is not None and existing != fingerprint:
                raise ValueError(
                    "checkpoint at "
                    f"{self.checkpoint_dir!r} was written by a different "
                    "crawl configuration; pass resume=False to start over"
                )
        checkpoint.write_meta(fingerprint)
        return checkpoint

    def run(self) -> CrawlCorpus:
        """Run the crawl and return the resulting corpus.

        With ``shards > 1`` (or the process backend) this is the
        compatibility path over :meth:`run_sharded`: the partitioned crawl
        streams into a temporary sharded store, and the corpus is rebuilt
        from it in **exact discovery order** (the store records each
        record's discovery index) — byte-identical to an unsharded run,
        record order included.

        Raises
        ------
        ValueError
            When resuming against a checkpoint written by a crawl with a
            different configuration (seed, stores, or ecosystem size) —
            merging it would silently corrupt the corpus.
        """
        if self.shards > 1 or self._wants_process_backend():
            with tempfile.TemporaryDirectory(prefix="repro-crawl-shards-") as root:
                # The store records discovery indices, so the rebuilt corpus
                # comes back in exact discovery order — identical record
                # order (not just record set) to an unsharded run.
                corpus = self.run_sharded(root).load_corpus()
            self.statistics.corpus = corpus
            return corpus

        corpus = CrawlCorpus()
        self.statistics = CrawlStatistics(corpus=corpus)
        # The layer and transport counters are cumulative across runs of the
        # same pipeline; snapshot them so statistics stay per-run.
        requests_before = self.http.request_count
        retries_before = self.transport.statistics.n_retries
        ratelimit_before = self.transport.statistics.n_ratelimit_retries
        taxonomy_before = _taxonomy_snapshot(self.transport.statistics.per_host_taxonomy)
        checkpoint = self._open_checkpoint(n_shards=self.checkpoint_shards)

        identifier_sources: Dict[str, List[str]] = {}
        stages: Sequence[Callable[[], CrawlStage]] = (
            lambda: self._listing_stage(corpus, identifier_sources),
            lambda: self._resolve_stage(corpus, identifier_sources),
            lambda: self._policy_stage(corpus),
        )
        for build_stage in stages:
            stage = build_stage()
            self._run_stage(stage, checkpoint)
            if stage.name == "listing":
                self.statistics.n_unique_identifiers = len(identifier_sources)

        self.statistics.n_http_requests = self.http.request_count - requests_before
        self.statistics.n_retries = self.transport.statistics.n_retries - retries_before
        self.statistics.n_ratelimit_retries = (
            self.transport.statistics.n_ratelimit_retries - ratelimit_before
        )
        self.statistics.host_failure_taxonomy = _taxonomy_delta(
            taxonomy_before, self.transport.statistics.per_host_taxonomy
        )
        return corpus


# ---------------------------------------------------------------------------
# Process-backend shard workers
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ShardCrawlSpec:
    """Everything a process worker needs to rebuild one shard sub-pipeline.

    Plain picklable data: the generating ecosystem, the crawl seed, and the
    network/transport configuration (including failure injection configured
    on the coordinator's HTTP layer).  Workers never inherit simulated
    network state through fork — they reconstruct it, which is what keeps
    fork and spawn start methods (and therefore macOS and Linux CI) in
    byte-for-byte agreement.
    """

    ecosystem: SyntheticEcosystem
    seed: int
    page_size: int
    transport_config: Optional[TransportConfig]
    # No rate_limits field: _shard_crawl_spec refuses rate-limited crawls
    # outright (per-process token buckets would admit workers x the
    # configured per-host rate), so workers never carry them.
    flaky_hosts: Dict[str, float]
    checkpoint_dir: Optional[str]
    checkpoint_every: int
    shards: int
    #: Adversarial host behaviors (see SimulatedHTTPLayer.hostile_spec);
    #: ``None`` when the coordinator's network has none configured.
    hostile_spec: Optional[Dict[str, Dict[str, object]]] = None


def _shard_task_seed(seed: int, stage_name: str, shard: int) -> int:
    """Stable per-(stage, shard) seed for the worker's module-level RNG."""
    import hashlib

    digest = hashlib.sha256(f"{seed}:{stage_name}:{shard}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _build_shard_pipeline(spec: ShardCrawlSpec) -> "CrawlPipeline":
    """Rebuild the simulated network a shard worker fetches against."""
    pipeline = CrawlPipeline.from_ecosystem(
        spec.ecosystem,
        page_size=spec.page_size,
        seed=spec.seed,
        transport_config=spec.transport_config,
        checkpoint_dir=spec.checkpoint_dir,
        checkpoint_every=spec.checkpoint_every,
        shards=spec.shards,
    )
    for host, rate in spec.flaky_hosts.items():
        pipeline.http.set_flaky_host(host, rate)
    if spec.hostile_spec:
        pipeline.http.apply_hostile_spec(spec.hostile_spec)
    return pipeline


def _shard_stage_task(
    spec: ShardCrawlSpec, stage_name: str, shard: int, keys: List[str]
) -> Dict[str, object]:
    """Run one shard's resolve/policy sub-stage in an isolated worker.

    The rebuilt pipeline shares nothing with the coordinator except the
    spec; per-URL failure and retry draws are pure functions of
    ``(seed, url, attempt)`` and the shards partition the URL space, so the
    records match a coordinator-side run exactly.
    """
    pipeline = _build_shard_pipeline(spec)
    return pipeline._run_shard_stage(stage_name, shard, keys, report_network_stats=True)


#: Broadcast key the sharded crawl registers its ShardCrawlSpec under.
SHARD_SPEC_KEY = "crawl/shard-spec"

#: Worker-local (spec, pipeline) pair so a warm worker rebuilds the
#: simulated network once per broadcast, not once per (stage, shard) task.
#: Keyed by spec identity: the broadcast payload is installed once per
#: worker, so identity is stable until a new spec is broadcast (which
#: restarts the pool and clears this module state with it on spawn; on
#: fork the identity check alone invalidates the entry).
_WORKER_SHARD_PIPELINE: List = []


def _shard_stage_task_shared(
    stage_name: str, shard: int, keys: List[str]
) -> Dict[str, object]:
    """Warm-pool shard sub-stage: fetch the spec from broadcast state.

    Identifier-sized task payload; the ecosystem-sized spec shipped once
    via the pool initializer.  Safe to reuse one rebuilt pipeline across
    tasks because failure/retry draws are pure in ``(seed, url, attempt)``
    and ``_run_shard_stage`` snapshots its network counters per call.
    """
    spec = shared_state(SHARD_SPEC_KEY)
    if not _WORKER_SHARD_PIPELINE or _WORKER_SHARD_PIPELINE[0] is not spec:
        _WORKER_SHARD_PIPELINE[:] = [spec, _build_shard_pipeline(spec)]
    pipeline = _WORKER_SHARD_PIPELINE[1]
    return pipeline._run_shard_stage(stage_name, shard, keys, report_network_stats=True)
