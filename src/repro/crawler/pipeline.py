"""End-to-end crawl pipeline.

``CrawlPipeline.from_ecosystem`` wires a :class:`SyntheticEcosystem` into a
simulated network — store servers, the gizmo manifest API, and the privacy
policy documents — and :meth:`CrawlPipeline.run` then performs the same crawl
the paper describes in Section 3.1:

1. crawl every store's listing pages and extract GPT identifiers;
2. de-duplicate identifiers across stores;
3. resolve each identifier against the gizmo API (404s are recorded);
4. parse manifests into :class:`~repro.crawler.corpus.CrawledGPT` records;
5. fetch every Action's privacy policy (some fail with server errors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.crawler.corpus import CrawlCorpus, CrawledGPT
from repro.crawler.gizmo_api import GizmoAPIClient, GizmoAPIServer
from repro.crawler.http import SimulatedHTTPLayer
from repro.crawler.policy_fetcher import PolicyFetcher
from repro.crawler.store_crawler import StoreCrawler
from repro.crawler.store_server import GPTStoreServer, install_store_servers
from repro.ecosystem.models import SyntheticEcosystem


@dataclass
class CrawlStatistics:
    """Aggregate statistics about one crawl run."""

    n_store_links: int = 0
    n_unique_identifiers: int = 0
    n_resolved: int = 0
    n_unresolved: int = 0
    n_policy_urls: int = 0
    n_policy_failures: int = 0
    n_http_requests: int = 0
    per_store_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def resolution_rate(self) -> float:
        """Fraction of identifiers that resolved to a manifest."""
        total = self.n_resolved + self.n_unresolved
        return self.n_resolved / total if total else 0.0


class CrawlPipeline:
    """Runs the full store-crawl → manifest-resolve → policy-fetch pipeline."""

    def __init__(
        self,
        http: SimulatedHTTPLayer,
        store_servers: List[GPTStoreServer],
        page_size: int = 50,
    ) -> None:
        self.http = http
        self.store_servers = store_servers
        self.page_size = page_size
        self.statistics = CrawlStatistics()

    # ------------------------------------------------------------------
    @classmethod
    def from_ecosystem(
        cls,
        ecosystem: SyntheticEcosystem,
        page_size: int = 50,
        seed: int = 0,
    ) -> "CrawlPipeline":
        """Build a pipeline whose simulated network serves ``ecosystem``."""
        http = SimulatedHTTPLayer(seed=seed)
        store_servers = install_store_servers(http, ecosystem.store_listings, page_size=page_size)
        GizmoAPIServer(manifests=ecosystem.gpts).install(http)

        # Serve the generated policy documents; Actions whose policy the
        # generator marked unavailable get a 500 (internal server error), the
        # failure mode the paper reports in Section 5.1.1.
        for url, document in ecosystem.policies.items():
            content_type = "text/html" if document.kind != "tracking_pixel" else "image/gif"
            http.register_static(url, document.text, content_type=content_type)
        for action in ecosystem.actions.values():
            if action.legal_info_url and action.legal_info_url not in ecosystem.policies:
                http.set_status_override(action.legal_info_url, 500)
        return cls(http=http, store_servers=store_servers, page_size=page_size)

    # ------------------------------------------------------------------
    def run(self) -> CrawlCorpus:
        """Run the crawl and return the resulting corpus."""
        corpus = CrawlCorpus()
        crawler = StoreCrawler(self.http)
        gizmo_client = GizmoAPIClient(self.http)

        identifier_sources: Dict[str, List[str]] = {}
        for server in self.store_servers:
            result = crawler.crawl(server.name, server.base_url)
            corpus.store_link_counts[server.name] = result.n_links
            self.statistics.n_store_links += result.n_links
            for identifier in result.gpt_ids:
                identifier_sources.setdefault(identifier, []).append(server.name)

        self.statistics.n_unique_identifiers = len(identifier_sources)

        for identifier, stores in identifier_sources.items():
            fetch = gizmo_client.fetch(identifier)
            if not fetch.ok:
                corpus.unresolved_gpt_ids.append(identifier)
                self.statistics.n_unresolved += 1
                continue
            self.statistics.n_resolved += 1
            gpt = CrawledGPT.from_manifest(fetch.manifest, source_store=stores[0])
            gpt.source_stores = sorted(set(stores))
            corpus.gpts[gpt.gpt_id] = gpt
            for store in gpt.source_stores:
                corpus.store_counts[store] = corpus.store_counts.get(store, 0) + 1

        self._fetch_policies(corpus)
        self.statistics.per_store_counts = dict(corpus.store_counts)
        self.statistics.n_http_requests = self.http.request_count
        return corpus

    def _fetch_policies(self, corpus: CrawlCorpus) -> None:
        fetcher = PolicyFetcher(self.http)
        urls: Set[str] = set()
        for action in corpus.unique_actions().values():
            if action.legal_info_url:
                urls.add(action.legal_info_url)
        for url in sorted(urls):
            result = fetcher.fetch(url)
            corpus.policies[url] = result
            if not result.ok:
                self.statistics.n_policy_failures += 1
        self.statistics.n_policy_urls = len(urls)
