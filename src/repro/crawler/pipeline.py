"""End-to-end crawl pipeline on the concurrent crawl engine.

``CrawlPipeline.from_ecosystem`` wires a :class:`SyntheticEcosystem` into a
simulated network — store servers, the gizmo manifest API, and the privacy
policy documents — and :meth:`CrawlPipeline.run` then performs the same crawl
the paper describes in Section 3.1, rebuilt as three declarative stages
scheduled by :class:`~repro.crawler.engine.CrawlEngine`:

1. **listing** — crawl every store's listing pages and extract GPT
   identifiers (one task per store);
2. **resolve** — de-duplicate identifiers across stores and resolve each one
   against the gizmo API (one task per identifier; 404s are recorded);
3. **policies** — fetch every Action's privacy policy (one task per unique
   URL; some fail with server errors, as in Section 5.1.1).

All network traffic goes through a
:class:`~repro.crawler.transport.RetryingTransport` (retry budgets, seeded
backoff, optional circuit breaking and simulated latency).  Stage results are
merged into the corpus in deterministic task order regardless of worker
count, so a seeded crawl is bit-reproducible sequentially or with 8 workers.

When a checkpoint directory is configured, completed task payloads are
flushed incrementally through :class:`repro.io.CrawlCheckpoint`; a run
killed mid-stage and restarted with ``resume=True`` skips everything already
fetched and produces a corpus identical to an uninterrupted run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.crawler.corpus import CrawlCorpus, CrawledGPT
from repro.crawler.engine import (
    CrawlEngine,
    CrawlTask,
    HostRateLimiter,
    TaskOutcome,
    TaskQueue,
    FIFOTaskQueue,
)
from repro.crawler.gizmo_api import GizmoAPIClient, GizmoAPIServer
from repro.crawler.http import SimulatedHTTPLayer
from repro.crawler.policy_fetcher import PolicyFetcher, PolicyFetchResult
from repro.crawler.store_crawler import StoreCrawler
from repro.crawler.store_server import GPTStoreServer, install_store_servers
from repro.crawler.transport import RetryingTransport, TransportConfig
from repro.ecosystem.models import SyntheticEcosystem
from repro.io import CrawlCheckpoint
from repro.web.urls import url_host


@dataclass
class CrawlStatistics:
    """Aggregate statistics about one crawl run.

    Per-store numbers are *derived* from the corpus (the single source of
    truth) rather than mirrored into separate counters.
    """

    n_unique_identifiers: int = 0
    n_resolved: int = 0
    n_unresolved: int = 0
    n_policy_urls: int = 0
    n_policy_failures: int = 0
    n_http_requests: int = 0
    #: Retry attempts the transport issued beyond first tries.
    n_retries: int = 0
    #: Tasks skipped because a checkpoint already held their results.
    n_tasks_resumed: int = 0
    #: The corpus this run produced (set by the pipeline).
    corpus: Optional[CrawlCorpus] = field(default=None, repr=False)

    @property
    def per_store_counts(self) -> Dict[str, int]:
        """Store → successfully crawled GPTs (from ``corpus.store_counts``)."""
        return dict(self.corpus.store_counts) if self.corpus is not None else {}

    @property
    def n_store_links(self) -> int:
        """Total listing links collected (from ``corpus.store_link_counts``)."""
        if self.corpus is None:
            return 0
        return sum(self.corpus.store_link_counts.values())

    @property
    def resolution_rate(self) -> float:
        """Fraction of identifiers that resolved to a manifest."""
        total = self.n_resolved + self.n_unresolved
        return self.n_resolved / total if total else 0.0


@dataclass(frozen=True)
class CrawlStage:
    """One declarative pipeline stage.

    ``build_tasks`` is evaluated when the stage starts (earlier stages have
    already merged, so it can depend on their output); ``encode`` turns a
    task result into a JSON-serializable checkpoint payload; ``merge``
    applies one payload — checkpointed or fresh — to the corpus.  Merging
    runs single-threaded in task order, which is what keeps seeded crawls
    deterministic at any worker count.
    """

    name: str
    build_tasks: Callable[[], List[CrawlTask]]
    encode: Callable[[object], object]
    merge: Callable[[str, object], None]


class CrawlPipeline:
    """Runs the store-crawl → manifest-resolve → policy-fetch pipeline.

    Parameters
    ----------
    http:
        The simulated network.
    store_servers:
        The installed store servers to crawl.
    page_size:
        Listing page size (mirrors the store servers' configuration).
    workers:
        Worker-pool size for each stage (``<= 1`` crawls sequentially).
    transport_config:
        Retry/backoff/latency knobs for the transport wrapper.
    rate_limits:
        Optional host → requests/second politeness limits, enforced by the
        transport before every attempt (pagination pages and retries each
        consume a token).
    checkpoint_dir:
        Directory for incremental stage checkpoints (``None`` disables).
    resume:
        Load existing checkpoints and skip completed tasks.  When false, any
        checkpoints in ``checkpoint_dir`` are cleared at run start.
    checkpoint_every:
        Flush the checkpoint after this many completed tasks.
    checkpoint_shards:
        Partition each checkpoint stage into this many hash-routed shard
        files (mirrors :mod:`repro.io.shards`); ``1`` keeps the flat
        single-file layout.
    """

    def __init__(
        self,
        http: SimulatedHTTPLayer,
        store_servers: List[GPTStoreServer],
        page_size: int = 50,
        workers: int = 0,
        transport_config: Optional[TransportConfig] = None,
        rate_limits: Optional[Dict[str, float]] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        checkpoint_every: int = 100,
        checkpoint_shards: int = 1,
        queue_factory: Callable[[], TaskQueue] = FIFOTaskQueue,
    ) -> None:
        self.http = http
        self.store_servers = store_servers
        self.page_size = page_size
        self.workers = workers
        self.transport = RetryingTransport(
            http,
            transport_config,
            rate_limiter=HostRateLimiter(rate_limits) if rate_limits else None,
        )
        self.engine = CrawlEngine(workers=workers, queue_factory=queue_factory)
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.checkpoint_every = max(1, checkpoint_every)
        self.checkpoint_shards = max(1, checkpoint_shards)
        self.statistics = CrawlStatistics()

    # ------------------------------------------------------------------
    @classmethod
    def from_ecosystem(
        cls,
        ecosystem: SyntheticEcosystem,
        page_size: int = 50,
        seed: int = 0,
        **kwargs: object,
    ) -> "CrawlPipeline":
        """Build a pipeline whose simulated network serves ``ecosystem``.

        Extra keyword arguments (``workers``, ``transport_config``,
        ``checkpoint_dir``, ``resume``, …) are forwarded to the constructor.
        """
        http = SimulatedHTTPLayer(seed=seed)
        store_servers = install_store_servers(http, ecosystem.store_listings, page_size=page_size)
        GizmoAPIServer(manifests=ecosystem.gpts).install(http)

        # Serve the generated policy documents; Actions whose policy the
        # generator marked unavailable get a 500 (internal server error), the
        # failure mode the paper reports in Section 5.1.1.
        for url, document in ecosystem.policies.items():
            content_type = "text/html" if document.kind != "tracking_pixel" else "image/gif"
            http.register_static(url, document.text, content_type=content_type)
        for action in ecosystem.actions.values():
            if action.legal_info_url and action.legal_info_url not in ecosystem.policies:
                http.set_status_override(action.legal_info_url, 500)
        return cls(http=http, store_servers=store_servers, page_size=page_size, **kwargs)

    # ------------------------------------------------------------------
    # Stage definitions
    # ------------------------------------------------------------------
    def _listing_stage(self, corpus: CrawlCorpus,
                       identifier_sources: Dict[str, List[str]]) -> CrawlStage:
        crawler = StoreCrawler(self.transport)

        def build_tasks() -> List[CrawlTask]:
            return [
                CrawlTask(
                    key=server.name,
                    fn=lambda s=server: crawler.crawl(s.name, s.base_url),
                    host=server.domain,
                )
                for server in self.store_servers
            ]

        def encode(result: object) -> object:
            return {
                "n_links": result.n_links,
                "gpt_ids": result.gpt_ids,
                "pages_visited": result.pages_visited,
                "errors": result.errors,
            }

        def merge(store_name: str, payload: object) -> None:
            corpus.merge_listing(store_name, int(payload["n_links"]))
            for identifier in payload["gpt_ids"]:
                identifier_sources.setdefault(identifier, []).append(store_name)

        return CrawlStage("listing", build_tasks, encode, merge)

    def _resolve_stage(self, corpus: CrawlCorpus,
                       identifier_sources: Dict[str, List[str]]) -> CrawlStage:
        client = GizmoAPIClient(self.transport)

        def build_tasks() -> List[CrawlTask]:
            return [
                CrawlTask(
                    key=identifier,
                    fn=lambda i=identifier: client.fetch(i),
                    host="chat.openai.com",
                )
                for identifier in identifier_sources
            ]

        def encode(result: object) -> object:
            return {"status": result.status, "manifest": result.manifest}

        def merge(identifier: str, payload: object) -> None:
            manifest = payload.get("manifest")
            if manifest is None:
                corpus.merge_unresolved(identifier)
                self.statistics.n_unresolved += 1
                return
            self.statistics.n_resolved += 1
            stores = identifier_sources.get(identifier, [])
            gpt = CrawledGPT.from_manifest(manifest, source_store=stores[0] if stores else None)
            gpt.source_stores = sorted(set(stores))
            corpus.merge_gpt(gpt)

        return CrawlStage("resolve", build_tasks, encode, merge)

    def _policy_stage(self, corpus: CrawlCorpus) -> CrawlStage:
        fetcher = PolicyFetcher(self.transport)

        def build_tasks() -> List[CrawlTask]:
            urls = sorted(
                {
                    action.legal_info_url
                    for action in corpus.unique_actions().values()
                    if action.legal_info_url
                }
            )
            return [
                CrawlTask(key=url, fn=lambda u=url: fetcher.fetch(u), host=url_host(url))
                for url in urls
            ]

        def encode(result: object) -> object:
            return {"status": result.status, "text": result.text, "error": result.error}

        def merge(url: str, payload: object) -> None:
            result = PolicyFetchResult(
                url=url,
                status=int(payload.get("status", 0)),
                text=payload.get("text"),
                error=payload.get("error"),
            )
            corpus.merge_policy(url, result)
            self.statistics.n_policy_urls += 1
            if not result.ok:
                self.statistics.n_policy_failures += 1

        return CrawlStage("policies", build_tasks, encode, merge)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run_stage(self, stage: CrawlStage,
                   checkpoint: Optional[CrawlCheckpoint]) -> None:
        tasks = stage.build_tasks()
        done: Dict[str, object] = (
            dict(checkpoint.load_stage(stage.name)) if checkpoint is not None else {}
        )
        pending = [task for task in tasks if task.key not in done]
        self.statistics.n_tasks_resumed += len(tasks) - len(pending)

        fresh: Dict[str, object] = {}
        if pending:
            flush_counter = {"n": 0}

            def on_result(outcome: TaskOutcome) -> None:
                if not outcome.ok:
                    # Fetchers fold expected network failures into their
                    # results, so an engine-level error is a code bug.
                    raise RuntimeError(
                        f"crawl task {outcome.key!r} failed: {outcome.error}"
                    )
                payload = stage.encode(outcome.result)
                fresh[outcome.key] = payload
                if checkpoint is not None:
                    checkpoint.record(stage.name, outcome.key, payload)
                    flush_counter["n"] += 1
                    if flush_counter["n"] % self.checkpoint_every == 0:
                        checkpoint.flush(stage.name)

            self.engine.on_result = on_result
            try:
                self.engine.run(pending)
            finally:
                self.engine.on_result = None
                if checkpoint is not None:
                    checkpoint.flush(stage.name)

        # Deterministic merge: apply payloads in task order, whether they
        # came from the checkpoint or from this run.
        for task in tasks:
            payload = done.get(task.key, fresh.get(task.key))
            stage.merge(task.key, payload)

    def _checkpoint_fingerprint(self) -> Dict[str, object]:
        """What must match for a checkpoint to be resumable by this crawl."""
        return {
            "seed": self.http.seed,
            "page_size": self.page_size,
            "stores": [server.name for server in self.store_servers],
            "n_listings": sum(len(server.listings) for server in self.store_servers),
        }

    def run(self) -> CrawlCorpus:
        """Run the crawl and return the resulting corpus.

        Raises
        ------
        ValueError
            When resuming against a checkpoint written by a crawl with a
            different configuration (seed, stores, or ecosystem size) —
            merging it would silently corrupt the corpus.
        """
        corpus = CrawlCorpus()
        self.statistics = CrawlStatistics(corpus=corpus)
        # The layer and transport counters are cumulative across runs of the
        # same pipeline; snapshot them so statistics stay per-run.
        requests_before = self.http.request_count
        retries_before = self.transport.statistics.n_retries
        checkpoint: Optional[CrawlCheckpoint] = None
        if self.checkpoint_dir is not None:
            checkpoint = CrawlCheckpoint(self.checkpoint_dir, n_shards=self.checkpoint_shards)
            fingerprint = self._checkpoint_fingerprint()
            if not self.resume:
                checkpoint.clear()
            else:
                existing = checkpoint.load_meta()
                if existing is not None and existing != fingerprint:
                    raise ValueError(
                        "checkpoint at "
                        f"{self.checkpoint_dir!r} was written by a different "
                        "crawl configuration; pass resume=False to start over"
                    )
            checkpoint.write_meta(fingerprint)

        identifier_sources: Dict[str, List[str]] = {}
        stages: Sequence[Callable[[], CrawlStage]] = (
            lambda: self._listing_stage(corpus, identifier_sources),
            lambda: self._resolve_stage(corpus, identifier_sources),
            lambda: self._policy_stage(corpus),
        )
        for build_stage in stages:
            stage = build_stage()
            self._run_stage(stage, checkpoint)
            if stage.name == "listing":
                self.statistics.n_unique_identifiers = len(identifier_sources)

        self.statistics.n_http_requests = self.http.request_count - requests_before
        self.statistics.n_retries = self.transport.statistics.n_retries - retries_before
        return corpus
