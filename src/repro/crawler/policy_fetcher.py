"""Privacy-policy fetching.

For every Action, the paper requests the URL in the ``legal_info_url`` field
of the Action specification; 93.96% of policies are retrieved successfully and
the rest fail with server errors or unresponsive hosts (Section 5.1.1).  The
fetcher records both outcomes and deduplicates by URL, since many Actions point
at the same document.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crawler.http import HTTPError
from repro.crawler.transport import HTTPTransport


@dataclass
class PolicyFetchResult:
    """The outcome of fetching one privacy-policy URL."""

    url: str
    status: int
    text: Optional[str] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the policy document was retrieved."""
        return self.text is not None


class PolicyFetcher:
    """Fetches and caches privacy-policy documents by URL.

    ``http`` may be the raw :class:`~repro.crawler.http.SimulatedHTTPLayer`
    or a :class:`~repro.crawler.transport.RetryingTransport` wrapping it —
    in the latter case transient connection errors are retried up to the
    transport's budget before being recorded as a failed fetch.
    """

    def __init__(self, http: HTTPTransport) -> None:
        self._http = http
        self._cache: Dict[str, PolicyFetchResult] = {}

    def fetch(self, url: str) -> PolicyFetchResult:
        """Fetch one policy URL (cached across Actions sharing the URL)."""
        if url in self._cache:
            return self._cache[url]
        try:
            response = self._http.get(url)
        except HTTPError as exc:
            result = PolicyFetchResult(url=url, status=0, error=str(exc))
            self._cache[url] = result
            return result
        if not response.ok:
            result = PolicyFetchResult(url=url, status=response.status,
                                       error=f"HTTP {response.status}")
        else:
            result = PolicyFetchResult(url=url, status=response.status, text=response.text)
        self._cache[url] = result
        return result

    def fetch_many(self, urls: List[str]) -> Dict[str, PolicyFetchResult]:
        """Fetch many URLs, returning a mapping from URL to result."""
        return {url: self.fetch(url) for url in urls}

    @property
    def success_rate(self) -> float:
        """Fraction of fetched URLs that returned a document."""
        if not self._cache:
            return 0.0
        successes = sum(1 for result in self._cache.values() if result.ok)
        return successes / len(self._cache)
