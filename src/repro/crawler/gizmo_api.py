"""The OpenAI ``gizmos`` backend API (server and client).

The paper downloads GPT manifests by requesting
``chat.openai.com/backend-api/gizmos/g-{identifier}``; identifiers that no
longer resolve return HTTP 404 (Section 3.1).  The simulated server serves the
generated manifests; the client resolves identifiers extracted from store
listings and records failures.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crawler.http import HTTPError, SimulatedHTTPLayer, SimulatedResponse
from repro.crawler.transport import HTTPTransport
from repro.ecosystem.models import GPTManifest

#: URL prefix of the gizmo manifest API.
GIZMO_API_PREFIX = "https://chat.openai.com/backend-api/gizmos/"

_GPT_ID_RE = re.compile(r"(g-[A-Za-z0-9]{6,20})")


@dataclass
class GizmoAPIServer:
    """Serves GPT manifests by identifier."""

    manifests: Dict[str, GPTManifest]

    def install(self, http: SimulatedHTTPLayer) -> None:
        """Register the gizmo API route on the HTTP layer."""
        http.register(GIZMO_API_PREFIX, self._handle)

    def _handle(self, url: str) -> SimulatedResponse:
        identifier = url[len(GIZMO_API_PREFIX):].split("?")[0].strip("/")
        manifest = self.manifests.get(identifier)
        if manifest is None or not manifest.is_public:
            return SimulatedResponse(url=url, status=404, text=json.dumps({"detail": "not found"}))
        return SimulatedResponse(
            url=url,
            status=200,
            text=manifest.to_json(),
            headers={"content-type": "application/json"},
        )


@dataclass
class GizmoFetchResult:
    """Result of resolving one GPT identifier against the gizmo API."""

    gpt_id: str
    status: int
    manifest: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        """Whether a manifest was returned."""
        return self.manifest is not None


class GizmoAPIClient:
    """Client that resolves GPT identifiers to manifests.

    ``http`` is anything exposing ``get(url)`` — the raw simulated layer or
    a retrying transport wrapper.
    """

    def __init__(self, http: HTTPTransport) -> None:
        self._http = http
        self.failures: List[GizmoFetchResult] = []

    @staticmethod
    def extract_identifier(link: str) -> Optional[str]:
        """Extract a GPT identifier from a store listing link."""
        match = _GPT_ID_RE.search(link)
        return match.group(1) if match else None

    def fetch(self, gpt_id: str) -> GizmoFetchResult:
        """Fetch the manifest for one GPT identifier."""
        url = f"{GIZMO_API_PREFIX}{gpt_id}"
        try:
            response = self._http.get(url)
        except HTTPError:
            result = GizmoFetchResult(gpt_id=gpt_id, status=0)
            self.failures.append(result)
            return result
        if not response.ok:
            result = GizmoFetchResult(gpt_id=gpt_id, status=response.status)
            self.failures.append(result)
            return result
        manifest = json.loads(response.text)
        return GizmoFetchResult(gpt_id=gpt_id, status=response.status, manifest=manifest)
