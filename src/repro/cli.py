"""Command-line interface.

``python -m repro`` (or the ``repro-gpt`` console script) exposes the full
measurement pipeline:

* ``repro-gpt generate`` — generate a synthetic ecosystem and print a summary;
* ``repro-gpt crawl`` — generate + crawl, printing crawl statistics (Table 1).
  The crawl runs on the concurrent engine: ``--workers N`` fans requests out
  over a worker pool, ``--checkpoint-dir DIR`` persists stage progress
  incrementally, and ``--resume`` continues an interrupted crawl from that
  checkpoint without refetching.  ``--epoch N`` crawls the world after N
  rounds of seeded churn; adding ``--parent-store DIR`` (with ``--shards``
  and ``--shard-dir``) re-crawls **incrementally** — unchanged records are
  carried forward from the parent epoch's store without HTTP traffic;
* ``repro-gpt evolve`` — evolve the ecosystem through ``--epochs N`` rounds
  of seeded churn and print each epoch's change feed;
* ``repro-gpt analyze`` — run the full pipeline and print the headline
  measurements;
* ``repro-gpt experiment <id>`` — run one experiment (``table4``,
  ``figure9``, …) and print the paper-vs-measured comparison;
* ``repro-gpt report`` — run every experiment and emit an EXPERIMENTS-style
  markdown report;
* ``repro-gpt export <directory>`` — crawl and write the corpus (and, with
  ``--with-classification``, the per-parameter labels) to a dataset
  directory that :mod:`repro.io` can load back;
* ``repro-gpt sweep`` — run the whole experiment battery across a scenario
  grid (``--scenarios baseline,flaky-hosts --seeds 3``) on the concurrent
  sweep engine (``--workers N``) and print across-seed mean/stdev tables and
  per-scenario deltas (``--report`` for the full markdown report).  With
  ``--cache-dir DIR`` every intermediate artifact is persisted in a
  content-addressed store, so an unchanged cell is never recomputed and a
  killed sweep continues with ``--resume`` (which insists the cache exists).

Global ``--shards N`` / ``--shard-workers M`` / ``--shard-dir DIR`` switch
every command's corpus analyses onto the sharded streaming path
(:mod:`repro.io.shards` + :mod:`repro.analysis.streaming`): the crawled
corpus is hash-partitioned into N JSONL shards on disk and analyzed
shard-parallel, with byte-identical results at any shard or worker count.
``crawl --shards N`` runs the **shard-partitioned crawl**
(:meth:`repro.crawler.pipeline.CrawlPipeline.run_sharded`): the listing
frontier is hash-partitioned, per-shard sub-pipelines stream resolved GPTs
and policies straight into the shard store, and no whole-run corpus is ever
materialized — so crawl memory is bounded by the largest shard.  Commands
that also classify (e.g. ``analyze``) stay on that path: the description
extraction and the classification pass stream shard-by-shard from the same
store, so a sharded run performs exactly one crawl and never rebuilds the
whole corpus in memory.

Global ``--backend {serial,thread,process}`` selects the execution backend
(:mod:`repro.exec`) for all sharded work — the partitioned crawl's
sub-pipelines and the shard-parallel analyses — and, for ``sweep``, the
cell scheduler.  Threads suit I/O-bound and GIL-releasing work; the process
backend unlocks real CPU scaling for pure-Python shard maps.  Like
``--shards``, it is an execution knob: results are byte-identical on every
backend.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.suite import MeasurementSuite, SuiteConfig
from repro.ecosystem.config import EcosystemConfig
from repro.ecosystem.generator import EcosystemGenerator
from repro.experiments.registry import EXPERIMENTS, run_all_experiments, run_experiment
from repro.reporting.markdown import format_table


def _build_suite(args: argparse.Namespace) -> MeasurementSuite:
    crawl_transport = None
    if getattr(args, "deadline", 0.0):
        crawl_transport = {"deadline_s": args.deadline}
    config = SuiteConfig(
        n_gpts=args.gpts,
        seed=args.seed,
        epoch=getattr(args, "epoch", 0),
        crawl_workers=getattr(args, "workers", 0),
        crawl_checkpoint_dir=getattr(args, "checkpoint_dir", None),
        crawl_resume=getattr(args, "resume", False),
        crawl_hostile={} if getattr(args, "hostile", False) else None,
        crawl_transport=crawl_transport,
        shards=args.shards,
        shard_workers=args.shard_workers,
        shard_dir=args.shard_dir,
        backend=args.backend,
    )
    return MeasurementSuite(config=config)


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def _cmd_generate(args: argparse.Namespace) -> int:
    config = EcosystemConfig.paper_calibrated(n_gpts=args.gpts, seed=args.seed)
    ecosystem = EcosystemGenerator(config).generate()
    print(ecosystem.summary())
    print(f"Action-embedding GPTs: {len(ecosystem.action_gpts())}")
    return 0


def _cmd_crawl(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.parent_store:
        if args.shards < 1 or not args.shard_dir:
            print(
                "--parent-store needs --shards N (N >= 1) and --shard-dir "
                "(the incremental crawl publishes a sharded store)",
                file=sys.stderr,
            )
            return 2
        if args.epoch < 1:
            print(
                "--parent-store needs --epoch N (N >= 1): the incremental "
                "crawl captures the world one epoch after the parent store",
                file=sys.stderr,
            )
            return 2
    # Context-manage the suite so a warm process pool (--backend process)
    # is shut down before interpreter exit; same in the handlers below.
    with _build_suite(args) as suite:
        if args.parent_store:
            try:
                suite.incremental_crawl(args.parent_store, args.shard_dir)
            except ValueError as error:
                print(str(error), file=sys.stderr)
                return 2
            crawl = suite.crawl_statistics
            print(
                f"Incremental epoch {args.epoch}: "
                f"{crawl.n_records_carried} GPT records and "
                f"{crawl.n_policies_carried} policies carried forward "
                f"without HTTP; {crawl.n_http_requests} requests for the delta"
            )
        stats = suite.crawl_stats
        rows = [(store, count) for store, count in stats.sorted_store_counts()]
        print(format_table(["Store", "GPTs crawled"], rows))
        print(f"Total unique GPTs: {stats.total_unique_gpts}")
        print(f"Unique Actions: {stats.n_unique_actions}")
        print(f"Policy availability: {stats.policy_availability:.2%}")
        crawl_statistics = suite.crawl_statistics
        if crawl_statistics is not None and crawl_statistics.host_failure_taxonomy:
            print("Quarantined hosts (failure taxonomy):")
            for host in crawl_statistics.quarantined_hosts:
                kinds = crawl_statistics.host_failure_taxonomy[host]
                summary = ", ".join(
                    f"{kind}={kinds[kind]}" for kind in sorted(kinds)
                )
                print(f"  {host}: {summary}")
    return 0


def _cmd_evolve(args: argparse.Namespace) -> int:
    from repro.ecosystem.evolution import evolve_epochs

    if args.epochs < 1:
        print("--epochs must be >= 1", file=sys.stderr)
        return 2
    config = EcosystemConfig.paper_calibrated(n_gpts=args.gpts, seed=args.seed)
    ecosystem = EcosystemGenerator(config).generate()
    print(ecosystem.summary())
    evolved, deltas = evolve_epochs(ecosystem, config, args.epochs)
    for delta in deltas:
        print(delta.summary())
    print(evolved.summary())
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    with _build_suite(args) as suite:
        collection = suite.collection
        prohibited = suite.prohibited
        disclosure = suite.disclosure
        print(suite.corpus_source.summary())
        print(f"Data categories observed: {collection.n_categories_observed()}")
        print(f"Data types observed: {collection.n_types_observed()}")
        print(f"Actions collecting 5+ items: {collection.share_with_at_least(5):.1%}")
        print(f"Actions collecting 10+ items: {collection.share_with_at_least(10):.1%}")
        print(f"Third-party excess collection: {collection.third_party_excess():.2%}")
        print(f"GPTs with prohibited-data Actions: {prohibited.offending_gpt_share:.1%}")
        print(f"Fully consistent Actions: {disclosure.fully_consistent_share:.1%}")
        print(f"Classifier: {suite.evaluate_classifier().summary()}")
        print(f"Policy framework: {suite.evaluate_policy_framework().summary()}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.experiment_id not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment_id!r}; known ids:", file=sys.stderr)
        print(", ".join(sorted(EXPERIMENTS)), file=sys.stderr)
        return 2
    with _build_suite(args) as suite:
        result = run_experiment(args.experiment_id, suite)
    print(f"# {result.title}")
    rows = [
        (metric, _format_value(paper), _format_value(measured))
        for metric, paper, measured in result.comparison_rows()
    ]
    if rows:
        print(format_table(["Metric", "Paper", "Measured"], rows))
    if result.artifact:
        print()
        print(result.artifact)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.io import save_corpus

    with _build_suite(args) as suite:
        classification = suite.classification if args.with_classification else None
        target = save_corpus(suite.corpus, args.directory, classification=classification)
        print(f"Wrote corpus ({len(suite.corpus.gpts)} GPTs, "
              f"{suite.corpus.n_unique_actions()} Actions) to {target}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.registry import run_all_sweep_experiments
    from repro.experiments.sweep import BUILTIN_SCENARIOS, run_sweep
    from repro.io import ArtifactStore
    from repro.reporting.sweep import render_scenario_deltas, render_sweep_overview

    scenario_names = [name.strip() for name in args.scenarios.split(",") if name.strip()]
    experiment_ids: Optional[List[str]] = None
    if args.experiments:
        experiment_ids = [name.strip() for name in args.experiments.split(",") if name.strip()]
    if args.resume and not args.cache_dir:
        print("--resume requires --cache-dir", file=sys.stderr)
        return 2
    # The is_dir() guard keeps the error path side-effect free: building the
    # store would create the (possibly mistyped) cache directory.
    if args.resume and (
        not Path(args.cache_dir).is_dir() or ArtifactStore(args.cache_dir).count() == 0
    ):
        print(f"--resume: no cached artifacts under {args.cache_dir}", file=sys.stderr)
        return 2
    try:
        result = run_sweep(
            scenario_names,
            args.seeds,
            base_seed=args.seed,
            n_gpts=args.gpts,
            workers=args.workers,
            cache_dir=args.cache_dir,
            experiment_ids=experiment_ids,
            shards=args.shards,
            shard_workers=args.shard_workers,
            backend=args.backend,
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        if "scenario" in str(error):
            print(f"known scenarios: {', '.join(sorted(BUILTIN_SCENARIOS))}", file=sys.stderr)
        return 2
    report = result.report()

    print(
        f"Sweep: {len(scenario_names)} scenario(s) x {args.seeds} seed(s) = "
        f"{result.n_cells} cells in {result.wall_time_s:.2f}s "
        f"({args.workers or 1} worker(s))"
    )
    if args.cache_dir:
        statistics = result.store_statistics
        print(
            f"Cache: {result.n_from_cache}/{result.n_cells} cells served from "
            f"{args.cache_dir} (hit rate {statistics.hit_rate:.0%}, "
            f"{statistics.n_writes} artifacts written)"
        )
    for cell in result.cells:
        origin = "cache" if cell.from_cache else "computed"
        hits = f" (+{','.join(cell.stage_hits)} from cache)" if cell.stage_hits else ""
        print(f"  {cell.cell_id}: {origin} in {cell.wall_time_s:.2f}s{hits}")
    print()
    if args.report:
        print("## Across-seed aggregates")
        print(render_sweep_overview(report, experiment_ids))
        print()
        # Use the same reference scenario as the sweep-experiment variants:
        # "baseline" when it ran, otherwise the first listed scenario.
        reference = "baseline" if "baseline" in scenario_names else scenario_names[0]
        print(f"## Scenario deltas vs {reference}")
        print(render_scenario_deltas(report, baseline=reference))
        print()
        print("## Paper comparison (baseline scenario means)")
        for sweep_result in run_all_sweep_experiments(report):
            if experiment_ids and sweep_result.experiment_id.split("@")[0] not in experiment_ids:
                continue
            rows = [
                (metric, _format_value(paper), _format_value(measured))
                for metric, paper, measured in sweep_result.comparison_rows()
            ]
            if rows:
                print(f"### {sweep_result.title}")
                print(format_table(["Metric", "Paper", "Measured (mean)"], rows))
                print()
    else:
        print(render_sweep_overview(report, experiment_ids))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    with _build_suite(args) as suite:
        results = run_all_experiments(suite)
    for result in results:
        print(f"## {result.title}")
        rows = [
            (metric, _format_value(paper), _format_value(measured))
            for metric, paper, measured in result.comparison_rows()
        ]
        if rows:
            print(format_table(["Metric", "Paper", "Measured"], rows))
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-gpt",
        description="Reproduction of the IMC 2025 LLM-app data-collection measurement study.",
    )
    parser.add_argument("--gpts", type=int, default=2000, help="number of GPTs to generate")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--shards", type=int, default=0,
        help="shard the corpus on disk and stream analyses (0 = in-memory)",
    )
    parser.add_argument(
        "--shard-workers", type=int, default=0,
        help="worker-pool size for shard-parallel analysis (0 = sequential)",
    )
    parser.add_argument(
        "--shard-dir", default=None,
        help="directory for the sharded corpus store (default: a temp dir)",
    )
    parser.add_argument(
        "--backend", default=None, choices=["serial", "thread", "process"],
        help="execution backend for sharded crawls/analyses and the sweep "
             "scheduler (default: serial at <=1 workers, threads above; "
             "process unlocks CPU scaling for pure-Python shard maps)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("generate", help="generate a synthetic ecosystem")
    crawl_parser = subparsers.add_parser(
        "crawl", help="crawl the synthetic stores and print Table 1"
    )
    crawl_parser.add_argument(
        "--workers", type=int, default=0,
        help="crawl-engine worker pool size (0 = sequential)",
    )
    crawl_parser.add_argument(
        "--checkpoint-dir", default=None,
        help="directory for incremental crawl checkpoints",
    )
    crawl_parser.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted crawl from --checkpoint-dir",
    )
    crawl_parser.add_argument(
        "--hostile", action="store_true",
        help="crawl an adversarial web (redirect loops, 429 storms, tarpit "
             "latency, flapping hosts) and report quarantined hosts",
    )
    crawl_parser.add_argument(
        "--deadline", type=float, default=0.0,
        help="per-request accounted-time budget in seconds (0 = unlimited); "
             "pairs with --hostile to quarantine tarpit hosts",
    )
    crawl_parser.add_argument(
        "--epoch", type=int, default=0,
        help="crawl the world after N rounds of seeded churn (0 = base snapshot)",
    )
    crawl_parser.add_argument(
        "--parent-store", default=None,
        help="previous epoch's sharded store: re-crawl incrementally, carrying "
             "unchanged records forward without HTTP (needs --shards, "
             "--shard-dir, and --epoch = parent epoch + 1)",
    )
    evolve_parser = subparsers.add_parser(
        "evolve", help="evolve the ecosystem through seeded churn epochs"
    )
    evolve_parser.add_argument(
        "--epochs", type=int, default=1,
        help="number of churn rounds to apply (each is pure in (seed, epoch))",
    )
    subparsers.add_parser("analyze", help="run the full pipeline and print headline stats")
    experiment_parser = subparsers.add_parser("experiment", help="run one experiment by id")
    experiment_parser.add_argument("experiment_id", help="e.g. table4, figure9")
    subparsers.add_parser("report", help="run every experiment and print comparisons")
    sweep_parser = subparsers.add_parser(
        "sweep", help="run experiments across a multi-seed, multi-scenario grid"
    )
    sweep_parser.add_argument(
        "--scenarios", default="baseline",
        help="comma-separated scenario names (e.g. baseline,flaky-hosts)",
    )
    sweep_parser.add_argument(
        "--seeds", type=int, default=3,
        help="seeds per scenario (numbered from the global --seed upward)",
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=0,
        help="sweep-engine worker pool size (0 = run cells sequentially)",
    )
    sweep_parser.add_argument(
        "--cache-dir", default=None,
        help="content-addressed artifact cache (unchanged cells are reused)",
    )
    sweep_parser.add_argument(
        "--resume", action="store_true",
        help="continue a killed sweep from --cache-dir (must already exist)",
    )
    sweep_parser.add_argument(
        "--report", action="store_true",
        help="print the full markdown report (deltas + paper comparisons)",
    )
    sweep_parser.add_argument(
        "--experiments", default=None,
        help="comma-separated experiment ids to run (default: all)",
    )
    export_parser = subparsers.add_parser("export", help="crawl and write the corpus to disk")
    export_parser.add_argument("directory", help="output directory for the dataset")
    export_parser.add_argument(
        "--with-classification", action="store_true",
        help="also classify data descriptions and store the labels",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "crawl": _cmd_crawl,
        "evolve": _cmd_evolve,
        "analyze": _cmd_analyze,
        "experiment": _cmd_experiment,
        "report": _cmd_report,
        "export": _cmd_export,
        "sweep": _cmd_sweep,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
