"""Synthetic, paper-calibrated GPT app ecosystem.

The paper measures 119,543 live GPTs and 4,592 Actions crawled from OpenAI's
platform.  Offline, this subpackage generates a synthetic ecosystem whose
artifacts use the same formats the paper describes (Appendix B): GPT manifests
with ``display``/``tools``/``files``/``tags`` fields, Action OpenAPI
specifications with natural-language parameter descriptions, and privacy-policy
documents reachable from each Action's ``legal_info_url``.

Generation is calibrated by :class:`EcosystemConfig` against the paper's
published distributions (store sizes, tool adoption, per-data-type collection
rates, Action prevalence, disclosure-consistency mixes, policy duplication
rates).  The analysis pipeline never reads the generator's ground truth — it
must recover the distributions from the raw artifacts, exercising the same
crawl → extract → classify → policy-check path as the paper.
"""

from repro.ecosystem.models import (
    ActionParameter,
    ActionSpecification,
    GPTAuthor,
    GPTManifest,
    GroundTruth,
    PrivacyPolicyDocument,
    StoreListing,
    SyntheticEcosystem,
    Tool,
    ToolType,
)
from repro.ecosystem.config import EcosystemConfig, StoreConfig, DisclosureProfile
from repro.ecosystem.evolution import (
    EpochDelta,
    EvolutionConfig,
    EvolvedEpoch,
    evolve_ecosystem,
    evolve_epochs,
)
from repro.ecosystem.generator import EcosystemGenerator
from repro.ecosystem.phrasing import DescriptionPhraser, PhrasingStyle
from repro.ecosystem.actions import PREVALENT_ACTIONS, PrevalentActionTemplate
from repro.ecosystem.policies import PolicyGenerator, PolicyKind
from repro.ecosystem.stores import STORE_CATALOG

__all__ = [
    "ActionParameter",
    "ActionSpecification",
    "GPTAuthor",
    "GPTManifest",
    "GroundTruth",
    "PrivacyPolicyDocument",
    "StoreListing",
    "SyntheticEcosystem",
    "Tool",
    "ToolType",
    "EcosystemConfig",
    "StoreConfig",
    "DisclosureProfile",
    "EcosystemGenerator",
    "EpochDelta",
    "EvolutionConfig",
    "EvolvedEpoch",
    "evolve_ecosystem",
    "evolve_epochs",
    "DescriptionPhraser",
    "PhrasingStyle",
    "PREVALENT_ACTIONS",
    "PrevalentActionTemplate",
    "PolicyGenerator",
    "PolicyKind",
    "STORE_CATALOG",
]
